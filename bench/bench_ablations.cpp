// Ablations the paper flags as open analysis:
//
//   1. Decoding strategy — "all results ... were obtained using greedy
//      decoding. We would expect some improvement by using random sampling
//      or beam search": greedy vs top-k temperature sampling.
//   2. Prompt robustness — "we also hope to do more analysis on the models
//      sensitivity to prompts and robustness to changes in indentation,
//      quotes and letter case": the test prompts are perturbed (lowercase,
//      UPPERCASE, quoted) and the metric drop is measured.
//
// Reuses the fine-tuned Wisdom-Ansible-Multi checkpoint cached by
// bench_table4_finetune (or trains it on first run).
#include <cctype>
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "core/postprocess.hpp"
#include "exec/equivalence.hpp"

namespace bench = wisdom::bench;
namespace core = wisdom::core;
namespace data = wisdom::data;
namespace metrics = wisdom::metrics;
namespace model = wisdom::model;
namespace util = wisdom::util;

namespace {

// Evaluation with an explicit decoding strategy (the harness itself is
// greedy-only, matching the paper's main tables).
metrics::MetricsReport evaluate_sampled(model::Transformer& m,
                                        const wisdom::text::BpeTokenizer& tok,
                                        std::span<const data::FtSample> samples,
                                        float temperature, int top_k,
                                        int beam_width, std::size_t limit) {
  metrics::MetricsAccumulator acc;
  for (std::size_t i = 0; i < std::min(limit, samples.size()); ++i) {
    const data::FtSample& s = samples[i];
    auto prompt_ids = tok.encode(s.model_input());
    std::vector<std::int32_t> out;
    if (beam_width > 1) {
      model::Transformer::BeamOptions beam;
      beam.beam_width = beam_width;
      beam.max_new_tokens = 56;
      beam.stop_token = wisdom::text::BpeTokenizer::kEndOfText;
      out = m.generate_beam(prompt_ids, beam);
    } else {
      model::Transformer::GenerateOptions gen;
      gen.stop_token = wisdom::text::BpeTokenizer::kEndOfText;
      gen.max_new_tokens = 56;
      gen.temperature = temperature;
      gen.top_k = top_k;
      gen.sample_seed = 1000 + i;
      out = m.generate(prompt_ids, gen);
    }
    std::string body = core::trim_generation(tok.decode(out));
    if (s.type != data::GenerationType::NlToPlaybook) {
      body = core::truncate_to_first_task(
          body, util::indent_width(s.input_line));
    }
    acc.add(s.input_line + body, s.full_target());
  }
  return acc.report();
}

std::string transform_prompt(const std::string& prompt, int kind) {
  switch (kind) {
    case 1: return util::to_lower(prompt);
    case 2: {
      std::string upper = prompt;
      for (char& c : upper)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      return upper;
    }
    case 3: return "'" + util::replace_all(prompt, "'", "''") + "'";
    default: return prompt;
  }
}

}  // namespace

int main(int, char** argv) {
  util::set_log_level(util::LogLevel::Info);
  core::Pipeline pipe(bench::default_pipeline_config(argv[0]));
  const auto& tok = pipe.tokenizer();
  const auto& splits = pipe.galaxy_splits();

  core::Pipeline::FinetuneOptions opts;
  model::Transformer m = pipe.finetuned(
      core::PretrainMix::WisdomAnsibleMulti, model::SizeClass::S350M, opts);

  const std::size_t limit = 200;

  std::printf("=== Ablation 1: decoding strategy (Wisdom-Ansible-Multi FT, "
              "%zu test samples) ===\n\n",
              limit);
  util::Table decode({"Decoding", "Schema Correct", "EM", "BLEU",
                      "Ansible Aware"});
  struct Strategy {
    const char* label;
    float temperature;
    int top_k;
    int beam_width;
  };
  for (const Strategy& s :
       {Strategy{"greedy (paper)", 0.0f, 0, 1},
        Strategy{"top-k 8, T=0.4", 0.4f, 8, 1},
        Strategy{"top-k 8, T=0.8", 0.8f, 8, 1},
        Strategy{"full, T=1.0", 1.0f, 0, 1},
        Strategy{"beam width 4", 0.0f, 0, 4}}) {
    auto report = evaluate_sampled(m, tok, splits.test, s.temperature,
                                   s.top_k, s.beam_width, limit);
    decode.add_row({s.label, util::fmt_fixed(report.schema_correct, 2),
                    util::fmt_fixed(report.exact_match, 2),
                    util::fmt_fixed(report.bleu, 2),
                    util::fmt_fixed(report.ansible_aware, 2)});
  }
  std::printf("%s\n", decode.to_string().c_str());

  std::printf("=== Ablation 2: prompt robustness (letter case, quoting) "
              "===\n\n");
  util::Table robust({"Prompt form", "Schema Correct", "EM", "BLEU",
                      "Ansible Aware"});
  const char* labels[] = {"original", "lowercase", "UPPERCASE", "quoted"};
  for (int kind = 0; kind < 4; ++kind) {
    std::vector<data::FtSample> perturbed;
    for (std::size_t i = 0; i < std::min(limit, splits.test.size()); ++i) {
      data::FtSample s = splits.test[i];
      std::string p = transform_prompt(s.prompt, kind);
      std::string pad(util::indent_width(s.input_line), ' ');
      s.prompt = p;
      s.input_line = pad + "- name: " + p + "\n";
      perturbed.push_back(std::move(s));
    }
    core::EvalOptions eval;
    auto report = core::evaluate_model(m, tok, perturbed, eval);
    robust.add_row({labels[kind], util::fmt_fixed(report.schema_correct, 2),
                    util::fmt_fixed(report.exact_match, 2),
                    util::fmt_fixed(report.bleu, 2),
                    util::fmt_fixed(report.ansible_aware, 2)});
  }
  std::printf("%s", robust.to_string().c_str());
  std::printf(
      "\nNote: perturbed prompts keep the original gold bodies; EM/BLEU "
      "compare against the perturbed name line (shared by prediction and "
      "target), so drops isolate the effect on the generated body.\n");

  // --- Ablation 3: execution-based evaluation ------------------------------
  // The paper rules this out on real infrastructure ("it would be
  // impractical to evaluate a task that installs a package on a number of
  // remote hosts by executing it"); the simulated managed node makes it
  // possible. Predictions and golds run from identical baseline hosts;
  // equivalent final states count as correct.
  std::printf("\n=== Ablation 3: execution-based evaluation (simulated "
              "managed node) ===\n\n");
  wisdom::exec::EquivalenceStats exec_stats;
  core::EvalOptions eval;
  for (std::size_t i = 0; i < std::min(limit, splits.test.size()); ++i) {
    const data::FtSample& s = splits.test[i];
    std::string prediction = core::predict_snippet(m, tok, s, eval);
    exec_stats.add(
        wisdom::exec::execution_equivalence(prediction, s.full_target()));
  }
  util::Table exec_table({"Outcome", "Count"});
  exec_table.add_row({"equivalent (state match)",
                      std::to_string(exec_stats.equivalent)});
  exec_table.add_row({"different final state",
                      std::to_string(exec_stats.different)});
  exec_table.add_row({"prediction failed to run",
                      std::to_string(exec_stats.pred_failed)});
  exec_table.add_row({"unscorable (unsimulated/gold failed)",
                      std::to_string(exec_stats.unscorable)});
  std::printf("%s", exec_table.to_string().c_str());
  std::printf("\nExecution-equivalence rate over scorable samples: %.2f%%\n",
              100.0 * exec_stats.rate());
  return 0;
}
