// Reproduces Table IV: few-shot evaluation of the CodeGen baselines, the
// Codex-Davinci-002 analog, and the four Wisdom pre-training variants on
// the Galaxy test split, with the paper's Schema Correct / EM / BLEU /
// Ansible Aware metrics. Pre-trained checkpoints are cached under
// build/wisdom_cache, so later tables and repeated runs skip the training.
//
// Expected shape (not absolute values — our substrate is a scaled-down
// simulator): CodeGen-NL worst; +code (Multi/Mono) better; larger CodeGen
// slightly better again; Codex-analog highest EM of the baselines (Galaxy
// leakage); Wisdom models best-in-class Ansible Aware at the smallest size.
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluate.hpp"

namespace bench = wisdom::bench;
namespace core = wisdom::core;
namespace model = wisdom::model;
namespace util = wisdom::util;

int main(int, char** argv) {
  util::set_log_level(util::LogLevel::Info);
  core::Pipeline pipe(bench::default_pipeline_config(argv[0]));
  const auto& tok = pipe.tokenizer();
  const auto& splits = pipe.galaxy_splits();

  struct Row {
    core::PretrainMix mix;
    model::SizeClass size;
    bool ansible_prefix;  // "Ansible\n" helps CodeGen/Codex, not Wisdom
    bench::PaperRow paper;
  };
  const Row rows[] = {
      {core::PretrainMix::CodeGenNL, model::SizeClass::S350M, true,
       {71.26, 1.69, 24.95, 6.24}},
      {core::PretrainMix::CodeGenMono, model::SizeClass::S350M, true,
       {82.40, 6.37, 34.24, 34.15}},
      {core::PretrainMix::CodeGenMulti, model::SizeClass::S350M, true,
       {83.65, 6.92, 34.26, 34.40}},
      {core::PretrainMix::CodeGenMulti, model::SizeClass::M2_7B, true,
       {78.00, 7.74, 37.27, 36.23}},
      {core::PretrainMix::CodeGenMulti, model::SizeClass::L6B, true,
       {85.80, 7.98, 39.67, 39.27}},
      {core::PretrainMix::CodexAnalog, model::SizeClass::XL175B, true,
       {88.82, 13.66, 50.40, 55.01}},
      {core::PretrainMix::WisdomAnsibleMulti, model::SizeClass::S350M, false,
       {96.56, 7.35, 46.58, 54.51}},
      {core::PretrainMix::WisdomYamlMulti, model::SizeClass::S350M, false,
       {95.97, 7.16, 45.52, 53.08}},
      {core::PretrainMix::WisdomAnsible, model::SizeClass::S350M, false,
       {95.10, 4.63, 39.49, 48.03}},
      {core::PretrainMix::WisdomYaml, model::SizeClass::S350M, false,
       {94.63, 4.19, 40.13, 47.76}},
  };

  std::printf("=== Table IV: few-shot results (measured, paper in parens) "
              "===\n\n");
  util::Table table({"Model", "Size", "Ctx", "Schema Correct", "EM", "BLEU",
                     "Ansible Aware"});
  int printed = 0;
  for (const Row& row : rows) {
    model::Transformer m = pipe.pretrained(row.mix, row.size);
    // All models are evaluated at their pre-training window. (The paper's
    // 2048-vs-1024 column is an inventory difference; rotary positions
    // beyond the training window extrapolate poorly at this scale, so we
    // do not widen the window at eval time.)
    core::EvalOptions eval;
    eval.ansible_prefix = row.ansible_prefix;
    auto report = core::evaluate_model(m, tok, splits.test, eval);
    bench::add_metric_row(table, core::mix_label(row.mix),
                          model::size_label(row.size),
                          std::to_string(m.config().ctx), report, row.paper);
    // Section rules after the CodeGen block and the Codex block, as in the
    // paper's layout.
    ++printed;
    if (printed == 5 || printed == 6) table.add_rule();
    std::fprintf(stderr, "[table3] %s %s done\n",
                 core::mix_label(row.mix).c_str(),
                 model::size_label(row.size).c_str());
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nTest samples: %zu. Paper context windows 2048 (CodeGen/"
              "Codex) and 1024 (Wisdom) correspond to simulated windows "
              "shown in Ctx.\n",
              splits.test.size());
  return 0;
}
