// Reproduces Table I: extracted file count per data source, plus the
// downstream dedup/extraction statistics the paper reports in prose
// (exact-match dedup; fine-tuning sample extraction with an 80/10/10
// split). Counts are scaled (see DESIGN.md); the paper's original counts
// are printed alongside.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "data/dedup.hpp"
#include "data/sources.hpp"

namespace data = wisdom::data;
namespace util = wisdom::util;

int main(int, char**) {
  std::printf("=== Table I: extracted file count per data source ===\n");
  std::printf("(scaled reproduction; paper counts in parentheses)\n\n");

  util::Table table({"Source", "File Count", "Paper Count", "YAML Type",
                     "Usage", "Bytes"});
  const std::uint64_t seed = 2023;
  for (const auto& spec : data::table1_sources()) {
    auto files = data::build_source(spec, seed);
    std::size_t bytes = 0;
    for (const auto& f : files) bytes += f.text.size();
    table.add_row({spec.label, std::to_string(files.size()),
                   std::to_string(spec.paper_file_count), spec.yaml_type,
                   spec.usage, std::to_string(bytes)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Dedup statistics (the paper: "we de-duplicated the dataset using a
  // simple exact match criterion").
  auto galaxy = data::galaxy_corpus(seed ^ 0xF2);
  data::DedupStats stats;
  auto files = data::dedup_files(std::move(galaxy.files), &stats);
  std::printf("Galaxy dedup: %zu files -> %zu kept (%zu exact dups)\n",
              stats.input, stats.kept, stats.removed());

  auto samples = data::extract_corpus_samples(files);
  auto splits = data::split_dataset(samples, seed ^ 0x5);
  std::printf(
      "Fine-tuning samples: %zu total -> %zu train / %zu valid / %zu test "
      "(80/10/10)\n\n",
      samples.size(), splits.train.size(), splits.valid.size(),
      splits.test.size());

  std::map<data::GenerationType, int> counts;
  for (const auto& s : samples) counts[s.type]++;
  util::Table types({"Generation Type", "Count", "Share"});
  for (const auto& [type, count] : counts) {
    types.add_row({data::generation_type_label(type), std::to_string(count),
                   util::fmt_fixed(100.0 * count /
                                       static_cast<double>(samples.size()),
                                   1) +
                       "%"});
  }
  std::printf("%s", types.to_string().c_str());
  std::printf(
      "\nPaper distribution (Table VI counts): T+NL->T 78.3%%, NL->T 13.8%%, "
      "PB+NL->T 6.8%%, NL->PB 1.1%%\n");
  return 0;
}
