// Shared helpers for the table-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/pipeline.hpp"
#include "metrics/aggregate.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace wisdom::bench {

// Checkpoint cache shared by all benchmark binaries, colocated with the
// build tree (<exe dir>/../wisdom_cache) so repeated runs and later tables
// reuse earlier pre-training work.
inline std::string cache_dir_for(const char* argv0) {
  std::filesystem::path exe(argv0);
  std::filesystem::path dir =
      exe.parent_path().empty() ? std::filesystem::path(".")
                                : exe.parent_path();
  std::filesystem::path cache = dir / ".." / "wisdom_cache";
  std::error_code ec;
  std::filesystem::create_directories(cache, ec);
  return cache.string();
}

inline core::PipelineConfig default_pipeline_config(const char* argv0) {
  core::PipelineConfig cfg;
  cfg.cache_dir = cache_dir_for(argv0);
  return cfg;
}

// Formats a metric cell as "measured (paper X)" so each table can be read
// against the original. Pass a negative paper value to omit it.
inline std::string cell(double measured, double paper) {
  std::string out = util::fmt_fixed(measured, 2);
  if (paper >= 0.0) out += " (" + util::fmt_fixed(paper, 2) + ")";
  return out;
}

struct PaperRow {
  double schema = -1.0;
  double em = -1.0;
  double bleu = -1.0;
  double aware = -1.0;
};

inline void add_metric_row(util::Table& table, const std::string& model,
                           const std::string& size, const std::string& ctx,
                           const metrics::MetricsReport& report,
                           const PaperRow& paper) {
  table.add_row({model, size, ctx, cell(report.schema_correct, paper.schema),
                 cell(report.exact_match, paper.em),
                 cell(report.bleu, paper.bleu),
                 cell(report.ansible_aware, paper.aware)});
}

}  // namespace wisdom::bench
