// Reproduces Table VI: per-generation-type breakdown of the fine-tuned
// CodeGen-Multi model (context 1024-analog). Expected shape: PB+NL->T
// best, T+NL->T close behind (it dominates training data), NL->T clearly
// lower (no context), NL->PB worst with EM ~ 0.
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluate.hpp"

namespace bench = wisdom::bench;
namespace core = wisdom::core;
namespace data = wisdom::data;
namespace model = wisdom::model;
namespace util = wisdom::util;

int main(int, char** argv) {
  util::set_log_level(util::LogLevel::Info);
  core::Pipeline pipe(bench::default_pipeline_config(argv[0]));
  const auto& tok = pipe.tokenizer();
  const auto& splits = pipe.galaxy_splits();

  // The same fine-tuned model as Table V's "CodeGen-Multi 350M ctx 96" row
  // (cached from bench_table4_finetune when that ran first).
  core::Pipeline::FinetuneOptions opts;
  opts.context_window = 96;
  model::Transformer m = pipe.finetuned(core::PretrainMix::CodeGenMulti,
                                        model::SizeClass::S350M, opts);

  core::EvalOptions eval;
  auto overall = core::evaluate_model(m, tok, splits.test, eval);
  auto by_type = core::evaluate_by_type(m, tok, splits.test, eval);

  struct PaperTyped {
    data::GenerationType type;
    int paper_count;
    bench::PaperRow paper;
  };
  const PaperTyped paper_rows[] = {
      {data::GenerationType::NlToPlaybook, 550, {93.09, 0.0, 22.76, 23.16}},
      {data::GenerationType::NlToTask, 6961, {96.51, 5.17, 45.46, 49.28}},
      {data::GenerationType::PbNlToTask, 3441, {98.75, 46.00, 79.66, 82.31}},
      {data::GenerationType::TNlToTask, 39628, {98.35, 31.65, 69.41, 72.93}},
  };

  std::printf("=== Table VI: metrics per generation type (measured, paper "
              "in parens) ===\n\n");
  util::Table table({"Generation Type", "Count", "Schema Correct", "EM",
                     "BLEU", "Ansible Aware"});
  table.add_row({"ALL", std::to_string(overall.count),
                 bench::cell(overall.schema_correct, 98.06),
                 bench::cell(overall.exact_match, 28.64),
                 bench::cell(overall.bleu, 66.03),
                 bench::cell(overall.ansible_aware, 69.77)});
  table.add_rule();
  for (const PaperTyped& row : paper_rows) {
    auto it = by_type.find(row.type);
    if (it == by_type.end()) continue;
    const auto& r = it->second;
    table.add_row({data::generation_type_label(row.type),
                   std::to_string(r.count) + " (" +
                       std::to_string(row.paper_count) + ")",
                   bench::cell(r.schema_correct, row.paper.schema),
                   bench::cell(r.exact_match, row.paper.em),
                   bench::cell(r.bleu, row.paper.bleu),
                   bench::cell(r.ansible_aware, row.paper.aware)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
