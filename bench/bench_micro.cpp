// Microbenchmarks of the substrate components: YAML parse/emit, BPE
// tokenizer training and encoding, the two novel metrics, and the schema
// linter. These bound the data-pipeline throughput (the paper processes
// 3.3M files) and the per-request overhead of the serving path.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "ansible/linter.hpp"
#include "data/ansible_gen.hpp"
#include "metrics/ansible_aware.hpp"
#include "metrics/bleu.hpp"
#include "metrics/schema_correct.hpp"
#include "obs/metrics.hpp"
#include "text/bpe.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "yaml/emit.hpp"
#include "yaml/parse.hpp"

namespace {

using wisdom::util::Rng;

std::string sample_playbook() {
  wisdom::data::AnsibleGenerator gen{Rng{42}};
  return gen.playbook_text(4);
}

std::string sample_corpus(std::size_t files) {
  wisdom::data::AnsibleGenerator gen{Rng{7}};
  std::string out;
  for (std::size_t i = 0; i < files; ++i) out += gen.role_tasks_text(4);
  return out;
}

void BM_YamlParse(benchmark::State& state) {
  std::string text = sample_playbook();
  for (auto _ : state) {
    auto doc = wisdom::yaml::parse_document(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_YamlParse);

void BM_YamlRoundTrip(benchmark::State& state) {
  std::string text = sample_playbook();
  for (auto _ : state) {
    auto normalized = wisdom::yaml::normalize(text);
    benchmark::DoNotOptimize(normalized);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_YamlRoundTrip);

void BM_BpeTrain(benchmark::State& state) {
  std::string corpus = sample_corpus(50);
  for (auto _ : state) {
    auto tok = wisdom::text::BpeTokenizer::train(corpus, 512);
    benchmark::DoNotOptimize(tok.vocab_size());
  }
}
BENCHMARK(BM_BpeTrain)->Unit(benchmark::kMillisecond);

void BM_BpeEncode(benchmark::State& state) {
  std::string corpus = sample_corpus(50);
  auto tok = wisdom::text::BpeTokenizer::train(corpus, 512);
  std::string text = sample_playbook();
  for (auto _ : state) {
    auto ids = tok.encode(text);
    benchmark::DoNotOptimize(ids);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_BpeEncode);

void BM_MetricBleu(benchmark::State& state) {
  wisdom::data::AnsibleGenerator gen{Rng{3}};
  std::string a = gen.role_tasks_text(3);
  std::string b = gen.role_tasks_text(3);
  for (auto _ : state) {
    double score = wisdom::metrics::sentence_bleu(a, b);
    benchmark::DoNotOptimize(score);
  }
}
BENCHMARK(BM_MetricBleu);

void BM_MetricAnsibleAware(benchmark::State& state) {
  wisdom::data::AnsibleGenerator gen{Rng{4}};
  std::string a = gen.role_tasks_text(3);
  std::string b = gen.role_tasks_text(3);
  for (auto _ : state) {
    double score = wisdom::metrics::ansible_aware_text(a, b);
    benchmark::DoNotOptimize(score);
  }
}
BENCHMARK(BM_MetricAnsibleAware);

void BM_MetricSchemaCorrect(benchmark::State& state) {
  std::string text = sample_playbook();
  for (auto _ : state) {
    bool ok = wisdom::metrics::schema_correct(text);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_MetricSchemaCorrect);

void BM_Linter(benchmark::State& state) {
  std::string text = sample_playbook();
  auto doc = wisdom::yaml::parse_document(text);
  for (auto _ : state) {
    auto result = wisdom::ansible::lint_playbook(*doc);
    benchmark::DoNotOptimize(result.violations.size());
  }
}
BENCHMARK(BM_Linter);

}  // namespace

// Custom main so the run ends with a metrics dump: the CI smoke job (and
// anyone profiling locally) reads the built-in instrumentation families
// off stdout instead of wiring up a scrape endpoint.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Touch the pool so its metric families are registered even under a
  // --benchmark_filter that skips every parallel workload.
  wisdom::util::ThreadPool::global();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n--- metrics exposition (global registry) ---\n%s",
              wisdom::obs::MetricsRegistry::global().expose_prometheus().c_str());
  return 0;
}
