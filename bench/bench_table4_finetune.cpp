// Reproduces Table V: fine-tuned results on Galaxy with the paper's
// ablations —
//   * CodeGen-Multi fine-tuned at context windows 512/1024/2048 (simulated
//     48/96/192) and at the larger 2.7B-analog size;
//   * the prefix-based prompt formulation (CodeGen-Multi-prefix), which the
//     paper's Eq. (2) name-completion formulation must beat;
//   * the four Wisdom pre-training variants fine-tuned identically;
//   * Wisdom-Ansible-Multi fine-tuned on 50% / 20% / 10% of the data.
//
// Expected shape: fine-tuning lifts every metric by tens of points over
// Table IV; 48 < 96 ~ 192 for context; prefix markedly worse; data
// fraction monotone with diminishing returns; the best small fine-tuned
// model beats the few-shot Codex-analog of Table IV.
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluate.hpp"

namespace bench = wisdom::bench;
namespace core = wisdom::core;
namespace data = wisdom::data;
namespace model = wisdom::model;
namespace util = wisdom::util;

int main(int, char** argv) {
  util::set_log_level(util::LogLevel::Info);
  core::Pipeline pipe(bench::default_pipeline_config(argv[0]));
  const auto& tok = pipe.tokenizer();
  const auto& splits = pipe.galaxy_splits();

  struct Row {
    const char* label;
    core::PretrainMix mix;
    model::SizeClass size;
    std::int32_t ctx;       // simulated context window for FT + eval
    data::PromptFormat format;
    double fraction;
    bench::PaperRow paper;
  };
  using PF = data::PromptFormat;
  const auto S = model::SizeClass::S350M;
  const Row rows[] = {
      {"CodeGen-Multi", core::PretrainMix::CodeGenMulti, S, 48,
       PF::NameCompletion, 1.0, {97.77, 22.30, 61.75, 64.84}},
      {"CodeGen-Multi", core::PretrainMix::CodeGenMulti, S, 96,
       PF::NameCompletion, 1.0, {98.06, 28.64, 66.03, 69.77}},
      {"CodeGen-Multi", core::PretrainMix::CodeGenMulti, S, 192,
       PF::NameCompletion, 1.0, {98.02, 27.14, 66.12, 69.69}},
      {"CodeGen-Multi", core::PretrainMix::CodeGenMulti,
       model::SizeClass::M2_7B, 96, PF::NameCompletion, 1.0,
       {98.36, 28.03, 65.25, 69.41}},
      {"CodeGen-Multi-prefix", core::PretrainMix::CodeGenMulti, S, 96,
       PF::Prefix, 1.0, {72.96, 12.37, 56.29, 45.87}},
      {"Wisdom-Ansible-Multi", core::PretrainMix::WisdomAnsibleMulti, S, 96,
       PF::NameCompletion, 1.0, {98.00, 29.36, 66.67, 70.79}},
      {"Wisdom-Yaml-Multi", core::PretrainMix::WisdomYamlMulti, S, 96,
       PF::NameCompletion, 1.0, {98.02, 28.79, 65.92, 69.65}},
      {"Wisdom-Ansible", core::PretrainMix::WisdomAnsible, S, 96,
       PF::NameCompletion, 1.0, {97.68, 23.44, 61.94, 66.29}},
      {"Wisdom-Yaml", core::PretrainMix::WisdomYaml, S, 96,
       PF::NameCompletion, 1.0, {97.97, 23.27, 61.20, 65.70}},
      {"Wisdom-Ansible-Multi -50", core::PretrainMix::WisdomAnsibleMulti, S,
       96, PF::NameCompletion, 0.5, {98.10, 27.90, 65.46, 69.79}},
      {"Wisdom-Ansible-Multi -20", core::PretrainMix::WisdomAnsibleMulti, S,
       96, PF::NameCompletion, 0.2, {98.08, 25.00, 63.37, 67.90}},
      {"Wisdom-Ansible-Multi -10", core::PretrainMix::WisdomAnsibleMulti, S,
       96, PF::NameCompletion, 0.1, {98.08, 22.62, 61.68, 66.23}},
  };

  std::printf("=== Table V: fine-tuned results (measured, paper in parens) "
              "===\n\n");
  util::Table table({"Model", "Size", "Ctx", "Schema Correct", "EM", "BLEU",
                     "Ansible Aware"});
  int printed = 0;
  for (const Row& row : rows) {
    core::Pipeline::FinetuneOptions opts;
    opts.format = row.format;
    opts.data_fraction = row.fraction;
    opts.context_window = row.ctx;
    model::Transformer m = pipe.finetuned(row.mix, row.size, opts);
    m.set_context_window(row.ctx);
    core::EvalOptions eval;
    eval.format = row.format;
    auto report = core::evaluate_model(m, tok, splits.test, eval);
    bench::add_metric_row(table, row.label, model::size_label(row.size),
                          std::to_string(row.ctx), report, row.paper);
    ++printed;
    if (printed == 4 || printed == 5 || printed == 9) table.add_rule();
    std::fprintf(stderr, "[table4] %s ctx=%d frac=%.0f%% done\n", row.label,
                 row.ctx, row.fraction * 100.0);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nTest samples: %zu. Simulated context 48/96/192 stands for "
              "the paper's 512/1024/2048.\n",
              splits.test.size());
  return 0;
}
