#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--threshold 0.10]
                              [--seed-if-missing]

For every benchmark in the baseline that reports a "tokens/s" counter, the
current run must stay within THRESHOLD (default 10%) of the baseline's
tokens/s. Benchmarks that also report service-quality counters (shed_rate,
degraded_rate — the overload sweep's fields) are additionally gated on
those: the current rate must not exceed the baseline's by more than
QUALITY_TOLERANCE (default 0.05, absolute), so an overload-handling change
that silently sheds or degrades more traffic fails the gate even when raw
throughput holds. Benchmarks present only in the current run are reported
but never fail the check (new benchmarks seed on the next baseline
refresh).

Benchmarks listed in MIN_COUNTERS additionally carry absolute floors on
acceptance-criterion counters (e.g. the speculative sweep's speedup vs the
non-speculative baseline must stay >= 1.3x): whenever the current run
reports such a counter it must meet the floor, baseline or not.

With --seed-if-missing, a missing baseline file is created from the current
run and the check passes — this is how CI bootstraps the very first
baseline without a manual commit.

Exit codes: 0 = within threshold (or baseline seeded), 1 = regression,
2 = usage / malformed input.
"""

import argparse
import json
import shutil
import sys


def load_rates(path):
    """Map benchmark name -> best tokens/s across repetitions.

    Raw (non-aggregate) entries that report a tokens/s counter are grouped
    by name. Best-of-N is the comparator because scheduler noise on shared
    CI runners is one-sided — contention only ever slows a rep down — so
    the fastest rep is the most reproducible estimate of true throughput.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    samples = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        rate = bench.get("tokens/s")
        if isinstance(rate, (int, float)) and rate > 0:
            samples.setdefault(bench["name"], []).append(float(rate))
    return {name: max(rates) for name, rates in samples.items()}


# Service-quality counters gated in addition to tokens/s. Higher is worse,
# and they are fractions of offered/served traffic, so the comparison is an
# absolute-increase bound rather than a relative drop.
QUALITY_FIELDS = ("shed_rate", "degraded_rate")

# Absolute acceptance floors, keyed by benchmark-name prefix: whenever the
# current run reports the counter, its best-of-reps value must meet the
# floor — these encode a feature's acceptance criterion (the speculative
# sweep must beat non-speculative serving by >= 1.3x on cold prompts), so
# they gate against the current run alone, independent of any baseline.
# Runs that never execute the benchmark (older baselines, partial filters)
# are unaffected, matching the new-benchmark seeding policy.
MIN_COUNTERS = {
    "BM_SpeculativeSweep": {"speedup": 1.30},
}


def load_field(path, field):
    """Map benchmark name -> best (max) value of `field` across reps."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    samples = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        value = bench.get(field)
        if isinstance(value, (int, float)):
            samples.setdefault(bench["name"], []).append(float(value))
    return {name: max(values) for name, values in samples.items()}


def load_quality(path):
    """Map benchmark name -> {field: worst value across repetitions}.

    Worst-of-N (max) is the comparator: shedding is load-dependent, and the
    gate exists to catch the run where overload handling got worse, not the
    luckiest rep.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    worst = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        for field in QUALITY_FIELDS:
            value = bench.get(field)
            if isinstance(value, (int, float)):
                fields = worst.setdefault(bench["name"], {})
                fields[field] = max(fields.get(field, 0.0), float(value))
    return worst


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max fractional tokens/s drop (default 0.10)")
    parser.add_argument("--quality-tolerance", type=float, default=0.05,
                        help="max absolute shed_rate/degraded_rate increase "
                             "over baseline (default 0.05)")
    parser.add_argument("--seed-if-missing", action="store_true",
                        help="copy CURRENT to BASELINE if BASELINE is absent")
    args = parser.parse_args()

    try:
        current = load_rates(args.current)
    except (OSError, ValueError, KeyError) as err:
        print(f"error: cannot read current run {args.current}: {err}")
        return 2
    if not current:
        print(f"error: no tokens/s counters found in {args.current}")
        return 2

    try:
        baseline = load_rates(args.baseline)
    except FileNotFoundError:
        if args.seed_if_missing:
            shutil.copyfile(args.current, args.baseline)
            print(f"baseline seeded: {args.baseline} <- {args.current}")
            for name, rate in sorted(current.items()):
                print(f"  {name}: {rate:.1f} tokens/s")
            return 0
        print(f"error: baseline {args.baseline} not found "
              "(pass --seed-if-missing to bootstrap)")
        return 2
    except (OSError, ValueError, KeyError) as err:
        print(f"error: cannot read baseline {args.baseline}: {err}")
        return 2

    failures = []
    for name, base_rate in sorted(baseline.items()):
        cur_rate = current.get(name)
        if cur_rate is None:
            failures.append(f"{name}: present in baseline but missing from "
                            "current run")
            continue
        drop = (base_rate - cur_rate) / base_rate
        verdict = "FAIL" if drop > args.threshold else "ok"
        print(f"[{verdict}] {name}: {cur_rate:.1f} tokens/s "
              f"(baseline {base_rate:.1f}, {drop:+.1%} drop, "
              f"limit {args.threshold:.0%})")
        if drop > args.threshold:
            failures.append(f"{name}: {drop:.1%} drop exceeds "
                            f"{args.threshold:.0%}")
    for name in sorted(set(current) - set(baseline)):
        print(f"[new] {name}: {current[name]:.1f} tokens/s "
              "(not in baseline; will gate after next baseline refresh)")

    # Quality gate: shed/degraded rates must not climb past the baseline
    # by more than the absolute tolerance. Entries (or fields) only in the
    # current run seed on the next refresh, like new benchmarks above.
    current_quality = load_quality(args.current)
    baseline_quality = load_quality(args.baseline)
    for name, base_fields in sorted(baseline_quality.items()):
        cur_fields = current_quality.get(name)
        if cur_fields is None:
            if name in current:
                failures.append(f"{name}: quality counters present in "
                                "baseline but missing from current run")
            continue
        for field, base_value in sorted(base_fields.items()):
            cur_value = cur_fields.get(field)
            if cur_value is None:
                failures.append(f"{name}: {field} present in baseline but "
                                "missing from current run")
                continue
            rise = cur_value - base_value
            verdict = "FAIL" if rise > args.quality_tolerance else "ok"
            print(f"[{verdict}] {name}: {field}={cur_value:.3f} "
                  f"(baseline {base_value:.3f}, {rise:+.3f}, "
                  f"limit +{args.quality_tolerance:.2f})")
            if rise > args.quality_tolerance:
                failures.append(f"{name}: {field} rose {rise:.3f} over "
                                f"baseline (limit "
                                f"{args.quality_tolerance:.2f})")

    # Absolute floors: acceptance-criterion counters gated on the current
    # run whenever the benchmark reporting them actually ran.
    for prefix, floors in sorted(MIN_COUNTERS.items()):
        for field, floor in sorted(floors.items()):
            values = load_field(args.current, field)
            for name, value in sorted(values.items()):
                if not name.startswith(prefix):
                    continue
                verdict = "FAIL" if value < floor else "ok"
                print(f"[{verdict}] {name}: {field}={value:.3f} "
                      f"(floor {floor:.2f})")
                if value < floor:
                    failures.append(f"{name}: {field}={value:.3f} below "
                                    f"floor {floor:.2f}")

    if failures:
        print("\nbenchmark regression detected:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nall benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
