// Reproduces the paper's deployment-latency argument: "we benchmarked the
// generation throughput on single GPU for both models and found that the
// 350M model was ~1.9x faster than the 2.7B" — the reason Wisdom ships the
// small model. Here: greedy-decode and training-step throughput across the
// scaled size family, swept over 1/2/4/8 pool threads so the model-size /
// latency table can be reproduced at each parallelism level, plus batched
// serving throughput through the InferenceService.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/packing.hpp"
#include "model/config.hpp"
#include "model/transformer.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "text/bpe.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace model = wisdom::model;
namespace serve = wisdom::serve;
namespace text = wisdom::text;

namespace {

// Per-service registries die with their benchmark-local service; the last
// serving benchmark stashes its exposition here so main() can print it
// next to the global (pool/model) families.
std::string g_last_service_exposition;

constexpr std::int32_t kVocab = 512;
constexpr std::int32_t kCtx = 96;

model::SizeClass size_from_index(int index) {
  switch (index) {
    case 0: return model::SizeClass::S350M;
    case 1: return model::SizeClass::M2_7B;
    case 2: return model::SizeClass::L6B;
    default: return model::SizeClass::XL175B;
  }
}

std::string label_with_threads(model::SizeClass size, int threads) {
  return model::size_label(size) + "/t" + std::to_string(threads);
}

void BM_GreedyDecode(benchmark::State& state) {
  model::SizeClass size = size_from_index(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  wisdom::util::ThreadPool::set_global_threads(threads);
  model::ModelConfig cfg = model::config_for(size, kVocab, kCtx);
  model::Transformer m(cfg, 7);
  wisdom::util::Rng rng(1);

  std::int64_t tokens = 0;
  for (auto _ : state) {
    model::Transformer::KvCache cache = m.make_cache();
    for (int i = 0; i < kCtx; ++i) {
      auto logits = m.decode_step(
          cache, static_cast<std::int32_t>(rng.uniform(kVocab)));
      benchmark::DoNotOptimize(logits.data());
      ++tokens;
    }
  }
  state.counters["tokens/s"] =
      benchmark::Counter(static_cast<double>(tokens),
                         benchmark::Counter::kIsRate);
  state.counters["params"] = static_cast<double>(m.param_count());
  state.SetLabel(label_with_threads(size, threads));
}
BENCHMARK(BM_GreedyDecode)
    ->ArgsProduct({{0, 1, 2, 3}, {1, 2, 4, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The acceptance metric for the thread pool: the 350M-config forward pass
// (batch x ctx rows through every layer) at 1/2/4/8 threads. Output is
// bit-identical across thread counts; only wall time changes.
void BM_ForwardPass(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  wisdom::util::ThreadPool::set_global_threads(threads);
  model::ModelConfig cfg =
      model::config_for(model::SizeClass::S350M, kVocab, kCtx);
  model::Transformer m(cfg, 7);
  wisdom::util::Rng rng(3);
  const int batch = 8;
  std::vector<std::int32_t> x(static_cast<std::size_t>(batch) * kCtx);
  std::vector<std::int32_t> y(x.size());
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform(kVocab));
  for (auto& v : y) v = static_cast<std::int32_t>(rng.uniform(kVocab));

  std::int64_t tokens = 0;
  for (auto _ : state) {
    float loss = m.evaluate(x, y, batch, kCtx);
    benchmark::DoNotOptimize(loss);
    tokens += batch * kCtx;
  }
  state.counters["tokens/s"] =
      benchmark::Counter(static_cast<double>(tokens),
                         benchmark::Counter::kIsRate);
  state.SetLabel(label_with_threads(model::SizeClass::S350M, threads));
}
BENCHMARK(BM_ForwardPass)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_TrainingStep(benchmark::State& state) {
  model::SizeClass size = size_from_index(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  wisdom::util::ThreadPool::set_global_threads(threads);
  model::ModelConfig cfg = model::config_for(size, kVocab, kCtx);
  model::Transformer m(cfg, 7);
  wisdom::util::Rng rng(2);
  const int batch = 4;
  std::vector<std::int32_t> x(static_cast<std::size_t>(batch) * kCtx);
  std::vector<std::int32_t> y(x.size());
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform(kVocab));
  for (auto& v : y) v = static_cast<std::int32_t>(rng.uniform(kVocab));

  wisdom::nn::AdamW opt;
  std::int64_t tokens = 0;
  for (auto _ : state) {
    m.zero_grad();
    float loss = m.forward_backward(x, y, batch, kCtx);
    benchmark::DoNotOptimize(loss);
    m.optim_step(opt, 1e-4f, 1.0f);
    tokens += batch * kCtx;
  }
  state.counters["tokens/s"] =
      benchmark::Counter(static_cast<double>(tokens),
                         benchmark::Counter::kIsRate);
  state.SetLabel(label_with_threads(size, threads));
}
BENCHMARK(BM_TrainingStep)
    ->ArgsProduct({{0, 1}, {1, 2, 4, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Batched serving through the InferenceService: N editor requests answered
// concurrently on the pool against one shared (untrained) model.
void BM_BatchedSuggest(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  wisdom::util::ThreadPool::set_global_threads(threads);
  static const text::BpeTokenizer* tokenizer = [] {
    return new text::BpeTokenizer(text::BpeTokenizer::train(
        "- name: Install nginx\n  ansible.builtin.apt:\n"
        "    name: nginx\n    state: present\n",
        300));
  }();
  model::ModelConfig cfg;
  cfg.vocab = static_cast<std::int32_t>(tokenizer->vocab_size());
  cfg.ctx = 64;
  cfg.d_model = 32;
  cfg.n_head = 4;
  cfg.n_layer = 2;
  cfg.d_ff = 128;
  model::Transformer m(cfg, 11);
  serve::ServiceOptions service_options;
  service_options.max_new_tokens = 24;
  // When CI asks for a predictions dump, serve through the strictest lint
  // policy: every dumped snippet is either repaired to schema-correct or
  // replaced by the fallback, so the dump must pass `wisdom_lint` with
  // zero errors — that is the CI lint gate.
  const char* dump_path = std::getenv("WISDOM_PREDICTIONS_DUMP");
  if (dump_path) service_options.lint_policy = serve::LintPolicy::RejectDegraded;
  serve::InferenceService service(m, *tokenizer, service_options);

  std::vector<serve::SuggestionRequest> requests(
      static_cast<std::size_t>(batch));
  for (auto& r : requests) r.prompt = "Install nginx";

  std::vector<serve::SuggestionResponse> responses;
  for (auto _ : state) {
    responses = service.suggest_batch(requests);
    benchmark::DoNotOptimize(responses.data());
  }
  if (dump_path) {
    // Concatenated served snippets form one task-list document (each
    // snippet is a top-level "- name:" task).
    if (std::FILE* dump = std::fopen(dump_path, "w")) {
      for (const auto& response : responses) {
        if (!response.ok) continue;
        std::fputs(response.snippet.c_str(), dump);
        if (!response.snippet.empty() && response.snippet.back() != '\n')
          std::fputc('\n', dump);
      }
      std::fclose(dump);
    }
  }
  const serve::ServiceStats stats = service.stats_snapshot();
  state.counters["tokens/s"] = stats.tokens_per_sec();
  state.counters["p95_ms"] = stats.p95_latency_ms();
  state.SetLabel("b" + std::to_string(batch) + "/t" +
                 std::to_string(threads));
  g_last_service_exposition = service.metrics().expose_prometheus();
}
BENCHMARK(BM_BatchedSuggest)
    ->ArgsProduct({{1, 4, 8}, {1, 4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Overload sweep: offered load at 1x/2x/4x the admission-queue capacity.
// Above 1x the bounded queue sheds the excess (reject-newest) instead of
// letting latency grow without bound, so the interesting numbers are the
// shed rate, the degraded rate, and the p99 of the requests actually
// served while saturated.
void BM_OverloadSweep(benchmark::State& state) {
  const int multiplier = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr int kCapacity = 4;
  wisdom::util::ThreadPool::set_global_threads(threads);
  static const text::BpeTokenizer* tokenizer = [] {
    return new text::BpeTokenizer(text::BpeTokenizer::train(
        "- name: Install nginx\n  ansible.builtin.apt:\n"
        "    name: nginx\n    state: present\n",
        300));
  }();
  model::ModelConfig cfg;
  cfg.vocab = static_cast<std::int32_t>(tokenizer->vocab_size());
  cfg.ctx = 64;
  cfg.d_model = 32;
  cfg.n_head = 4;
  cfg.n_layer = 2;
  cfg.d_ff = 128;
  model::Transformer m(cfg, 11);
  serve::ServiceOptions options;
  options.max_new_tokens = 24;
  options.queue_capacity = kCapacity;
  options.shed_policy = serve::ShedPolicy::RejectNewest;
  serve::InferenceService service(m, *tokenizer, options);

  std::vector<serve::SuggestionRequest> requests(
      static_cast<std::size_t>(kCapacity * multiplier));
  for (auto& r : requests) r.prompt = "Install nginx";

  for (auto _ : state) {
    auto responses = service.suggest_batch(requests);
    benchmark::DoNotOptimize(responses.data());
  }
  const serve::ServiceStats stats = service.stats_snapshot();
  state.counters["shed_rate"] = stats.shed_rate();
  state.counters["degraded_rate"] = stats.degraded_rate();
  state.counters["p99_ms"] = stats.p99_latency_ms();
  state.counters["tokens/s"] = stats.tokens_per_sec();
  state.SetLabel("offered=" + std::to_string(kCapacity * multiplier) +
                 "/cap=" + std::to_string(kCapacity) + "/t" +
                 std::to_string(threads));
  g_last_service_exposition = service.metrics().expose_prometheus();
}
BENCHMARK(BM_OverloadSweep)
    ->ArgsProduct({{1, 2, 4}, {4}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Prefix-cache sweep: batches whose kept prompts share ~0%/50%/90% of
// their tokens with previously served requests. Each iteration gets a
// fresh unique prompt tail (placed right after the shared span), so the
// response memo never hits and every win comes from KV-prefix reuse.
// The identical workload is replayed through a cache-off service inside
// PauseTiming, which yields the speedup counter the acceptance criterion
// reads: >=1.5x tokens/s at 90% overlap with hit_rate >= 0.8.
void BM_PrefixCacheSweep(benchmark::State& state) {
  const int overlap = static_cast<int>(state.range(0));
  const int threads = 4;
  wisdom::util::ThreadPool::set_global_threads(threads);
  static const text::BpeTokenizer* tokenizer = [] {
    return new text::BpeTokenizer(text::BpeTokenizer::train(
        "- name: Install nginx\n  ansible.builtin.apt:\n"
        "    name: nginx\n    state: present\n",
        300));
  }();
  model::ModelConfig cfg;
  cfg.vocab = static_cast<std::int32_t>(tokenizer->vocab_size());
  cfg.ctx = kCtx;
  cfg.d_model = 32;
  cfg.n_head = 4;
  cfg.n_layer = 2;
  cfg.d_ff = 128;
  model::Transformer m(cfg, 11);

  // Shared context + unique-tail padding sized (in tokens of the trained
  // tokenizer) so shared/kept lands near the nominal overlap while the
  // whole kept prompt stays inside the left-truncation budget
  // (ctx - max_new_tokens = 72 tokens).
  std::string context;
  std::string pad;
  if (overlap == 50) {
    context = "- name: Install nginx\n";
    pad = " zq jw xk pv";
  } else if (overlap == 90) {
    context =
        "- name: Install nginx\n  ansible.builtin.apt:\n"
        "    name: nginx\n    state: present\n";
  } else {
    pad = " zq jw xk pv bd fg hm ln";
  }

  serve::ServiceOptions warm_options;
  warm_options.max_new_tokens = 24;
  warm_options.prefix_cache_enabled = true;
  serve::InferenceService warm(m, *tokenizer, warm_options);
  serve::ServiceOptions cold_options;
  cold_options.max_new_tokens = 24;
  serve::InferenceService cold(m, *tokenizer, cold_options);

  constexpr int kBatch = 8;
  std::uint64_t epoch = 0;
  auto make_batch = [&](std::uint64_t e) {
    std::vector<serve::SuggestionRequest> requests(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      requests[static_cast<std::size_t>(i)].context = context;
      requests[static_cast<std::size_t>(i)].prompt =
          "v" + std::to_string(e) + "r" + std::to_string(i) + pad;
    }
    return requests;
  };

  std::int64_t warm_tokens = 0;
  std::int64_t cold_tokens = 0;
  double warm_seconds = 0.0;
  double cold_seconds = 0.0;
  for (auto _ : state) {
    auto requests = make_batch(epoch++);
    auto t0 = std::chrono::steady_clock::now();
    auto responses = warm.suggest_batch(requests);
    warm_seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    benchmark::DoNotOptimize(responses.data());
    for (const auto& response : responses)
      warm_tokens += response.generated_tokens;

    // Cache-off baseline over the very same requests, outside the timed
    // region so the reported ms stay the cached service's.
    state.PauseTiming();
    t0 = std::chrono::steady_clock::now();
    auto baseline = cold.suggest_batch(requests);
    cold_seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    benchmark::DoNotOptimize(baseline.data());
    for (const auto& response : baseline)
      cold_tokens += response.generated_tokens;
    state.ResumeTiming();
  }

  const serve::PrefixCacheStats cache = warm.prefix_cache_stats();
  const double warm_rate =
      warm_seconds > 0.0 ? static_cast<double>(warm_tokens) / warm_seconds : 0.0;
  const double cold_rate =
      cold_seconds > 0.0 ? static_cast<double>(cold_tokens) / cold_seconds : 0.0;
  state.counters["tokens/s"] = warm_rate;
  state.counters["baseline_tok/s"] = cold_rate;
  state.counters["speedup"] = cold_rate > 0.0 ? warm_rate / cold_rate : 0.0;
  state.counters["hit_rate"] = cache.hit_rate();
  state.counters["prefill_saved"] = static_cast<double>(cache.tokens_reused);
  state.SetLabel("overlap=" + std::to_string(overlap) + "%/t" +
                 std::to_string(threads));
  g_last_service_exposition = warm.metrics().expose_prometheus();
}
BENCHMARK(BM_PrefixCacheSweep)
    ->Arg(0)->Arg(50)->Arg(90)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Continuous vs request-level batching at rising concurrency. One model
// sized so the weights outgrow L2 (~3.4 MB of floats): request-level
// batching decodes each sequence as its own stream of GEMVs, re-streaming
// the full weight matrices per in-flight request, while the continuous
// scheduler merges all live sequences into one batched GEMM step per
// token — weights stream once per step no matter how many sequences ride
// it — and backfills retired slots between steps. Prompts are
// heterogeneous (different context lengths), so the request-level path
// also pays head-of-line imbalance: a worker that drew a short request
// idles while the longest one finishes. The speedup counter is the
// acceptance criterion: >= 1.5x tokens/s over request-level at 4x
// concurrency (batch 16 on 4 threads).
void BM_ContinuousBatchSweep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int threads = 4;
  wisdom::util::ThreadPool::set_global_threads(threads);
  static const text::BpeTokenizer* tokenizer = [] {
    return new text::BpeTokenizer(text::BpeTokenizer::train(
        "- name: Install nginx\n  ansible.builtin.apt:\n"
        "    name: nginx\n    state: present\n",
        300));
  }();
  model::ModelConfig cfg;
  cfg.vocab = static_cast<std::int32_t>(tokenizer->vocab_size());
  cfg.ctx = 96;
  cfg.d_model = 128;
  cfg.n_head = 4;
  cfg.n_layer = 4;
  cfg.d_ff = 512;
  static const model::Transformer* shared_model = [&] {
    return new model::Transformer(cfg, 11);
  }();
  const model::Transformer& m = *shared_model;

  serve::ServiceOptions continuous_options;
  continuous_options.max_new_tokens = 24;
  continuous_options.max_batch_sequences = batch;
  serve::InferenceService continuous(m, *tokenizer, continuous_options);
  serve::ServiceOptions request_level_options = continuous_options;
  request_level_options.continuous_batching = false;
  serve::InferenceService request_level(m, *tokenizer, request_level_options);

  // Heterogeneous prompts: context depth cycles 0/1/2/3 stanzas.
  const char* stanza =
      "- name: Install nginx\n  ansible.builtin.apt:\n"
      "    name: nginx\n    state: present\n";
  std::vector<serve::SuggestionRequest> requests(
      static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    auto& r = requests[static_cast<std::size_t>(i)];
    for (int k = 0; k < i % 4; ++k) r.context += stanza;
    r.prompt = "Install package " + std::to_string(i);
    r.indent = i % 3;
  }

  std::int64_t continuous_tokens = 0;
  std::int64_t request_level_tokens = 0;
  double continuous_seconds = 0.0;
  double request_level_seconds = 0.0;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    auto responses = continuous.suggest_batch(requests);
    continuous_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    benchmark::DoNotOptimize(responses.data());
    for (const auto& response : responses)
      continuous_tokens += response.generated_tokens;

    // Request-level baseline over the same requests, outside the timed
    // region so the reported ms stay the continuous path's.
    state.PauseTiming();
    t0 = std::chrono::steady_clock::now();
    auto baseline = request_level.suggest_batch(requests);
    request_level_seconds += std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
    benchmark::DoNotOptimize(baseline.data());
    for (const auto& response : baseline)
      request_level_tokens += response.generated_tokens;
    state.ResumeTiming();
  }

  const double continuous_rate =
      continuous_seconds > 0.0
          ? static_cast<double>(continuous_tokens) / continuous_seconds
          : 0.0;
  const double request_level_rate =
      request_level_seconds > 0.0
          ? static_cast<double>(request_level_tokens) / request_level_seconds
          : 0.0;
  state.counters["tokens/s"] = continuous_rate;
  state.counters["baseline_tok/s"] = request_level_rate;
  state.counters["speedup"] =
      request_level_rate > 0.0 ? continuous_rate / request_level_rate : 0.0;
  state.SetLabel("b" + std::to_string(batch) + "/t" +
                 std::to_string(threads));
  g_last_service_exposition = continuous.metrics().expose_prometheus();
}
BENCHMARK(BM_ContinuousBatchSweep)
    ->Arg(4)->Arg(8)->Arg(16)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Speculative decoding sweep: a small config from the same family drafts
// k tokens per round and the served model verifies them in one fused
// forward pass. Both models are trained on the same synthetic apt-task
// corpus (once, cached across benchmark args), so the draft's greedy
// continuations agree with the verifier's on most schema tokens and
// verify rounds commit multi-token runs. Prompts are COLD — a fresh
// unique task name every iteration, caches off — so wins come from the
// speculative execution itself: fused (k+1)-row verify passes stream the
// verifier's weights once per round instead of once per token, and
// chunked prefill batches the prompt instead of feeding it token by
// token. The speedup counter is the acceptance criterion, enforced by
// check_bench_regression.py: >= 1.3x tokens/s over the non-speculative
// baseline serving the identical workload.
void BM_SpeculativeSweep(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int threads = 4;
  wisdom::util::ThreadPool::set_global_threads(threads);
  static const text::BpeTokenizer* tokenizer = [] {
    return new text::BpeTokenizer(text::BpeTokenizer::train(
        "- name: Install nginx\n  ansible.builtin.apt:\n"
        "    name: nginx\n    state: present\n",
        300));
  }();
  // Verifier sized so its weights outgrow L2 (GEMV per decode step is
  // bandwidth-bound; the fused verify pass streams them once per round);
  // the draft is ~20x fewer FLOPs per token.
  struct TrainedPair {
    model::Transformer verifier;
    model::Transformer draft;
  };
  static const TrainedPair* pair = [] {
    model::ModelConfig cfg;
    cfg.vocab = static_cast<std::int32_t>(tokenizer->vocab_size());
    cfg.ctx = 96;
    cfg.d_model = 128;
    cfg.n_head = 4;
    cfg.n_layer = 4;
    cfg.d_ff = 512;
    model::ModelConfig draft_cfg = cfg;
    draft_cfg.d_model = 32;
    draft_cfg.n_head = 2;
    draft_cfg.n_layer = 1;
    draft_cfg.d_ff = 128;
    auto* p = new TrainedPair{model::Transformer(cfg, 11),
                              model::Transformer(draft_cfg, 13)};
    std::vector<std::string> texts;
    const char* pkgs[] = {"nginx", "redis", "git", "curl", "vim",
                          "htop", "jq", "wget"};
    for (int rep = 0; rep < 8; ++rep) {
      for (const char* pkg : pkgs) {
        texts.push_back(std::string("- name: Install ") + pkg +
                        "\n  ansible.builtin.apt:\n    name: " + pkg +
                        "\n    state: present\n");
      }
    }
    auto set = wisdom::data::pack_samples(*tokenizer, texts, 96);
    wisdom::core::TrainConfig tc;
    tc.epochs = 10;
    tc.micro_batch = 4;
    tc.grad_accum = 1;
    tc.lr = 3e-3f;
    wisdom::core::train_model(p->verifier, set, nullptr, tc);
    wisdom::core::train_model(p->draft, set, nullptr, tc);
    return p;
  }();

  serve::ServiceOptions spec_options;
  spec_options.max_new_tokens = 24;
  spec_options.continuous_batching = false;
  spec_options.speculative_k = k;
  spec_options.draft_model = &pair->draft;
  serve::InferenceService speculative(pair->verifier, *tokenizer,
                                      spec_options);
  serve::ServiceOptions baseline_options = spec_options;
  baseline_options.speculative_k = 0;
  baseline_options.draft_model = nullptr;
  serve::InferenceService baseline(pair->verifier, *tokenizer,
                                   baseline_options);

  // Cold prompts: a never-repeated task name per request per iteration
  // (so nothing is ever warm), over a shared two-stanza context that
  // gives prefill real weight — the cold-prompt axis of the criterion.
  const char* stanza =
      "- name: Install nginx\n  ansible.builtin.apt:\n"
      "    name: nginx\n    state: present\n";
  constexpr int kBatch = 8;
  std::uint64_t epoch = 0;
  auto make_batch = [&](std::uint64_t e) {
    std::vector<serve::SuggestionRequest> requests(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      auto& r = requests[static_cast<std::size_t>(i)];
      r.context = std::string(stanza) + stanza;
      r.prompt = "Install v" + std::to_string(e) + "r" + std::to_string(i);
    }
    return requests;
  };

  std::int64_t spec_tokens = 0;
  std::int64_t baseline_tokens = 0;
  double spec_seconds = 0.0;
  double baseline_seconds = 0.0;
  for (auto _ : state) {
    auto requests = make_batch(epoch++);
    auto t0 = std::chrono::steady_clock::now();
    auto responses = speculative.suggest_batch(requests);
    spec_seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    benchmark::DoNotOptimize(responses.data());
    for (const auto& response : responses)
      spec_tokens += response.generated_tokens;

    // Non-speculative baseline over the same requests, outside the timed
    // region so the reported ms stay the speculative path's.
    state.PauseTiming();
    t0 = std::chrono::steady_clock::now();
    auto plain = baseline.suggest_batch(requests);
    baseline_seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    benchmark::DoNotOptimize(plain.data());
    for (const auto& response : plain)
      baseline_tokens += response.generated_tokens;
    state.ResumeTiming();
  }

  const double spec_rate =
      spec_seconds > 0.0 ? static_cast<double>(spec_tokens) / spec_seconds
                         : 0.0;
  const double baseline_rate =
      baseline_seconds > 0.0
          ? static_cast<double>(baseline_tokens) / baseline_seconds
          : 0.0;
  const auto counter_value = [&](const char* name) {
    const auto* counter = speculative.metrics().find_counter(name);
    return counter != nullptr ? static_cast<double>(counter->value()) : 0.0;
  };
  const double proposed = counter_value("wisdom_spec_proposed_total");
  state.counters["tokens/s"] = spec_rate;
  state.counters["baseline_tok/s"] = baseline_rate;
  state.counters["speedup"] =
      baseline_rate > 0.0 ? spec_rate / baseline_rate : 0.0;
  state.counters["acceptance"] =
      proposed > 0.0 ? counter_value("wisdom_spec_accepted_total") / proposed
                     : 0.0;
  state.SetLabel("k" + std::to_string(k) + "/t" + std::to_string(threads));
  g_last_service_exposition = speculative.metrics().expose_prometheus();
}
BENCHMARK(BM_SpeculativeSweep)
    ->Arg(2)->Arg(4)->Arg(6)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: after the benchmarks, dump the global registry (pool +
// model decode families) and the last serving benchmark's per-service
// registry so the CI smoke job can grep the expected metric families.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n--- metrics exposition (global registry) ---\n%s",
              wisdom::obs::MetricsRegistry::global().expose_prometheus().c_str());
  if (!g_last_service_exposition.empty()) {
    std::printf("\n--- metrics exposition (last service registry) ---\n%s",
                g_last_service_exposition.c_str());
  }
  return 0;
}
