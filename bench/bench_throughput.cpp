// Reproduces the paper's deployment-latency argument: "we benchmarked the
// generation throughput on single GPU for both models and found that the
// 350M model was ~1.9x faster than the 2.7B" — the reason Wisdom ships the
// small model. Here: single-core greedy-decode throughput across the whole
// scaled size family, plus the training-step throughput that bounds the
// pre-training stage.
#include <benchmark/benchmark.h>

#include "model/config.hpp"
#include "model/transformer.hpp"
#include "util/rng.hpp"

namespace model = wisdom::model;

namespace {

constexpr std::int32_t kVocab = 512;
constexpr std::int32_t kCtx = 96;

model::SizeClass size_from_index(int index) {
  switch (index) {
    case 0: return model::SizeClass::S350M;
    case 1: return model::SizeClass::M2_7B;
    case 2: return model::SizeClass::L6B;
    default: return model::SizeClass::XL175B;
  }
}

void BM_GreedyDecode(benchmark::State& state) {
  model::SizeClass size = size_from_index(static_cast<int>(state.range(0)));
  model::ModelConfig cfg = model::config_for(size, kVocab, kCtx);
  model::Transformer m(cfg, 7);
  wisdom::util::Rng rng(1);

  std::int64_t tokens = 0;
  for (auto _ : state) {
    model::Transformer::KvCache cache = m.make_cache();
    for (int i = 0; i < kCtx; ++i) {
      auto logits = m.decode_step(
          cache, static_cast<std::int32_t>(rng.uniform(kVocab)));
      benchmark::DoNotOptimize(logits.data());
      ++tokens;
    }
  }
  state.counters["tokens/s"] =
      benchmark::Counter(static_cast<double>(tokens),
                         benchmark::Counter::kIsRate);
  state.counters["params"] = static_cast<double>(m.param_count());
  state.SetLabel(model::size_label(size));
}
BENCHMARK(BM_GreedyDecode)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_TrainingStep(benchmark::State& state) {
  model::SizeClass size = size_from_index(static_cast<int>(state.range(0)));
  model::ModelConfig cfg = model::config_for(size, kVocab, kCtx);
  model::Transformer m(cfg, 7);
  wisdom::util::Rng rng(2);
  const int batch = 4;
  std::vector<std::int32_t> x(static_cast<std::size_t>(batch) * kCtx);
  std::vector<std::int32_t> y(x.size());
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform(kVocab));
  for (auto& v : y) v = static_cast<std::int32_t>(rng.uniform(kVocab));

  wisdom::nn::AdamW opt;
  std::int64_t tokens = 0;
  for (auto _ : state) {
    m.zero_grad();
    float loss = m.forward_backward(x, y, batch, kCtx);
    benchmark::DoNotOptimize(loss);
    m.optim_step(opt, 1e-4f, 1.0f);
    tokens += batch * kCtx;
  }
  state.counters["tokens/s"] =
      benchmark::Counter(static_cast<double>(tokens),
                         benchmark::Counter::kIsRate);
  state.SetLabel(model::size_label(size));
}
BENCHMARK(BM_TrainingStep)->DenseRange(0, 1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
