// Reproduces Table II: model names and their associated pre-training
// datasets, plus the scaled-down architecture each paper size maps to in
// this reproduction.
#include <cstdio>

#include "bench_common.hpp"
#include "model/config.hpp"

namespace core = wisdom::core;
namespace model = wisdom::model;
namespace util = wisdom::util;

int main(int, char**) {
  std::printf("=== Table II: models and their pre-training datasets ===\n\n");

  struct Row {
    core::PretrainMix mix;
    bool pile, bigquery, bigpython, ansible_yaml, generic_yaml;
  };
  const Row rows[] = {
      {core::PretrainMix::CodeGenNL, true, false, false, false, false},
      {core::PretrainMix::CodeGenMulti, true, true, false, false, false},
      {core::PretrainMix::CodeGenMono, true, true, true, false, false},
      {core::PretrainMix::WisdomAnsible, false, false, false, true, false},
      {core::PretrainMix::WisdomYaml, false, false, false, true, true},
      {core::PretrainMix::WisdomAnsibleMulti, true, true, false, true, false},
      {core::PretrainMix::WisdomYamlMulti, true, true, false, true, true},
  };

  util::Table table({"Model", "The Pile", "BigQuery", "BigPython",
                     "Ansible YAML", "Generic YAML"});
  auto mark = [](bool b) { return std::string(b ? "x" : ""); };
  for (const Row& r : rows) {
    table.add_row({core::mix_label(r.mix), mark(r.pile), mark(r.bigquery),
                   mark(r.bigpython), mark(r.ansible_yaml),
                   mark(r.generic_yaml)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("=== Scaled-down architecture family ===\n\n");
  util::Table sizes({"Paper size", "d_model", "heads", "layers", "d_ff",
                     "params (sim)"});
  for (auto size : {model::SizeClass::S350M, model::SizeClass::M2_7B,
                    model::SizeClass::L6B, model::SizeClass::XL175B}) {
    model::ModelConfig cfg = model::config_for(size, 512, 96);
    sizes.add_row({model::size_label(size), std::to_string(cfg.d_model),
                   std::to_string(cfg.n_head), std::to_string(cfg.n_layer),
                   std::to_string(cfg.d_ff),
                   std::to_string(cfg.param_count())});
  }
  std::printf("%s", sizes.to_string().c_str());
  std::printf(
      "\nContext windows: paper 512 / 1024 / 2048 tokens map to simulated "
      "48 / 96 / 192.\n");
  return 0;
}
