// Robustness suite for the deadline-aware serving path: cancellation,
// admission control, graceful degradation, retry/backoff, checkpoint
// corruption, and wire-format hardening. Every degraded path is driven
// deterministically (check-count deadlines, fault injection, injected
// sleep functions) — no wall-clock sleeps, no timing assumptions.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "metrics/schema_correct.hpp"
#include "model/checkpoint.hpp"
#include "model/transformer.hpp"
#include "serve/breaker.hpp"
#include "serve/fallback.hpp"
#include "serve/fault.hpp"
#include "serve/queue.hpp"
#include "serve/retry.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "text/bpe.hpp"
#include "util/deadline.hpp"

namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;
namespace wu = wisdom::util;

namespace {

// Untrained micro-model: robustness behavior (deadlines, shedding,
// fallback, retries) must not depend on what the model decodes, so an
// untrained network is the honest fixture — and construction is instant.
struct Fixture {
  wt::BpeTokenizer tokenizer;
  wm::Transformer model;

  Fixture() : tokenizer(make_tokenizer()), model(config(), /*seed=*/7) {}

  static wt::BpeTokenizer make_tokenizer() {
    return wt::BpeTokenizer::train(
        "- name: Install nginx\n"
        "  ansible.builtin.apt:\n"
        "    name: nginx\n"
        "    state: present\n",
        300);
  }
  wm::ModelConfig config() const {
    wm::ModelConfig cfg;
    cfg.vocab = static_cast<int>(tokenizer.vocab_size());
    cfg.ctx = 64;
    cfg.d_model = 16;
    cfg.n_head = 2;
    cfg.n_layer = 1;
    cfg.d_ff = 32;
    return cfg;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

ws::SuggestionRequest install_request() {
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  request.indent = 0;
  return request;
}

}  // namespace

// ---------------------------------------------------------------------------
// util::Deadline + cancellation

TEST(Deadline, DefaultNeverExpires) {
  wu::Deadline d;
  EXPECT_FALSE(d.has_limit());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), std::numeric_limits<double>::infinity());
}

TEST(Deadline, CheckBudgetIsExact) {
  wu::Deadline d = wu::Deadline::after_checks(3);
  EXPECT_TRUE(d.has_limit());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.expired());
  EXPECT_TRUE(d.expired());  // stays expired
  EXPECT_EQ(d.remaining_ms(), 0.0);
}

TEST(Deadline, NonPositiveCheckBudgetAlreadyExpired) {
  EXPECT_TRUE(wu::Deadline::after_checks(0).expired());
  EXPECT_TRUE(wu::Deadline::after_checks(-5).expired());
}

TEST(Deadline, CopiesShareOneCheckBudget) {
  wu::Deadline a = wu::Deadline::after_checks(4);
  wu::Deadline b = a;  // one request's allowance, wherever the checks happen
  EXPECT_FALSE(a.expired());
  EXPECT_FALSE(b.expired());
  EXPECT_FALSE(a.expired());
  EXPECT_FALSE(b.expired());
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
}

TEST(Deadline, NonPositiveTimeBudgetAlreadyExpired) {
  EXPECT_TRUE(wu::Deadline::after_ms(0.0).expired());
  EXPECT_TRUE(wu::Deadline::after_ms(-10.0).expired());
}

TEST(Deadline, DistantTimeDeadlineNotExpired) {
  wu::Deadline d = wu::Deadline::after_ms(1e9);
  EXPECT_TRUE(d.has_limit());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
}

TEST(Deadline, CancellationOverridesAnyLimit) {
  wu::CancelSource source;
  wu::Deadline d;  // no limit at all
  d.set_token(source.token());
  EXPECT_TRUE(d.has_limit());
  EXPECT_FALSE(d.expired());
  source.cancel();
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0.0);

  // Cancellation also trips a deadline with plenty of budget left.
  wu::Deadline checks = wu::Deadline::after_checks(1000);
  checks.set_token(source.token());
  EXPECT_TRUE(checks.expired());
}

TEST(Deadline, DefaultTokenIsInert) {
  wu::CancelToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
}

// ---------------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueue, UnboundedAlwaysAdmits) {
  ws::AdmissionQueue queue(0);
  EXPECT_FALSE(queue.bounded());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(queue.try_acquire());
  EXPECT_EQ(queue.shed_count(), 0u);
}

TEST(AdmissionQueue, CapacityIsEnforced) {
  ws::AdmissionQueue queue(2);
  EXPECT_TRUE(queue.try_acquire());
  EXPECT_TRUE(queue.try_acquire());
  EXPECT_FALSE(queue.try_acquire());  // full: shed
  EXPECT_EQ(queue.in_flight(), 2);
  EXPECT_EQ(queue.shed_count(), 1u);
  queue.release();
  EXPECT_TRUE(queue.try_acquire());  // slot freed
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, GenerateFailureCreditsAreConsumed) {
  ws::FaultInjector faults;
  EXPECT_FALSE(faults.take_generate_failure());  // default injects nothing
  faults.set_fail_generate(2);
  EXPECT_TRUE(faults.take_generate_failure());
  EXPECT_TRUE(faults.take_generate_failure());
  EXPECT_FALSE(faults.take_generate_failure());  // credits spent
  faults.set_fail_generate(-1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(faults.take_generate_failure());
  faults.reset();
  EXPECT_FALSE(faults.take_generate_failure());
  EXPECT_FALSE(faults.slow_decode_active());
  EXPECT_FALSE(faults.queue_full_forced());
}

TEST(FaultInjector, SlowDecodeDeadlineHasRequestedBudget) {
  ws::FaultInjector faults;
  faults.set_slow_decode_after_tokens(2);
  ASSERT_TRUE(faults.slow_decode_active());
  wu::Deadline d = faults.slow_decode_deadline();
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.expired());
}

// ---------------------------------------------------------------------------
// Transformer decode under a deadline

TEST(TransformerDeadline, ExpiredBeforePrefillReturnsEmpty) {
  auto& f = fixture();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 8;
  gen.deadline = wu::Deadline::after_checks(0);
  wm::Transformer::GenerateStatus status;
  gen.status = &status;
  auto out = f.model.generate(ids, gen);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(status.deadline_expired);
  EXPECT_EQ(status.steps_taken, 0);
}

TEST(TransformerDeadline, PartialDecodeStopsAtBudget) {
  auto& f = fixture();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  const std::int64_t budget = static_cast<std::int64_t>(ids.size()) + 3;
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 32;
  gen.deadline = wu::Deadline::after_checks(budget);
  wm::Transformer::GenerateStatus status;
  gen.status = &status;
  auto out = f.model.generate(ids, gen);
  EXPECT_TRUE(status.deadline_expired);
  // Prefill consumed ids.size() checks; at most 3 tokens decoded after.
  EXPECT_LE(static_cast<std::int64_t>(out.size()), 3);
  EXPECT_LE(status.steps_taken, budget);
}

TEST(TransformerDeadline, NoDeadlineDecodesInFull) {
  auto& f = fixture();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 8;
  wm::Transformer::GenerateStatus status;
  gen.status = &status;
  f.model.generate(ids, gen);
  EXPECT_FALSE(status.deadline_expired);
  EXPECT_GE(status.steps_taken, static_cast<int>(ids.size()));
}

TEST(TransformerDeadline, BeamSearchHonorsDeadline) {
  auto& f = fixture();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::BeamOptions beam;
  beam.beam_width = 2;
  beam.max_new_tokens = 16;
  beam.deadline = wu::Deadline::after_checks(0);
  wm::Transformer::GenerateStatus status;
  beam.status = &status;
  auto out = f.model.generate_beam(ids, beam);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(status.deadline_expired);
}

// ---------------------------------------------------------------------------
// FallbackSuggester

TEST(Fallback, PackagePromptYieldsCatalogBackedPackageTask) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Install nginx", 0);
  EXPECT_NE(body.find("ansible.builtin.package:"), std::string::npos);
  EXPECT_NE(body.find("name: nginx"), std::string::npos);
  EXPECT_NE(body.find("state: present"), std::string::npos);
}

TEST(Fallback, RemovalFlipsPackageState) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Remove the redis package", 0);
  EXPECT_NE(body.find("state: absent"), std::string::npos);
  EXPECT_NE(body.find("name: redis"), std::string::npos);
}

TEST(Fallback, ServicePromptPicksServiceTemplate) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Restart the nginx service", 0);
  EXPECT_NE(body.find("ansible.builtin.service:"), std::string::npos);
  EXPECT_NE(body.find("state: restarted"), std::string::npos);
}

TEST(Fallback, UnmatchedPromptFallsBackToDebug) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Frobnicate the widget", 0);
  EXPECT_NE(body.find("ansible.builtin.debug:"), std::string::npos);
  EXPECT_NE(body.find("msg: \"Frobnicate the widget\""), std::string::npos);
}

TEST(Fallback, EveryTemplateIsSchemaCorrect) {
  ws::FallbackSuggester fb;
  const char* prompts[] = {
      "Install nginx",
      "Stop the redis service",
      "Copy the haproxy config",
      "Create the log directory",
      "Do something entirely unrecognized: \"quotes\" and \\slashes\\",
  };
  for (const char* prompt : prompts) {
    std::string snippet =
        std::string("- name: ") + prompt + "\n" + fb.suggest_body(prompt, 0);
    EXPECT_TRUE(wisdom::metrics::schema_correct(snippet)) << snippet;
  }
}

TEST(Fallback, RespectsIndentation) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Install nginx", 4);
  EXPECT_EQ(body.rfind("      ansible.builtin.package:", 0), 0u);
  EXPECT_NE(body.find("        name: nginx"), std::string::npos);
}

// ---------------------------------------------------------------------------
// InferenceService: deadline expiry, fault injection, degradation

TEST(ServiceRobustness, SlowDecodeFallsBackWithinBudget) {
  // ISSUE acceptance: under a fault-injected slow decode the service must
  // return a degraded, schema-correct fallback — deterministically.
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_slow_decode_after_tokens(0);  // decode "too slow" immediately
  ws::ServiceOptions options;
  options.faults = &faults;
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.schema_correct) << response.snippet;
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
  EXPECT_NE(response.snippet.find("- name: Install nginx"),
            std::string::npos);
  EXPECT_NE(response.snippet.find("ansible.builtin.package"),
            std::string::npos);

  const auto& stats = service.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(ServiceRobustness, SlowDecodeMidGenerationStillDegrades) {
  auto& f = fixture();
  ws::FaultInjector faults;
  // Enough budget to finish prefill and decode a few tokens, then expire.
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  faults.set_slow_decode_after_tokens(static_cast<std::int64_t>(ids.size()) +
                                      2);
  ws::ServiceOptions options;
  options.faults = &faults;
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  // Partial salvage or fallback — either way: a usable degraded response.
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.schema_correct) << response.snippet;
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
}

TEST(ServiceRobustness, GenerateFailureFallsBack) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_fail_generate(1);
  ws::ServiceOptions options;
  options.faults = &faults;
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.error, ws::ServiceError::GenerateFailed);
  EXPECT_TRUE(response.schema_correct) << response.snippet;

  // Credit spent: the next request decodes normally.
  auto next = service.suggest(install_request());
  EXPECT_NE(next.error, ws::ServiceError::GenerateFailed);
}

TEST(ServiceRobustness, FallbackCanBeDisabled) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_fail_generate(-1);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.fallback_enabled = false;
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(response.error, ws::ServiceError::GenerateFailed);
  EXPECT_TRUE(response.snippet.empty());
}

TEST(ServiceRobustness, CancelledRequestDegradesImmediately) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, ws::ServiceOptions{});
  wu::CancelSource source;
  source.cancel();  // the user kept typing before we even started
  ws::SuggestionRequest request = install_request();
  request.cancel = source.token();

  auto response = service.suggest(request);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
  EXPECT_TRUE(response.ok);  // fallback still answers
}

TEST(ServiceRobustness, PerRequestDeadlineOverridesDefault) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, ws::ServiceOptions{});
  ws::SuggestionRequest request = install_request();
  request.deadline_ms = 1e-7;  // expired by the first cooperative check

  auto response = service.suggest(request);
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(service.stats().deadline_expired, 1u);
}

TEST(ServiceRobustness, InvalidRequestIsTyped) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, ws::ServiceOptions{});
  ws::SuggestionRequest request;  // empty prompt
  auto response = service.suggest(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ws::ServiceError::InvalidRequest);
}

// ---------------------------------------------------------------------------
// InferenceService: admission control and load shedding

TEST(ServiceRobustness, ForcedQueueFullShedsWithOverloaded) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 8;  // plenty — the fault forces the shed
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ws::ServiceError::Overloaded);
  const auto& stats = service.stats();
  EXPECT_EQ(stats.offered, 1u);
  EXPECT_EQ(stats.shed, 1u);
  // Reject-newest sheds never enter the pipeline: no latency sample.
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_TRUE(stats.latencies_ms.empty());

  faults.set_force_queue_full(false);
  EXPECT_EQ(service.suggest(install_request()).error,
            ws::ServiceError::None);
}

TEST(ServiceRobustness, BatchOverloadShedsDeterministically) {
  // ISSUE acceptance: a batch of 4x queue capacity on an idle service must
  // shed exactly offered - capacity requests with ServiceError::Overloaded,
  // and admission is decided in arrival order.
  auto& f = fixture();
  constexpr int kCapacity = 2;
  constexpr int kOffered = 4 * kCapacity;
  ws::ServiceOptions options;
  options.queue_capacity = kCapacity;
  options.max_new_tokens = 4;  // keep the admitted decodes quick
  ws::InferenceService service(f.model, f.tokenizer, options);

  std::vector<ws::SuggestionRequest> requests(kOffered, install_request());
  auto responses = service.suggest_batch(requests);
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kOffered));

  int shed = 0;
  for (int i = 0; i < kOffered; ++i) {
    if (i < kCapacity) {
      EXPECT_NE(responses[i].error, ws::ServiceError::Overloaded)
          << "arrival " << i << " should have been admitted";
    } else {
      EXPECT_EQ(responses[i].error, ws::ServiceError::Overloaded)
          << "arrival " << i << " should have been shed";
      EXPECT_FALSE(responses[i].ok);
      ++shed;
    }
  }
  EXPECT_EQ(shed, kOffered - kCapacity);

  const auto& stats = service.stats();
  EXPECT_EQ(stats.offered, static_cast<std::uint64_t>(kOffered));
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(kOffered - kCapacity));
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kCapacity));
  EXPECT_DOUBLE_EQ(stats.shed_rate(), 0.75);
}

TEST(ServiceRobustness, DegradeNewestServesShedRequestsFromFallback) {
  auto& f = fixture();
  ws::ServiceOptions options;
  options.queue_capacity = 1;
  options.shed_policy = ws::ShedPolicy::DegradeNewest;
  options.max_new_tokens = 4;
  ws::InferenceService service(f.model, f.tokenizer, options);

  std::vector<ws::SuggestionRequest> requests(3, install_request());
  auto responses = service.suggest_batch(requests);
  ASSERT_EQ(responses.size(), 3u);
  for (int i = 1; i < 3; ++i) {
    EXPECT_TRUE(responses[i].ok) << "degraded-shed still answers";
    EXPECT_TRUE(responses[i].degraded);
    EXPECT_TRUE(responses[i].schema_correct) << responses[i].snippet;
    EXPECT_EQ(responses[i].error, ws::ServiceError::Overloaded);
  }

  const auto& stats = service.stats();
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.shed, 2u);
  // Degraded sheds are served requests: they carry latency samples.
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.degraded, 2u);
}

TEST(ServiceRobustness, SequentialSuggestNeverShedsWithinCapacity) {
  auto& f = fixture();
  ws::ServiceOptions options;
  options.queue_capacity = 1;  // sequential calls hold one slot at a time
  options.max_new_tokens = 4;
  ws::InferenceService service(f.model, f.tokenizer, options);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(service.suggest(install_request()).error,
              ws::ServiceError::Overloaded);
  }
  EXPECT_EQ(service.stats().shed, 0u);
}

// ---------------------------------------------------------------------------
// Retry with exponential backoff

TEST(Backoff, ScheduleIsDeterministicPerSeed) {
  ws::RetryPolicy policy;
  policy.base_delay_ms = 10.0;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 100.0;
  policy.jitter = 0.5;
  policy.seed = 42;

  ws::Backoff a(policy);
  ws::Backoff b(policy);
  for (int i = 0; i < 8; ++i) {
    double da = a.next_delay_ms();
    double db = b.next_delay_ms();
    EXPECT_DOUBLE_EQ(da, db) << "retry " << i;
    // Equal jitter keeps the delay within [backoff/2, backoff], capped.
    double backoff = std::min(10.0 * std::pow(2.0, i), 100.0);
    EXPECT_GE(da, backoff * 0.5 - 1e-9);
    EXPECT_LE(da, backoff + 1e-9);
  }
}

TEST(Backoff, ZeroJitterIsExactExponential) {
  ws::RetryPolicy policy;
  policy.base_delay_ms = 5.0;
  policy.multiplier = 3.0;
  policy.max_delay_ms = 50.0;
  policy.jitter = 0.0;
  ws::Backoff backoff(policy);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 5.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 15.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 45.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 50.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 50.0);
}

TEST(Retry, ExhaustsAttemptsAgainstPersistentOverload) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 1;
  ws::InferenceService service(f.model, f.tokenizer, options);

  ws::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  policy.base_delay_ms = 10.0;
  std::vector<double> slept;
  ws::RetryingClient client(service, policy,
                            [&](double ms) { slept.push_back(ms); });

  auto outcome = client.suggest_with_trace(install_request());
  EXPECT_EQ(outcome.attempts, 4);
  EXPECT_EQ(outcome.response.error, ws::ServiceError::Overloaded);
  ASSERT_EQ(outcome.delays_ms.size(), 3u);  // one per retry taken
  EXPECT_EQ(slept, outcome.delays_ms);      // the injected clock saw them all
  EXPECT_DOUBLE_EQ(outcome.delays_ms[0], 10.0);
  EXPECT_DOUBLE_EQ(outcome.delays_ms[1], 20.0);
  EXPECT_DOUBLE_EQ(outcome.delays_ms[2], 40.0);
}

TEST(Retry, RecoversWhenOverloadClears) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  // Once admitted, decode under an instantly-expired deadline so the second
  // attempt resolves deterministically via the fallback.
  faults.set_slow_decode_after_tokens(0);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 1;
  ws::InferenceService service(f.model, f.tokenizer, options);

  ws::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.jitter = 0.0;
  ws::RetryingClient client(service, policy, [&](double) {
    faults.set_force_queue_full(false);  // the hot spot cools off mid-backoff
  });

  auto outcome = client.suggest_with_trace(install_request());
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_TRUE(outcome.response.ok);
  EXPECT_TRUE(outcome.response.degraded);
  EXPECT_EQ(outcome.response.error, ws::ServiceError::DeadlineExceeded);
}

TEST(Retry, TerminalErrorsAreNotRetried) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_fail_generate(-1);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.fallback_enabled = false;
  ws::InferenceService service(f.model, f.tokenizer, options);

  int sleeps = 0;
  ws::RetryingClient client(service, ws::RetryPolicy{},
                            [&](double) { ++sleeps; });
  auto outcome = client.suggest_with_trace(install_request());
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(sleeps, 0);
  EXPECT_EQ(outcome.response.error, ws::ServiceError::GenerateFailed);
}

TEST(Retry, DegradedShedIsAcceptedNotRetried) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 1;
  options.shed_policy = ws::ShedPolicy::DegradeNewest;
  ws::InferenceService service(f.model, f.tokenizer, options);

  int sleeps = 0;
  ws::RetryingClient client(service, ws::RetryPolicy{},
                            [&](double) { ++sleeps; });
  auto outcome = client.suggest_with_trace(install_request());
  // The shed response already carries a usable fallback snippet; retrying
  // would only add load to a hot service.
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(sleeps, 0);
  EXPECT_TRUE(outcome.response.ok);
  EXPECT_TRUE(outcome.response.degraded);
}

TEST(Retry, TotalDelayBudgetStopsRetrying) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 1;
  ws::InferenceService service(f.model, f.tokenizer, options);

  // Deterministic schedule 10, 20, 40, ...; a 25 ms budget affords exactly
  // the first retry (10) — the second (10 + 20 = 30 > 25) is refused
  // before sleeping.
  ws::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.jitter = 0.0;
  policy.base_delay_ms = 10.0;
  policy.total_budget_ms = 25.0;
  std::vector<double> slept;
  ws::RetryingClient client(service, policy,
                            [&](double ms) { slept.push_back(ms); });

  auto outcome = client.suggest_with_trace(install_request());
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_TRUE(outcome.budget_exhausted);
  ASSERT_EQ(outcome.delays_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(outcome.delays_ms[0], 10.0);
  EXPECT_EQ(slept, outcome.delays_ms);
  EXPECT_EQ(outcome.response.error, ws::ServiceError::Overloaded);
  const auto* budget_counter = service.metrics().find_counter(
      "wisdom_serve_retry_budget_exhausted_total");
  ASSERT_NE(budget_counter, nullptr);
  EXPECT_EQ(budget_counter->value(), 1u);
}

TEST(Retry, ZeroBudgetMeansUnlimited) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 1;
  ws::InferenceService service(f.model, f.tokenizer, options);

  ws::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  policy.total_budget_ms = 0.0;  // the default: no budget cutoff
  ws::RetryingClient client(service, policy, [](double) {});
  auto outcome = client.suggest_with_trace(install_request());
  EXPECT_EQ(outcome.attempts, 4);
  EXPECT_FALSE(outcome.budget_exhausted);
}

TEST(Retry, DrainingRefusalIsTerminalNotRetried) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  service.begin_drain();

  int sleeps = 0;
  ws::RetryingClient client(service, ws::RetryPolicy{},
                            [&](double) { ++sleeps; });
  auto outcome = client.suggest_with_trace(install_request());
  // Draining is not transient: the service is going away, so the client
  // must fail over instead of queueing retries against it.
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(sleeps, 0);
  EXPECT_EQ(outcome.response.error, ws::ServiceError::Draining);
  EXPECT_FALSE(outcome.response.ok);
}

// ---------------------------------------------------------------------------
// FaultInjector: overload-resilience knobs

TEST(FaultInjector, ArenaExhaustionStepThreshold) {
  ws::FaultInjector faults;
  EXPECT_FALSE(faults.arena_exhausted_at(0));  // default injects nothing
  faults.set_arena_exhaust_at_step(3);
  EXPECT_FALSE(faults.arena_exhausted_at(0));
  EXPECT_FALSE(faults.arena_exhausted_at(2));
  EXPECT_TRUE(faults.arena_exhausted_at(3));   // boundary: step N included
  EXPECT_TRUE(faults.arena_exhausted_at(100));
  faults.reset();
  EXPECT_FALSE(faults.arena_exhausted_at(100));
}

TEST(FaultInjector, AllocStallAndPoisonShareCreditSemantics) {
  ws::FaultInjector faults;
  // Positive credits are consumed one per take.
  faults.set_fail_alloc(2);
  EXPECT_TRUE(faults.take_alloc_failure());
  EXPECT_TRUE(faults.take_alloc_failure());
  EXPECT_FALSE(faults.take_alloc_failure());
  // Negative is infinite — nothing is consumed.
  faults.set_stall_steps(-1);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(faults.take_stall_step());
  faults.set_poison_breaker(1);
  EXPECT_TRUE(faults.take_breaker_poison());
  EXPECT_FALSE(faults.take_breaker_poison());
  // reset() restores every knob's inactive default.
  faults.set_fail_alloc(-1);
  faults.reset();
  EXPECT_FALSE(faults.take_alloc_failure());
  EXPECT_FALSE(faults.take_stall_step());
  EXPECT_FALSE(faults.take_breaker_poison());
}

// ---------------------------------------------------------------------------
// CircuitBreaker: state transitions at exact window boundaries

namespace {

ws::BreakerOptions tight_breaker() {
  ws::BreakerOptions options;
  options.window = 4;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  options.cooldown = 2;
  options.probes = 2;
  return options;
}

}  // namespace

TEST(CircuitBreaker, OpensExactlyAtMinSamplesAndThreshold) {
  ws::CircuitBreaker breaker(tight_breaker());
  // Three outcomes with two failures: failure rate already >= 0.5, but
  // min_samples = 4 has not been met — still closed.
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::Allow);
  breaker.record(true);
  breaker.record(false);
  breaker.record(true);
  EXPECT_EQ(breaker.state(), ws::BreakerState::Closed);
  // The 4th outcome reaches min_samples with 2/4 failures — exactly at
  // the 0.5 threshold, which trips (>=, not >).
  breaker.record(false);
  EXPECT_EQ(breaker.state(), ws::BreakerState::Open);
  EXPECT_EQ(breaker.stats().opened, 1u);
  // The window cleared on open: no stale history feeds the next cycle.
  EXPECT_EQ(breaker.stats().window_outcomes, 0);
  EXPECT_EQ(breaker.stats().window_failures, 0);
}

TEST(CircuitBreaker, BelowThresholdStaysClosedAsWindowRolls) {
  ws::CircuitBreaker breaker(tight_breaker());
  // 1 failure per 4 outcomes = 0.25 < 0.5, sustained across several full
  // window rotations: never opens, and old outcomes age out of the counts.
  for (int round = 0; round < 5; ++round) {
    breaker.record(true);
    breaker.record(false);
    breaker.record(false);
    breaker.record(false);
    EXPECT_EQ(breaker.state(), ws::BreakerState::Closed) << round;
  }
  EXPECT_EQ(breaker.stats().window_outcomes, 4);
  EXPECT_EQ(breaker.stats().window_failures, 1);
}

TEST(CircuitBreaker, CooldownCountsExactArrivalsThenHalfOpens) {
  ws::CircuitBreaker breaker(tight_breaker());
  for (int i = 0; i < 4; ++i) breaker.record(true);
  ASSERT_EQ(breaker.state(), ws::BreakerState::Open);
  // cooldown = 2: exactly two arrivals short-circuit...
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::ShortCircuit);
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::ShortCircuit);
  EXPECT_EQ(breaker.stats().short_circuited, 2u);
  // ...and the next one becomes the first probe of half-open.
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::Probe);
  EXPECT_EQ(breaker.state(), ws::BreakerState::HalfOpen);
  EXPECT_EQ(breaker.stats().probes_admitted, 1u);
}

TEST(CircuitBreaker, HalfOpenProbeAccounting) {
  ws::CircuitBreaker breaker(tight_breaker());
  for (int i = 0; i < 4; ++i) breaker.record(true);
  for (int i = 0; i < 2; ++i) breaker.admit();  // burn the cooldown
  // probes = 2 admitted; excess arrivals short-circuit while they are out.
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::Probe);
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::Probe);
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::ShortCircuit);
  // One success is not enough; the second closes.
  breaker.record(false);
  EXPECT_EQ(breaker.state(), ws::BreakerState::HalfOpen);
  breaker.record(false);
  EXPECT_EQ(breaker.state(), ws::BreakerState::Closed);
  EXPECT_EQ(breaker.stats().closed_from_half_open, 1u);
  // Closed with a clean window: the next arrival is a normal Allow.
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::Allow);
}

TEST(CircuitBreaker, ProbeFailureReopensImmediately) {
  ws::CircuitBreaker breaker(tight_breaker());
  for (int i = 0; i < 4; ++i) breaker.record(true);
  for (int i = 0; i < 2; ++i) breaker.admit();
  ASSERT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::Probe);
  breaker.record(false);  // one success banked...
  breaker.record(true);   // ...but any probe failure reopens
  EXPECT_EQ(breaker.state(), ws::BreakerState::Open);
  EXPECT_EQ(breaker.stats().opened, 2u);
  // The cooldown restarts in full.
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::ShortCircuit);
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::ShortCircuit);
  EXPECT_EQ(breaker.admit(), ws::CircuitBreaker::Admission::Probe);
}

TEST(CircuitBreaker, StateNamesAreStable) {
  EXPECT_STREQ(ws::breaker_state_name(ws::BreakerState::Closed), "closed");
  EXPECT_STREQ(ws::breaker_state_name(ws::BreakerState::Open), "open");
  EXPECT_STREQ(ws::breaker_state_name(ws::BreakerState::HalfOpen),
               "half-open");
}

// ---------------------------------------------------------------------------
// Service-level circuit breaking

TEST(ServiceBreaker, OpensOnFailuresAndShortCircuitsToFallback) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_fail_generate(-1);  // every admitted request fails
  ws::ServiceOptions options;
  options.faults = &faults;
  options.breaker_enabled = true;
  options.breaker = tight_breaker();
  ws::InferenceService service(f.model, f.tokenizer, options);

  // Four failures fill the window and trip the breaker.
  for (int i = 0; i < 4; ++i) {
    auto response = service.suggest(install_request());
    EXPECT_EQ(response.error, ws::ServiceError::GenerateFailed);
    EXPECT_TRUE(response.degraded);  // fallback still answered
  }
  EXPECT_EQ(service.breaker_stats().state, ws::BreakerState::Open);

  // While open (cooldown = 2): short-circuited responses carry the typed
  // error, the fallback snippet, and never touch the model or the queue.
  for (int i = 0; i < 2; ++i) {
    auto response = service.suggest(install_request());
    EXPECT_EQ(response.error, ws::ServiceError::CircuitOpen);
    EXPECT_TRUE(response.ok);
    EXPECT_TRUE(response.degraded);
    EXPECT_TRUE(wisdom::metrics::schema_correct(response.snippet));
  }
  EXPECT_EQ(service.stats_snapshot().short_circuited, 2u);

  // Backend recovers; the two probes succeed and the breaker closes.
  faults.reset();
  for (int i = 0; i < 2; ++i) {
    auto response = service.suggest(install_request());
    EXPECT_EQ(response.error, ws::ServiceError::None);
  }
  EXPECT_EQ(service.breaker_stats().state, ws::BreakerState::Closed);
  EXPECT_EQ(service.breaker_stats().closed_from_half_open, 1u);
}

TEST(ServiceBreaker, PoisonedWindowOpensDespiteHealthyBackend) {
  auto& f = fixture();
  ws::FaultInjector faults;
  ws::ServiceOptions options;
  options.faults = &faults;
  options.breaker_enabled = true;
  options.breaker = tight_breaker();
  ws::InferenceService service(f.model, f.tokenizer, options);

  faults.set_poison_breaker(4);
  for (int i = 0; i < 4; ++i) {
    auto response = service.suggest(install_request());
    // The responses themselves are healthy; only the breaker's view of
    // them is poisoned.
    EXPECT_EQ(response.error, ws::ServiceError::None);
  }
  EXPECT_EQ(service.breaker_stats().state, ws::BreakerState::Open);
  EXPECT_EQ(service.suggest(install_request()).error,
            ws::ServiceError::CircuitOpen);
}

TEST(ServiceBreaker, ShortCircuitsAreNotRecordedAsOutcomes) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_fail_generate(-1);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.breaker_enabled = true;
  options.breaker = tight_breaker();
  ws::InferenceService service(f.model, f.tokenizer, options);

  for (int i = 0; i < 4; ++i) service.suggest(install_request());
  const auto opened = service.breaker_stats();
  ASSERT_EQ(opened.state, ws::BreakerState::Open);
  const std::uint64_t failures_at_open = 4;
  // Two short-circuited arrivals must not feed the window: refusing
  // traffic is not evidence the backend got worse.
  service.suggest(install_request());
  service.suggest(install_request());
  const auto* failures = service.metrics().find_counter(
      "wisdom_breaker_failures_recorded_total");
  ASSERT_NE(failures, nullptr);
  EXPECT_EQ(failures->value(), failures_at_open);
}

TEST(ServiceBreaker, BatchAdmissionGatesPerRequest) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_fail_generate(-1);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.breaker_enabled = true;
  options.breaker = tight_breaker();
  ws::InferenceService service(f.model, f.tokenizer, options);

  // A batch models a concurrent burst: every arrival is gated before any
  // response exists, so all six serve (and fail) under the still-closed
  // breaker, and their outcomes land in the window afterwards — the 4th
  // trips it, the last two are Open-state stragglers the cleared window
  // ignores.
  std::vector<ws::SuggestionRequest> requests(6, install_request());
  const auto responses = service.suggest_batch(requests);
  ASSERT_EQ(responses.size(), 6u);
  for (std::size_t i = 0; i < responses.size(); ++i)
    EXPECT_EQ(responses[i].error, ws::ServiceError::GenerateFailed) << i;
  EXPECT_EQ(service.breaker_stats().state, ws::BreakerState::Open);

  // The next batch arrives against the open breaker: cooldown = 2 means
  // both arrivals short-circuit, per-request, inside one batch.
  std::vector<ws::SuggestionRequest> next(2, install_request());
  const auto refused = service.suggest_batch(next);
  for (std::size_t i = 0; i < refused.size(); ++i) {
    EXPECT_EQ(refused[i].error, ws::ServiceError::CircuitOpen) << i;
    EXPECT_TRUE(refused[i].degraded) << i;
  }
  EXPECT_EQ(service.stats_snapshot().short_circuited, 2u);
}

// ---------------------------------------------------------------------------
// Graceful drain

TEST(Drain, LifecycleRefusesNewWorkAfterBeginDrain) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  EXPECT_EQ(service.state(), ws::InferenceService::State::Accepting);
  auto served = service.suggest(install_request());
  EXPECT_NE(served.error, ws::ServiceError::Draining);

  service.begin_drain();
  EXPECT_EQ(service.state(), ws::InferenceService::State::Draining);
  auto refused = service.suggest(install_request());
  EXPECT_FALSE(refused.ok);
  EXPECT_FALSE(refused.degraded);  // a typed refusal, not a fallback
  EXPECT_TRUE(refused.snippet.empty());
  EXPECT_EQ(refused.error, ws::ServiceError::Draining);
  EXPECT_FALSE(ws::is_transient(refused.error));

  std::vector<ws::SuggestionRequest> requests(3, install_request());
  for (const auto& response : service.suggest_batch(requests))
    EXPECT_EQ(response.error, ws::ServiceError::Draining);
  EXPECT_EQ(service.stats_snapshot().drain_rejected, 4u);
}

TEST(Drain, DrainReturnsFinalMetricsFlushAndStops) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  service.suggest(install_request());
  const std::string exposition = service.drain();
  EXPECT_EQ(service.state(), ws::InferenceService::State::Stopped);
  // The flush is the complete exposition: served counters and the drain
  // families themselves are present, with the terminal lifecycle state.
  EXPECT_NE(exposition.find("wisdom_serve_requests_total 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("wisdom_drain_completed_total 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("wisdom_drain_state 2"), std::string::npos);
  // Idempotent: a second drain is an immediate no-op flush.
  EXPECT_EQ(service.drain(), exposition);
  // A stopped service refuses exactly like a draining one.
  EXPECT_EQ(service.suggest(install_request()).error,
            ws::ServiceError::Draining);
}

TEST(Drain, RacesConcurrentBatchCallersToCompletion) {
  auto& f = fixture();
  ws::ServiceOptions options;
  options.max_new_tokens = 8;
  ws::InferenceService service(f.model, f.tokenizer, options);

  // Callers hammer suggest/suggest_batch while the main thread drains.
  // Every response must be terminal: either fully served (the call
  // entered before the drain) or a typed Draining refusal — never a torn
  // half-response. TSan runs this test in CI.
  std::atomic<int> served{0};
  std::atomic<int> refused{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      for (int i = 0; i < 3; ++i) {
        if (t % 2 == 0) {
          auto response = service.suggest(install_request());
          if (response.error == ws::ServiceError::Draining) {
            EXPECT_FALSE(response.ok);
            ++refused;
          } else {
            ++served;
          }
        } else {
          std::vector<ws::SuggestionRequest> batch(2, install_request());
          for (const auto& response : service.suggest_batch(batch)) {
            if (response.error == ws::ServiceError::Draining) {
              EXPECT_FALSE(response.ok);
              ++refused;
            } else {
              EXPECT_TRUE(response.ok || !response.snippet.empty() ||
                          response.error != ws::ServiceError::None);
              ++served;
            }
          }
        }
      }
    });
  }
  const std::string exposition = service.drain();
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(service.state(), ws::InferenceService::State::Stopped);
  EXPECT_EQ(served.load() + refused.load(), 2 * 3 + 2 * 3 * 2);
  // drain() waited for in-flight calls: whatever was being served when the
  // flush happened has fully completed by join time, and late arrivals
  // were refused with the typed error.
  EXPECT_NE(exposition.find("wisdom_drain_state"), std::string::npos);
  EXPECT_EQ(service.suggest(install_request()).error,
            ws::ServiceError::Draining);
}

// ---------------------------------------------------------------------------
// Checkpoint corruption

namespace {

std::string saved_checkpoint() {
  auto& f = fixture();
  return wm::save_checkpoint(f.model, f.tokenizer.serialize());
}

}  // namespace

TEST(CheckpointRobustness, RoundTripCarriesTokenizer) {
  auto& f = fixture();
  std::string blob = saved_checkpoint();
  wm::LoadResult result = wm::load_checkpoint_ex(blob);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_EQ(result.status, wm::LoadStatus::Ok);
  EXPECT_TRUE(result.message.empty());
  EXPECT_EQ(result.tokenizer, f.tokenizer.serialize());
  EXPECT_EQ(result.model->config().d_model, f.model.config().d_model);
}

TEST(CheckpointRobustness, TruncationAtEveryRegionIsTyped) {
  std::string blob = saved_checkpoint();
  // Cut inside the magic, the header, just past the header, mid-payload,
  // and one byte short of complete.
  const std::size_t cuts[] = {0, 2, 10, 16, 20, blob.size() / 2,
                              blob.size() - 1};
  for (std::size_t cut : cuts) {
    wm::LoadResult result = wm::load_checkpoint_ex(blob.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_NE(result.status, wm::LoadStatus::Ok);
    EXPECT_FALSE(result.message.empty()) << "cut at " << cut;
  }
  // Truncations that keep the header intact are checksum mismatches.
  EXPECT_EQ(wm::load_checkpoint_ex(blob.substr(0, blob.size() - 1)).status,
            wm::LoadStatus::ChecksumMismatch);
  EXPECT_EQ(wm::load_checkpoint_ex(blob.substr(0, blob.size() / 2)).status,
            wm::LoadStatus::ChecksumMismatch);
  // Truncations inside the header cannot even be identified.
  EXPECT_EQ(wm::load_checkpoint_ex(blob.substr(0, 2)).status,
            wm::LoadStatus::BadMagic);
}

TEST(CheckpointRobustness, SingleByteFlipsAreDetected) {
  const std::string blob = saved_checkpoint();
  // Magic, version, checksum, config, tokenizer/tensor payload, last byte.
  const std::size_t offsets[] = {0,  5,  12, 18,
                                 blob.size() / 3, blob.size() - 1};
  for (std::size_t offset : offsets) {
    std::string corrupt = blob;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    wm::LoadResult result = wm::load_checkpoint_ex(corrupt);
    EXPECT_FALSE(result.ok()) << "flip at " << offset;
    EXPECT_FALSE(result.message.empty()) << "flip at " << offset;
  }
  // Specific regions produce specific statuses.
  auto flip = [&](std::size_t offset) {
    std::string corrupt = blob;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    return wm::load_checkpoint_ex(corrupt).status;
  };
  EXPECT_EQ(flip(0), wm::LoadStatus::BadMagic);
  EXPECT_EQ(flip(5), wm::LoadStatus::UnsupportedVersion);
  EXPECT_EQ(flip(12), wm::LoadStatus::ChecksumMismatch);   // stored checksum
  EXPECT_EQ(flip(blob.size() - 1), wm::LoadStatus::ChecksumMismatch);
}

TEST(CheckpointRobustness, AppendedGarbageIsDetected) {
  std::string blob = saved_checkpoint() + "extra";
  EXPECT_EQ(wm::load_checkpoint_ex(blob).status,
            wm::LoadStatus::ChecksumMismatch);
}

TEST(CheckpointRobustness, PreVersionedFilesGetRegenerateMessage) {
  // A v1 header: right magic, old version number where v2 expects 2.
  std::string blob = saved_checkpoint();
  blob[4] = 1;  // little-endian version 1
  wm::LoadResult result = wm::load_checkpoint_ex(blob);
  EXPECT_EQ(result.status, wm::LoadStatus::UnsupportedVersion);
  EXPECT_NE(result.message.find("version 1 is not supported"),
            std::string::npos)
      << result.message;
  EXPECT_NE(result.message.find("regenerated"), std::string::npos)
      << result.message;
}

TEST(CheckpointRobustness, GarbageBlobIsBadMagic) {
  EXPECT_EQ(wm::load_checkpoint_ex("not a checkpoint at all, sorry").status,
            wm::LoadStatus::BadMagic);
  EXPECT_EQ(wm::load_checkpoint_ex("").status, wm::LoadStatus::BadMagic);
}

TEST(CheckpointRobustness, MissingFileIsTyped) {
  wm::LoadResult result =
      wm::load_checkpoint_file_ex("/nonexistent/dir/model.ckpt");
  EXPECT_EQ(result.status, wm::LoadStatus::FileNotFound);
  EXPECT_NE(result.message.find("/nonexistent/dir/model.ckpt"),
            std::string::npos);
}

TEST(CheckpointRobustness, LegacyWrapperCollapsesToNullopt) {
  std::string blob = saved_checkpoint();
  std::string tokenizer_blob;
  EXPECT_TRUE(wm::load_checkpoint(blob, &tokenizer_blob).has_value());
  EXPECT_FALSE(tokenizer_blob.empty());
  EXPECT_FALSE(
      wm::load_checkpoint(blob.substr(0, blob.size() / 2), nullptr)
          .has_value());
}

TEST(CheckpointRobustness, StatusNamesAreStable) {
  EXPECT_STREQ(wm::load_status_name(wm::LoadStatus::Ok), "ok");
  EXPECT_STREQ(wm::load_status_name(wm::LoadStatus::ChecksumMismatch),
               "checksum-mismatch");
  EXPECT_STREQ(wm::load_status_name(wm::LoadStatus::UnsupportedVersion),
               "unsupported-version");
}

// ---------------------------------------------------------------------------
// Wire-format hardening

TEST(WireRobustness, OversizedPayloadRefusedBeforeParsing) {
  std::string big = "{\"prompt\": \"";
  big += std::string(ws::kMaxWireBytes, 'a');
  big += "\"}";
  EXPECT_FALSE(ws::request_from_json(big).has_value());
  EXPECT_FALSE(ws::response_from_json(big).has_value());
}

TEST(WireRobustness, NonFiniteNumbersRejected) {
  // 1e999 overflows double to infinity; NaN spellings do not parse at all.
  EXPECT_FALSE(
      ws::request_from_json(R"({"prompt": "x", "indent": 1e999})"));
  EXPECT_FALSE(
      ws::request_from_json(R"({"prompt": "x", "deadline_ms": 1e999})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "latency_ms": 1e999})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "latency_ms": nan})"));
}

TEST(WireRobustness, IndentMustBeSmallWholeNonNegative) {
  EXPECT_TRUE(ws::request_from_json(R"({"prompt": "x", "indent": 8})"));
  EXPECT_FALSE(ws::request_from_json(R"({"prompt": "x", "indent": -1})"));
  EXPECT_FALSE(ws::request_from_json(R"({"prompt": "x", "indent": 2.5})"));
  EXPECT_FALSE(
      ws::request_from_json(R"({"prompt": "x", "indent": 1000000})"));
}

TEST(WireRobustness, NegativeDeadlineRejected) {
  EXPECT_FALSE(
      ws::request_from_json(R"({"prompt": "x", "deadline_ms": -5.0})"));
}

TEST(WireRobustness, TruncatedEscapesFailCleanly) {
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"a\\u12"));
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"a\\"));
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"a\\u123"));
  EXPECT_TRUE(ws::request_from_json("{\"prompt\": \"a\\u0041\"}"));
}

TEST(WireRobustness, ResponseCountsAndErrorsValidated) {
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "generated_tokens": -3})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "generated_tokens": 2.5})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "latency_ms": -1.0})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "error": "made-up-error"})"));
  auto ok = ws::response_from_json(
      R"({"ok": true, "snippet": "s", "error": "overloaded"})");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->error, ws::ServiceError::Overloaded);
}

TEST(WireRobustness, RequestRoundTripKeepsDeadline) {
  ws::SuggestionRequest request;
  request.context = "- hosts: web\n";
  request.prompt = "Install nginx";
  request.indent = 4;
  request.deadline_ms = 75.5;
  auto parsed = ws::request_from_json(ws::to_json(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->prompt, request.prompt);
  EXPECT_EQ(parsed->context, request.context);
  EXPECT_EQ(parsed->indent, request.indent);
  EXPECT_DOUBLE_EQ(parsed->deadline_ms, request.deadline_ms);
}

TEST(WireRobustness, ResponseRoundTripKeepsDegradedAndError) {
  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "- name: x\n  ansible.builtin.debug:\n    msg: \"x\"\n";
  response.schema_correct = true;
  response.latency_ms = 1.25;
  response.generated_tokens = 0;
  response.degraded = true;
  response.error = ws::ServiceError::DeadlineExceeded;
  auto parsed = ws::response_from_json(ws::to_json(response));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->degraded);
  EXPECT_EQ(parsed->error, ws::ServiceError::DeadlineExceeded);
  EXPECT_EQ(parsed->snippet, response.snippet);
}

TEST(WireRobustness, ErrorNamesRoundTrip) {
  for (ws::ServiceError e :
       {ws::ServiceError::None, ws::ServiceError::InvalidRequest,
        ws::ServiceError::Overloaded, ws::ServiceError::DeadlineExceeded,
        ws::ServiceError::GenerateFailed, ws::ServiceError::LintRejected,
        ws::ServiceError::CircuitOpen, ws::ServiceError::Draining}) {
    ws::ServiceError parsed;
    ASSERT_TRUE(
        ws::service_error_from_name(ws::service_error_name(e), &parsed));
    EXPECT_EQ(parsed, e);
    EXPECT_EQ(ws::is_transient(e), e == ws::ServiceError::Overloaded ||
                                       e == ws::ServiceError::CircuitOpen);
  }
  ws::ServiceError unused;
  EXPECT_FALSE(ws::service_error_from_name("bogus", &unused));
}
