// Robustness suite for the deadline-aware serving path: cancellation,
// admission control, graceful degradation, retry/backoff, checkpoint
// corruption, and wire-format hardening. Every degraded path is driven
// deterministically (check-count deadlines, fault injection, injected
// sleep functions) — no wall-clock sleeps, no timing assumptions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "metrics/schema_correct.hpp"
#include "model/checkpoint.hpp"
#include "model/transformer.hpp"
#include "serve/fallback.hpp"
#include "serve/fault.hpp"
#include "serve/queue.hpp"
#include "serve/retry.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "text/bpe.hpp"
#include "util/deadline.hpp"

namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;
namespace wu = wisdom::util;

namespace {

// Untrained micro-model: robustness behavior (deadlines, shedding,
// fallback, retries) must not depend on what the model decodes, so an
// untrained network is the honest fixture — and construction is instant.
struct Fixture {
  wt::BpeTokenizer tokenizer;
  wm::Transformer model;

  Fixture() : tokenizer(make_tokenizer()), model(config(), /*seed=*/7) {}

  static wt::BpeTokenizer make_tokenizer() {
    return wt::BpeTokenizer::train(
        "- name: Install nginx\n"
        "  ansible.builtin.apt:\n"
        "    name: nginx\n"
        "    state: present\n",
        300);
  }
  wm::ModelConfig config() const {
    wm::ModelConfig cfg;
    cfg.vocab = static_cast<int>(tokenizer.vocab_size());
    cfg.ctx = 64;
    cfg.d_model = 16;
    cfg.n_head = 2;
    cfg.n_layer = 1;
    cfg.d_ff = 32;
    return cfg;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

ws::SuggestionRequest install_request() {
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  request.indent = 0;
  return request;
}

}  // namespace

// ---------------------------------------------------------------------------
// util::Deadline + cancellation

TEST(Deadline, DefaultNeverExpires) {
  wu::Deadline d;
  EXPECT_FALSE(d.has_limit());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), std::numeric_limits<double>::infinity());
}

TEST(Deadline, CheckBudgetIsExact) {
  wu::Deadline d = wu::Deadline::after_checks(3);
  EXPECT_TRUE(d.has_limit());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.expired());
  EXPECT_TRUE(d.expired());  // stays expired
  EXPECT_EQ(d.remaining_ms(), 0.0);
}

TEST(Deadline, NonPositiveCheckBudgetAlreadyExpired) {
  EXPECT_TRUE(wu::Deadline::after_checks(0).expired());
  EXPECT_TRUE(wu::Deadline::after_checks(-5).expired());
}

TEST(Deadline, CopiesShareOneCheckBudget) {
  wu::Deadline a = wu::Deadline::after_checks(4);
  wu::Deadline b = a;  // one request's allowance, wherever the checks happen
  EXPECT_FALSE(a.expired());
  EXPECT_FALSE(b.expired());
  EXPECT_FALSE(a.expired());
  EXPECT_FALSE(b.expired());
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
}

TEST(Deadline, NonPositiveTimeBudgetAlreadyExpired) {
  EXPECT_TRUE(wu::Deadline::after_ms(0.0).expired());
  EXPECT_TRUE(wu::Deadline::after_ms(-10.0).expired());
}

TEST(Deadline, DistantTimeDeadlineNotExpired) {
  wu::Deadline d = wu::Deadline::after_ms(1e9);
  EXPECT_TRUE(d.has_limit());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
}

TEST(Deadline, CancellationOverridesAnyLimit) {
  wu::CancelSource source;
  wu::Deadline d;  // no limit at all
  d.set_token(source.token());
  EXPECT_TRUE(d.has_limit());
  EXPECT_FALSE(d.expired());
  source.cancel();
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0.0);

  // Cancellation also trips a deadline with plenty of budget left.
  wu::Deadline checks = wu::Deadline::after_checks(1000);
  checks.set_token(source.token());
  EXPECT_TRUE(checks.expired());
}

TEST(Deadline, DefaultTokenIsInert) {
  wu::CancelToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
}

// ---------------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueue, UnboundedAlwaysAdmits) {
  ws::AdmissionQueue queue(0);
  EXPECT_FALSE(queue.bounded());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(queue.try_acquire());
  EXPECT_EQ(queue.shed_count(), 0u);
}

TEST(AdmissionQueue, CapacityIsEnforced) {
  ws::AdmissionQueue queue(2);
  EXPECT_TRUE(queue.try_acquire());
  EXPECT_TRUE(queue.try_acquire());
  EXPECT_FALSE(queue.try_acquire());  // full: shed
  EXPECT_EQ(queue.in_flight(), 2);
  EXPECT_EQ(queue.shed_count(), 1u);
  queue.release();
  EXPECT_TRUE(queue.try_acquire());  // slot freed
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, GenerateFailureCreditsAreConsumed) {
  ws::FaultInjector faults;
  EXPECT_FALSE(faults.take_generate_failure());  // default injects nothing
  faults.set_fail_generate(2);
  EXPECT_TRUE(faults.take_generate_failure());
  EXPECT_TRUE(faults.take_generate_failure());
  EXPECT_FALSE(faults.take_generate_failure());  // credits spent
  faults.set_fail_generate(-1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(faults.take_generate_failure());
  faults.reset();
  EXPECT_FALSE(faults.take_generate_failure());
  EXPECT_FALSE(faults.slow_decode_active());
  EXPECT_FALSE(faults.queue_full_forced());
}

TEST(FaultInjector, SlowDecodeDeadlineHasRequestedBudget) {
  ws::FaultInjector faults;
  faults.set_slow_decode_after_tokens(2);
  ASSERT_TRUE(faults.slow_decode_active());
  wu::Deadline d = faults.slow_decode_deadline();
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.expired());
}

// ---------------------------------------------------------------------------
// Transformer decode under a deadline

TEST(TransformerDeadline, ExpiredBeforePrefillReturnsEmpty) {
  auto& f = fixture();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 8;
  gen.deadline = wu::Deadline::after_checks(0);
  wm::Transformer::GenerateStatus status;
  gen.status = &status;
  auto out = f.model.generate(ids, gen);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(status.deadline_expired);
  EXPECT_EQ(status.steps_taken, 0);
}

TEST(TransformerDeadline, PartialDecodeStopsAtBudget) {
  auto& f = fixture();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  const std::int64_t budget = static_cast<std::int64_t>(ids.size()) + 3;
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 32;
  gen.deadline = wu::Deadline::after_checks(budget);
  wm::Transformer::GenerateStatus status;
  gen.status = &status;
  auto out = f.model.generate(ids, gen);
  EXPECT_TRUE(status.deadline_expired);
  // Prefill consumed ids.size() checks; at most 3 tokens decoded after.
  EXPECT_LE(static_cast<std::int64_t>(out.size()), 3);
  EXPECT_LE(status.steps_taken, budget);
}

TEST(TransformerDeadline, NoDeadlineDecodesInFull) {
  auto& f = fixture();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 8;
  wm::Transformer::GenerateStatus status;
  gen.status = &status;
  f.model.generate(ids, gen);
  EXPECT_FALSE(status.deadline_expired);
  EXPECT_GE(status.steps_taken, static_cast<int>(ids.size()));
}

TEST(TransformerDeadline, BeamSearchHonorsDeadline) {
  auto& f = fixture();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::BeamOptions beam;
  beam.beam_width = 2;
  beam.max_new_tokens = 16;
  beam.deadline = wu::Deadline::after_checks(0);
  wm::Transformer::GenerateStatus status;
  beam.status = &status;
  auto out = f.model.generate_beam(ids, beam);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(status.deadline_expired);
}

// ---------------------------------------------------------------------------
// FallbackSuggester

TEST(Fallback, PackagePromptYieldsCatalogBackedPackageTask) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Install nginx", 0);
  EXPECT_NE(body.find("ansible.builtin.package:"), std::string::npos);
  EXPECT_NE(body.find("name: nginx"), std::string::npos);
  EXPECT_NE(body.find("state: present"), std::string::npos);
}

TEST(Fallback, RemovalFlipsPackageState) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Remove the redis package", 0);
  EXPECT_NE(body.find("state: absent"), std::string::npos);
  EXPECT_NE(body.find("name: redis"), std::string::npos);
}

TEST(Fallback, ServicePromptPicksServiceTemplate) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Restart the nginx service", 0);
  EXPECT_NE(body.find("ansible.builtin.service:"), std::string::npos);
  EXPECT_NE(body.find("state: restarted"), std::string::npos);
}

TEST(Fallback, UnmatchedPromptFallsBackToDebug) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Frobnicate the widget", 0);
  EXPECT_NE(body.find("ansible.builtin.debug:"), std::string::npos);
  EXPECT_NE(body.find("msg: \"Frobnicate the widget\""), std::string::npos);
}

TEST(Fallback, EveryTemplateIsSchemaCorrect) {
  ws::FallbackSuggester fb;
  const char* prompts[] = {
      "Install nginx",
      "Stop the redis service",
      "Copy the haproxy config",
      "Create the log directory",
      "Do something entirely unrecognized: \"quotes\" and \\slashes\\",
  };
  for (const char* prompt : prompts) {
    std::string snippet =
        std::string("- name: ") + prompt + "\n" + fb.suggest_body(prompt, 0);
    EXPECT_TRUE(wisdom::metrics::schema_correct(snippet)) << snippet;
  }
}

TEST(Fallback, RespectsIndentation) {
  ws::FallbackSuggester fb;
  std::string body = fb.suggest_body("Install nginx", 4);
  EXPECT_EQ(body.rfind("      ansible.builtin.package:", 0), 0u);
  EXPECT_NE(body.find("        name: nginx"), std::string::npos);
}

// ---------------------------------------------------------------------------
// InferenceService: deadline expiry, fault injection, degradation

TEST(ServiceRobustness, SlowDecodeFallsBackWithinBudget) {
  // ISSUE acceptance: under a fault-injected slow decode the service must
  // return a degraded, schema-correct fallback — deterministically.
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_slow_decode_after_tokens(0);  // decode "too slow" immediately
  ws::ServiceOptions options;
  options.faults = &faults;
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.schema_correct) << response.snippet;
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
  EXPECT_NE(response.snippet.find("- name: Install nginx"),
            std::string::npos);
  EXPECT_NE(response.snippet.find("ansible.builtin.package"),
            std::string::npos);

  const auto& stats = service.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(ServiceRobustness, SlowDecodeMidGenerationStillDegrades) {
  auto& f = fixture();
  ws::FaultInjector faults;
  // Enough budget to finish prefill and decode a few tokens, then expire.
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  faults.set_slow_decode_after_tokens(static_cast<std::int64_t>(ids.size()) +
                                      2);
  ws::ServiceOptions options;
  options.faults = &faults;
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  // Partial salvage or fallback — either way: a usable degraded response.
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.schema_correct) << response.snippet;
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
}

TEST(ServiceRobustness, GenerateFailureFallsBack) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_fail_generate(1);
  ws::ServiceOptions options;
  options.faults = &faults;
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.error, ws::ServiceError::GenerateFailed);
  EXPECT_TRUE(response.schema_correct) << response.snippet;

  // Credit spent: the next request decodes normally.
  auto next = service.suggest(install_request());
  EXPECT_NE(next.error, ws::ServiceError::GenerateFailed);
}

TEST(ServiceRobustness, FallbackCanBeDisabled) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_fail_generate(-1);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.fallback_enabled = false;
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(response.error, ws::ServiceError::GenerateFailed);
  EXPECT_TRUE(response.snippet.empty());
}

TEST(ServiceRobustness, CancelledRequestDegradesImmediately) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, ws::ServiceOptions{});
  wu::CancelSource source;
  source.cancel();  // the user kept typing before we even started
  ws::SuggestionRequest request = install_request();
  request.cancel = source.token();

  auto response = service.suggest(request);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
  EXPECT_TRUE(response.ok);  // fallback still answers
}

TEST(ServiceRobustness, PerRequestDeadlineOverridesDefault) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, ws::ServiceOptions{});
  ws::SuggestionRequest request = install_request();
  request.deadline_ms = 1e-7;  // expired by the first cooperative check

  auto response = service.suggest(request);
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(service.stats().deadline_expired, 1u);
}

TEST(ServiceRobustness, InvalidRequestIsTyped) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, ws::ServiceOptions{});
  ws::SuggestionRequest request;  // empty prompt
  auto response = service.suggest(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ws::ServiceError::InvalidRequest);
}

// ---------------------------------------------------------------------------
// InferenceService: admission control and load shedding

TEST(ServiceRobustness, ForcedQueueFullShedsWithOverloaded) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 8;  // plenty — the fault forces the shed
  ws::InferenceService service(f.model, f.tokenizer, options);

  auto response = service.suggest(install_request());
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error, ws::ServiceError::Overloaded);
  const auto& stats = service.stats();
  EXPECT_EQ(stats.offered, 1u);
  EXPECT_EQ(stats.shed, 1u);
  // Reject-newest sheds never enter the pipeline: no latency sample.
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_TRUE(stats.latencies_ms.empty());

  faults.set_force_queue_full(false);
  EXPECT_EQ(service.suggest(install_request()).error,
            ws::ServiceError::None);
}

TEST(ServiceRobustness, BatchOverloadShedsDeterministically) {
  // ISSUE acceptance: a batch of 4x queue capacity on an idle service must
  // shed exactly offered - capacity requests with ServiceError::Overloaded,
  // and admission is decided in arrival order.
  auto& f = fixture();
  constexpr int kCapacity = 2;
  constexpr int kOffered = 4 * kCapacity;
  ws::ServiceOptions options;
  options.queue_capacity = kCapacity;
  options.max_new_tokens = 4;  // keep the admitted decodes quick
  ws::InferenceService service(f.model, f.tokenizer, options);

  std::vector<ws::SuggestionRequest> requests(kOffered, install_request());
  auto responses = service.suggest_batch(requests);
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kOffered));

  int shed = 0;
  for (int i = 0; i < kOffered; ++i) {
    if (i < kCapacity) {
      EXPECT_NE(responses[i].error, ws::ServiceError::Overloaded)
          << "arrival " << i << " should have been admitted";
    } else {
      EXPECT_EQ(responses[i].error, ws::ServiceError::Overloaded)
          << "arrival " << i << " should have been shed";
      EXPECT_FALSE(responses[i].ok);
      ++shed;
    }
  }
  EXPECT_EQ(shed, kOffered - kCapacity);

  const auto& stats = service.stats();
  EXPECT_EQ(stats.offered, static_cast<std::uint64_t>(kOffered));
  EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(kOffered - kCapacity));
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kCapacity));
  EXPECT_DOUBLE_EQ(stats.shed_rate(), 0.75);
}

TEST(ServiceRobustness, DegradeNewestServesShedRequestsFromFallback) {
  auto& f = fixture();
  ws::ServiceOptions options;
  options.queue_capacity = 1;
  options.shed_policy = ws::ShedPolicy::DegradeNewest;
  options.max_new_tokens = 4;
  ws::InferenceService service(f.model, f.tokenizer, options);

  std::vector<ws::SuggestionRequest> requests(3, install_request());
  auto responses = service.suggest_batch(requests);
  ASSERT_EQ(responses.size(), 3u);
  for (int i = 1; i < 3; ++i) {
    EXPECT_TRUE(responses[i].ok) << "degraded-shed still answers";
    EXPECT_TRUE(responses[i].degraded);
    EXPECT_TRUE(responses[i].schema_correct) << responses[i].snippet;
    EXPECT_EQ(responses[i].error, ws::ServiceError::Overloaded);
  }

  const auto& stats = service.stats();
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.shed, 2u);
  // Degraded sheds are served requests: they carry latency samples.
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_GE(stats.degraded, 2u);
}

TEST(ServiceRobustness, SequentialSuggestNeverShedsWithinCapacity) {
  auto& f = fixture();
  ws::ServiceOptions options;
  options.queue_capacity = 1;  // sequential calls hold one slot at a time
  options.max_new_tokens = 4;
  ws::InferenceService service(f.model, f.tokenizer, options);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(service.suggest(install_request()).error,
              ws::ServiceError::Overloaded);
  }
  EXPECT_EQ(service.stats().shed, 0u);
}

// ---------------------------------------------------------------------------
// Retry with exponential backoff

TEST(Backoff, ScheduleIsDeterministicPerSeed) {
  ws::RetryPolicy policy;
  policy.base_delay_ms = 10.0;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 100.0;
  policy.jitter = 0.5;
  policy.seed = 42;

  ws::Backoff a(policy);
  ws::Backoff b(policy);
  for (int i = 0; i < 8; ++i) {
    double da = a.next_delay_ms();
    double db = b.next_delay_ms();
    EXPECT_DOUBLE_EQ(da, db) << "retry " << i;
    // Equal jitter keeps the delay within [backoff/2, backoff], capped.
    double backoff = std::min(10.0 * std::pow(2.0, i), 100.0);
    EXPECT_GE(da, backoff * 0.5 - 1e-9);
    EXPECT_LE(da, backoff + 1e-9);
  }
}

TEST(Backoff, ZeroJitterIsExactExponential) {
  ws::RetryPolicy policy;
  policy.base_delay_ms = 5.0;
  policy.multiplier = 3.0;
  policy.max_delay_ms = 50.0;
  policy.jitter = 0.0;
  ws::Backoff backoff(policy);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 5.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 15.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 45.0);
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 50.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.next_delay_ms(), 50.0);
}

TEST(Retry, ExhaustsAttemptsAgainstPersistentOverload) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 1;
  ws::InferenceService service(f.model, f.tokenizer, options);

  ws::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  policy.base_delay_ms = 10.0;
  std::vector<double> slept;
  ws::RetryingClient client(service, policy,
                            [&](double ms) { slept.push_back(ms); });

  auto outcome = client.suggest_with_trace(install_request());
  EXPECT_EQ(outcome.attempts, 4);
  EXPECT_EQ(outcome.response.error, ws::ServiceError::Overloaded);
  ASSERT_EQ(outcome.delays_ms.size(), 3u);  // one per retry taken
  EXPECT_EQ(slept, outcome.delays_ms);      // the injected clock saw them all
  EXPECT_DOUBLE_EQ(outcome.delays_ms[0], 10.0);
  EXPECT_DOUBLE_EQ(outcome.delays_ms[1], 20.0);
  EXPECT_DOUBLE_EQ(outcome.delays_ms[2], 40.0);
}

TEST(Retry, RecoversWhenOverloadClears) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  // Once admitted, decode under an instantly-expired deadline so the second
  // attempt resolves deterministically via the fallback.
  faults.set_slow_decode_after_tokens(0);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 1;
  ws::InferenceService service(f.model, f.tokenizer, options);

  ws::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.jitter = 0.0;
  ws::RetryingClient client(service, policy, [&](double) {
    faults.set_force_queue_full(false);  // the hot spot cools off mid-backoff
  });

  auto outcome = client.suggest_with_trace(install_request());
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_TRUE(outcome.response.ok);
  EXPECT_TRUE(outcome.response.degraded);
  EXPECT_EQ(outcome.response.error, ws::ServiceError::DeadlineExceeded);
}

TEST(Retry, TerminalErrorsAreNotRetried) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_fail_generate(-1);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.fallback_enabled = false;
  ws::InferenceService service(f.model, f.tokenizer, options);

  int sleeps = 0;
  ws::RetryingClient client(service, ws::RetryPolicy{},
                            [&](double) { ++sleeps; });
  auto outcome = client.suggest_with_trace(install_request());
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(sleeps, 0);
  EXPECT_EQ(outcome.response.error, ws::ServiceError::GenerateFailed);
}

TEST(Retry, DegradedShedIsAcceptedNotRetried) {
  auto& f = fixture();
  ws::FaultInjector faults;
  faults.set_force_queue_full(true);
  ws::ServiceOptions options;
  options.faults = &faults;
  options.queue_capacity = 1;
  options.shed_policy = ws::ShedPolicy::DegradeNewest;
  ws::InferenceService service(f.model, f.tokenizer, options);

  int sleeps = 0;
  ws::RetryingClient client(service, ws::RetryPolicy{},
                            [&](double) { ++sleeps; });
  auto outcome = client.suggest_with_trace(install_request());
  // The shed response already carries a usable fallback snippet; retrying
  // would only add load to a hot service.
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(sleeps, 0);
  EXPECT_TRUE(outcome.response.ok);
  EXPECT_TRUE(outcome.response.degraded);
}

// ---------------------------------------------------------------------------
// Checkpoint corruption

namespace {

std::string saved_checkpoint() {
  auto& f = fixture();
  return wm::save_checkpoint(f.model, f.tokenizer.serialize());
}

}  // namespace

TEST(CheckpointRobustness, RoundTripCarriesTokenizer) {
  auto& f = fixture();
  std::string blob = saved_checkpoint();
  wm::LoadResult result = wm::load_checkpoint_ex(blob);
  ASSERT_TRUE(result.ok()) << result.message;
  EXPECT_EQ(result.status, wm::LoadStatus::Ok);
  EXPECT_TRUE(result.message.empty());
  EXPECT_EQ(result.tokenizer, f.tokenizer.serialize());
  EXPECT_EQ(result.model->config().d_model, f.model.config().d_model);
}

TEST(CheckpointRobustness, TruncationAtEveryRegionIsTyped) {
  std::string blob = saved_checkpoint();
  // Cut inside the magic, the header, just past the header, mid-payload,
  // and one byte short of complete.
  const std::size_t cuts[] = {0, 2, 10, 16, 20, blob.size() / 2,
                              blob.size() - 1};
  for (std::size_t cut : cuts) {
    wm::LoadResult result = wm::load_checkpoint_ex(blob.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_NE(result.status, wm::LoadStatus::Ok);
    EXPECT_FALSE(result.message.empty()) << "cut at " << cut;
  }
  // Truncations that keep the header intact are checksum mismatches.
  EXPECT_EQ(wm::load_checkpoint_ex(blob.substr(0, blob.size() - 1)).status,
            wm::LoadStatus::ChecksumMismatch);
  EXPECT_EQ(wm::load_checkpoint_ex(blob.substr(0, blob.size() / 2)).status,
            wm::LoadStatus::ChecksumMismatch);
  // Truncations inside the header cannot even be identified.
  EXPECT_EQ(wm::load_checkpoint_ex(blob.substr(0, 2)).status,
            wm::LoadStatus::BadMagic);
}

TEST(CheckpointRobustness, SingleByteFlipsAreDetected) {
  const std::string blob = saved_checkpoint();
  // Magic, version, checksum, config, tokenizer/tensor payload, last byte.
  const std::size_t offsets[] = {0,  5,  12, 18,
                                 blob.size() / 3, blob.size() - 1};
  for (std::size_t offset : offsets) {
    std::string corrupt = blob;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    wm::LoadResult result = wm::load_checkpoint_ex(corrupt);
    EXPECT_FALSE(result.ok()) << "flip at " << offset;
    EXPECT_FALSE(result.message.empty()) << "flip at " << offset;
  }
  // Specific regions produce specific statuses.
  auto flip = [&](std::size_t offset) {
    std::string corrupt = blob;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    return wm::load_checkpoint_ex(corrupt).status;
  };
  EXPECT_EQ(flip(0), wm::LoadStatus::BadMagic);
  EXPECT_EQ(flip(5), wm::LoadStatus::UnsupportedVersion);
  EXPECT_EQ(flip(12), wm::LoadStatus::ChecksumMismatch);   // stored checksum
  EXPECT_EQ(flip(blob.size() - 1), wm::LoadStatus::ChecksumMismatch);
}

TEST(CheckpointRobustness, AppendedGarbageIsDetected) {
  std::string blob = saved_checkpoint() + "extra";
  EXPECT_EQ(wm::load_checkpoint_ex(blob).status,
            wm::LoadStatus::ChecksumMismatch);
}

TEST(CheckpointRobustness, PreVersionedFilesGetRegenerateMessage) {
  // A v1 header: right magic, old version number where v2 expects 2.
  std::string blob = saved_checkpoint();
  blob[4] = 1;  // little-endian version 1
  wm::LoadResult result = wm::load_checkpoint_ex(blob);
  EXPECT_EQ(result.status, wm::LoadStatus::UnsupportedVersion);
  EXPECT_NE(result.message.find("version 1 is not supported"),
            std::string::npos)
      << result.message;
  EXPECT_NE(result.message.find("regenerated"), std::string::npos)
      << result.message;
}

TEST(CheckpointRobustness, GarbageBlobIsBadMagic) {
  EXPECT_EQ(wm::load_checkpoint_ex("not a checkpoint at all, sorry").status,
            wm::LoadStatus::BadMagic);
  EXPECT_EQ(wm::load_checkpoint_ex("").status, wm::LoadStatus::BadMagic);
}

TEST(CheckpointRobustness, MissingFileIsTyped) {
  wm::LoadResult result =
      wm::load_checkpoint_file_ex("/nonexistent/dir/model.ckpt");
  EXPECT_EQ(result.status, wm::LoadStatus::FileNotFound);
  EXPECT_NE(result.message.find("/nonexistent/dir/model.ckpt"),
            std::string::npos);
}

TEST(CheckpointRobustness, LegacyWrapperCollapsesToNullopt) {
  std::string blob = saved_checkpoint();
  std::string tokenizer_blob;
  EXPECT_TRUE(wm::load_checkpoint(blob, &tokenizer_blob).has_value());
  EXPECT_FALSE(tokenizer_blob.empty());
  EXPECT_FALSE(
      wm::load_checkpoint(blob.substr(0, blob.size() / 2), nullptr)
          .has_value());
}

TEST(CheckpointRobustness, StatusNamesAreStable) {
  EXPECT_STREQ(wm::load_status_name(wm::LoadStatus::Ok), "ok");
  EXPECT_STREQ(wm::load_status_name(wm::LoadStatus::ChecksumMismatch),
               "checksum-mismatch");
  EXPECT_STREQ(wm::load_status_name(wm::LoadStatus::UnsupportedVersion),
               "unsupported-version");
}

// ---------------------------------------------------------------------------
// Wire-format hardening

TEST(WireRobustness, OversizedPayloadRefusedBeforeParsing) {
  std::string big = "{\"prompt\": \"";
  big += std::string(ws::kMaxWireBytes, 'a');
  big += "\"}";
  EXPECT_FALSE(ws::request_from_json(big).has_value());
  EXPECT_FALSE(ws::response_from_json(big).has_value());
}

TEST(WireRobustness, NonFiniteNumbersRejected) {
  // 1e999 overflows double to infinity; NaN spellings do not parse at all.
  EXPECT_FALSE(
      ws::request_from_json(R"({"prompt": "x", "indent": 1e999})"));
  EXPECT_FALSE(
      ws::request_from_json(R"({"prompt": "x", "deadline_ms": 1e999})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "latency_ms": 1e999})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "latency_ms": nan})"));
}

TEST(WireRobustness, IndentMustBeSmallWholeNonNegative) {
  EXPECT_TRUE(ws::request_from_json(R"({"prompt": "x", "indent": 8})"));
  EXPECT_FALSE(ws::request_from_json(R"({"prompt": "x", "indent": -1})"));
  EXPECT_FALSE(ws::request_from_json(R"({"prompt": "x", "indent": 2.5})"));
  EXPECT_FALSE(
      ws::request_from_json(R"({"prompt": "x", "indent": 1000000})"));
}

TEST(WireRobustness, NegativeDeadlineRejected) {
  EXPECT_FALSE(
      ws::request_from_json(R"({"prompt": "x", "deadline_ms": -5.0})"));
}

TEST(WireRobustness, TruncatedEscapesFailCleanly) {
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"a\\u12"));
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"a\\"));
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"a\\u123"));
  EXPECT_TRUE(ws::request_from_json("{\"prompt\": \"a\\u0041\"}"));
}

TEST(WireRobustness, ResponseCountsAndErrorsValidated) {
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "generated_tokens": -3})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "generated_tokens": 2.5})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "latency_ms": -1.0})"));
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "error": "made-up-error"})"));
  auto ok = ws::response_from_json(
      R"({"ok": true, "snippet": "s", "error": "overloaded"})");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->error, ws::ServiceError::Overloaded);
}

TEST(WireRobustness, RequestRoundTripKeepsDeadline) {
  ws::SuggestionRequest request;
  request.context = "- hosts: web\n";
  request.prompt = "Install nginx";
  request.indent = 4;
  request.deadline_ms = 75.5;
  auto parsed = ws::request_from_json(ws::to_json(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->prompt, request.prompt);
  EXPECT_EQ(parsed->context, request.context);
  EXPECT_EQ(parsed->indent, request.indent);
  EXPECT_DOUBLE_EQ(parsed->deadline_ms, request.deadline_ms);
}

TEST(WireRobustness, ResponseRoundTripKeepsDegradedAndError) {
  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "- name: x\n  ansible.builtin.debug:\n    msg: \"x\"\n";
  response.schema_correct = true;
  response.latency_ms = 1.25;
  response.generated_tokens = 0;
  response.degraded = true;
  response.error = ws::ServiceError::DeadlineExceeded;
  auto parsed = ws::response_from_json(ws::to_json(response));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->degraded);
  EXPECT_EQ(parsed->error, ws::ServiceError::DeadlineExceeded);
  EXPECT_EQ(parsed->snippet, response.snippet);
}

TEST(WireRobustness, ErrorNamesRoundTrip) {
  for (ws::ServiceError e :
       {ws::ServiceError::None, ws::ServiceError::InvalidRequest,
        ws::ServiceError::Overloaded, ws::ServiceError::DeadlineExceeded,
        ws::ServiceError::GenerateFailed}) {
    ws::ServiceError parsed;
    ASSERT_TRUE(
        ws::service_error_from_name(ws::service_error_name(e), &parsed));
    EXPECT_EQ(parsed, e);
    EXPECT_EQ(ws::is_transient(e), e == ws::ServiceError::Overloaded);
  }
  ws::ServiceError unused;
  EXPECT_FALSE(ws::service_error_from_name("bogus", &unused));
}
