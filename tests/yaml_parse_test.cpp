#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "yaml/parse.hpp"

namespace wy = wisdom::yaml;

namespace {
wy::Node must_parse(std::string_view text) {
  wy::ParseError err;
  auto doc = wy::parse_document(text, &err);
  EXPECT_TRUE(doc.has_value()) << err.to_string() << "\nsource:\n" << text;
  return doc ? *doc : wy::Node::null();
}
}  // namespace

TEST(YamlScalars, PlainResolution) {
  EXPECT_TRUE(must_parse("42").is_int());
  EXPECT_EQ(must_parse("42").as_int(), 42);
  EXPECT_EQ(must_parse("-7").as_int(), -7);
  EXPECT_TRUE(must_parse("3.5").is_float());
  EXPECT_DOUBLE_EQ(must_parse("1e3").as_float(), 1000.0);
  EXPECT_TRUE(must_parse("true").is_bool());
  EXPECT_TRUE(must_parse("yes").as_bool());
  EXPECT_FALSE(must_parse("no").as_bool());
  EXPECT_TRUE(must_parse("null").is_null());
  EXPECT_TRUE(must_parse("~").is_null());
  EXPECT_TRUE(must_parse("hello world").is_str());
}

TEST(YamlScalars, LeadingZeroIntegerStaysString) {
  // File modes like 0644 must not be numerically mangled.
  wy::Node n = must_parse("mode: 0644");
  const wy::Node* v = n.find("mode");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->is_str());
  EXPECT_EQ(v->as_str(), "0644");
}

TEST(YamlScalars, QuotedNeverResolves) {
  wy::Node n = must_parse("a: 'yes'\nb: \"42\"");
  EXPECT_TRUE(n.find("a")->is_str());
  EXPECT_EQ(n.find("a")->as_str(), "yes");
  EXPECT_TRUE(n.find("b")->is_str());
}

TEST(YamlScalars, DoubleQuoteEscapes) {
  wy::Node n = must_parse(R"(msg: "line1\nline2\t\"quoted\"")");
  EXPECT_EQ(n.find("msg")->as_str(), "line1\nline2\t\"quoted\"");
}

TEST(YamlScalars, SingleQuoteEscape) {
  wy::Node n = must_parse("msg: 'it''s fine'");
  EXPECT_EQ(n.find("msg")->as_str(), "it's fine");
}

TEST(YamlMapping, SimpleAndNested) {
  wy::Node n = must_parse(
      "name: Install SSH server\n"
      "ansible.builtin.apt:\n"
      "  name: openssh-server\n"
      "  state: present\n");
  ASSERT_TRUE(n.is_map());
  EXPECT_EQ(n.find("name")->as_str(), "Install SSH server");
  const wy::Node* apt = n.find("ansible.builtin.apt");
  ASSERT_NE(apt, nullptr);
  ASSERT_TRUE(apt->is_map());
  EXPECT_EQ(apt->find("state")->as_str(), "present");
}

TEST(YamlMapping, PreservesInsertionOrder) {
  wy::Node n = must_parse("b: 1\na: 2\nc: 3");
  ASSERT_EQ(n.entries().size(), 3u);
  EXPECT_EQ(n.entries()[0].first, "b");
  EXPECT_EQ(n.entries()[1].first, "a");
  EXPECT_EQ(n.entries()[2].first, "c");
}

TEST(YamlMapping, ValueWithColonInside) {
  wy::Node n = must_parse("url: http://example.com:8080/path");
  EXPECT_EQ(n.find("url")->as_str(), "http://example.com:8080/path");
}

TEST(YamlMapping, EmptyValueIsNull) {
  wy::Node n = must_parse("key:\nother: 1");
  EXPECT_TRUE(n.find("key")->is_null());
}

TEST(YamlMapping, QuotedKey) {
  wy::Node n = must_parse("\"key: with colon\": v");
  EXPECT_EQ(n.entries()[0].first, "key: with colon");
}

TEST(YamlSequence, TopLevel) {
  wy::Node n = must_parse("- a\n- b\n- c\n");
  ASSERT_TRUE(n.is_seq());
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n.items()[1].as_str(), "b");
}

TEST(YamlSequence, SequenceAtSameIndentAsKey) {
  // The dominant Ansible style: list items not extra-indented.
  wy::Node n = must_parse(
      "tasks:\n"
      "- name: first\n"
      "- name: second\n");
  const wy::Node* tasks = n.find("tasks");
  ASSERT_NE(tasks, nullptr);
  ASSERT_TRUE(tasks->is_seq());
  EXPECT_EQ(tasks->size(), 2u);
}

TEST(YamlSequence, SequenceIndentedUnderKey) {
  wy::Node n = must_parse(
      "packages:\n"
      "  - nginx\n"
      "  - postgresql\n");
  const wy::Node* pkgs = n.find("packages");
  ASSERT_TRUE(pkgs->is_seq());
  EXPECT_EQ(pkgs->items()[0].as_str(), "nginx");
}

TEST(YamlSequence, CompactMappingItems) {
  wy::Node n = must_parse(
      "- name: Install SSH server\n"
      "  ansible.builtin.apt:\n"
      "    name: openssh-server\n"
      "    state: present\n"
      "- name: Start SSH server\n"
      "  ansible.builtin.service:\n"
      "    name: ssh\n"
      "    state: started\n");
  ASSERT_TRUE(n.is_seq());
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n.items()[0].find("name")->as_str(), "Install SSH server");
  EXPECT_EQ(n.items()[1]
                .find("ansible.builtin.service")
                ->find("state")
                ->as_str(),
            "started");
}

TEST(YamlSequence, NestedSequences) {
  wy::Node n = must_parse(
      "matrix:\n"
      "  - - 1\n"
      "    - 2\n"
      "  - - 3\n"
      "    - 4\n");
  const wy::Node* m = n.find("matrix");
  ASSERT_TRUE(m->is_seq());
  ASSERT_EQ(m->size(), 2u);
  EXPECT_EQ(m->items()[0].items()[1].as_int(), 2);
  EXPECT_EQ(m->items()[1].items()[0].as_int(), 3);
}

TEST(YamlSequence, DashAloneWithNestedBlock) {
  wy::Node n = must_parse(
      "-\n"
      "  name: item\n"
      "- plain\n");
  ASSERT_TRUE(n.is_seq());
  EXPECT_EQ(n.items()[0].find("name")->as_str(), "item");
  EXPECT_EQ(n.items()[1].as_str(), "plain");
}

TEST(YamlFlow, SequencesAndMappings) {
  wy::Node n = must_parse("list: [1, two, 'three', {k: v}]");
  const wy::Node* list = n.find("list");
  ASSERT_TRUE(list->is_seq());
  ASSERT_EQ(list->size(), 4u);
  EXPECT_EQ(list->items()[0].as_int(), 1);
  EXPECT_EQ(list->items()[1].as_str(), "two");
  EXPECT_EQ(list->items()[2].as_str(), "three");
  EXPECT_EQ(list->items()[3].find("k")->as_str(), "v");
}

TEST(YamlFlow, EmptyCollections) {
  wy::Node n = must_parse("a: []\nb: {}");
  EXPECT_TRUE(n.find("a")->is_seq());
  EXPECT_EQ(n.find("a")->size(), 0u);
  EXPECT_TRUE(n.find("b")->is_map());
  EXPECT_EQ(n.find("b")->size(), 0u);
}

TEST(YamlFlow, NestedFlow) {
  wy::Node n = must_parse("m: {outer: {inner: [a, b]}, x: 1}");
  const wy::Node* m = n.find("m");
  EXPECT_EQ(m->find("outer")->find("inner")->items()[1].as_str(), "b");
  EXPECT_EQ(m->find("x")->as_int(), 1);
}

TEST(YamlComments, StrippedOutsideQuotes) {
  wy::Node n = must_parse(
      "# full line comment\n"
      "key: value  # trailing comment\n"
      "url: 'http://x#y'  # the fragment stays\n");
  EXPECT_EQ(n.find("key")->as_str(), "value");
  EXPECT_EQ(n.find("url")->as_str(), "http://x#y");
}

TEST(YamlComments, HashInsidePlainScalarKept) {
  // '#' not preceded by whitespace is not a comment.
  wy::Node n = must_parse("tag: value#suffix");
  EXPECT_EQ(n.find("tag")->as_str(), "value#suffix");
}

TEST(YamlBlockScalar, Literal) {
  wy::Node n = must_parse(
      "script: |\n"
      "  line one\n"
      "  line two\n"
      "after: 1\n");
  EXPECT_EQ(n.find("script")->as_str(), "line one\nline two\n");
  EXPECT_EQ(n.find("after")->as_int(), 1);
}

TEST(YamlBlockScalar, LiteralStrip) {
  wy::Node n = must_parse("s: |-\n  no trailing newline\n");
  EXPECT_EQ(n.find("s")->as_str(), "no trailing newline");
}

TEST(YamlBlockScalar, LiteralKeepsInnerBlankLines) {
  wy::Node n = must_parse(
      "s: |\n"
      "  a\n"
      "\n"
      "  b\n");
  EXPECT_EQ(n.find("s")->as_str(), "a\n\nb\n");
}

TEST(YamlBlockScalar, LiteralPreservesDeeperIndent) {
  wy::Node n = must_parse(
      "s: |\n"
      "  def f():\n"
      "      return 1\n");
  EXPECT_EQ(n.find("s")->as_str(), "def f():\n    return 1\n");
}

TEST(YamlBlockScalar, Folded) {
  wy::Node n = must_parse(
      "s: >\n"
      "  folded into\n"
      "  one line\n");
  EXPECT_EQ(n.find("s")->as_str(), "folded into one line\n");
}

TEST(YamlBlockScalar, FoldedBlankLineMakesNewline) {
  wy::Node n = must_parse(
      "s: >\n"
      "  para one\n"
      "\n"
      "  para two\n");
  EXPECT_EQ(n.find("s")->as_str(), "para one\npara two\n");
}

TEST(YamlDocuments, MultiDocStream) {
  auto result = wy::parse_stream(
      "---\n"
      "doc: 1\n"
      "---\n"
      "doc: 2\n"
      "...\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.documents.size(), 2u);
  EXPECT_EQ(result.documents[1].find("doc")->as_int(), 2);
}

TEST(YamlDocuments, LeadingMarkerAndDirective) {
  auto result = wy::parse_stream("%YAML 1.2\n---\nkey: v\n");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.documents.size(), 1u);
}

TEST(YamlDocuments, AnsiblePlaybookFromPaperFig1) {
  // The exact playbook from Fig. 1 of the paper.
  wy::Node doc = must_parse(
      "---\n"
      "- hosts: servers\n"
      "  tasks:\n"
      "    - name: Install SSH server\n"
      "      ansible.builtin.apt:\n"
      "        name: openssh-server\n"
      "        state: present\n"
      "    - name: Start SSH server\n"
      "      ansible.builtin.service:\n"
      "        name: ssh\n"
      "        state: started\n");
  ASSERT_TRUE(doc.is_seq());
  const wy::Node& play = doc.items()[0];
  EXPECT_EQ(play.find("hosts")->as_str(), "servers");
  ASSERT_EQ(play.find("tasks")->size(), 2u);
}

TEST(YamlDocuments, VyosPlaybookFromPaperFig2) {
  wy::Node doc = must_parse(
      "- name: Network Setup Playbook\n"
      "  connection: ansible.netcommon.network_cli\n"
      "  gather_facts: false\n"
      "  hosts: all\n"
      "  tasks:\n"
      "    - name: Get config for VyOS devices\n"
      "      vyos.vyos.vyos_facts:\n"
      "        gather_subset: all\n"
      "    - name: Update the hostname\n"
      "      vyos.vyos.vyos_config:\n"
      "        backup: yes\n"
      "        lines:\n"
      "          - set system host-name vyos-changed\n");
  const wy::Node& play = doc.items()[0];
  EXPECT_FALSE(play.find("gather_facts")->as_bool());
  const wy::Node& config_task = play.find("tasks")->items()[1];
  EXPECT_TRUE(config_task.find("vyos.vyos.vyos_config")
                  ->find("backup")
                  ->as_bool());
  EXPECT_EQ(config_task.find("vyos.vyos.vyos_config")
                ->find("lines")
                ->items()[0]
                .as_str(),
            "set system host-name vyos-changed");
}

// --- error cases ------------------------------------------------------------

TEST(YamlErrors, TabInIndentation) {
  auto result = wy::parse_stream("key:\n\tvalue: 1\n");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error->message.find("tab"), std::string::npos);
}

TEST(YamlErrors, UnterminatedQuote) {
  EXPECT_FALSE(wy::is_valid_yaml("key: 'unterminated\n"));
  EXPECT_FALSE(wy::is_valid_yaml("key: \"unterminated\n"));
}

TEST(YamlErrors, BadFlow) {
  EXPECT_FALSE(wy::is_valid_yaml("k: [1, 2\n"));
  EXPECT_FALSE(wy::is_valid_yaml("k: {a: 1\n"));
  EXPECT_FALSE(wy::is_valid_yaml("k: [1] trailing\n"));
}

TEST(YamlAnchors, ScalarAnchorAndAlias) {
  wy::Node n = must_parse(
      "defaults: &state present\n"
      "installed: *state\n");
  EXPECT_EQ(n.find("defaults")->as_str(), "present");
  EXPECT_EQ(n.find("installed")->as_str(), "present");
}

TEST(YamlAnchors, MappingAnchorDeepCopies) {
  wy::Node n = must_parse(
      "base: &base\n"
      "  owner: root\n"
      "  mode: '0644'\n"
      "copy: *base\n");
  const wy::Node* copy = n.find("copy");
  ASSERT_TRUE(copy->is_map());
  EXPECT_EQ(copy->find("owner")->as_str(), "root");
  EXPECT_TRUE(*copy == *n.find("base"));
}

TEST(YamlAnchors, SequenceItemAnchor) {
  wy::Node n = must_parse(
      "- &first\n"
      "  name: one\n"
      "- *first\n");
  ASSERT_EQ(n.size(), 2u);
  EXPECT_TRUE(n.items()[0] == n.items()[1]);
}

TEST(YamlAnchors, AnchoredInlineValueInSequence) {
  wy::Node n = must_parse(
      "- &x 42\n"
      "- *x\n");
  EXPECT_EQ(n.items()[1].as_int(), 42);
}

TEST(YamlAnchors, MergeKey) {
  wy::Node n = must_parse(
      "defaults: &defaults\n"
      "  owner: root\n"
      "  mode: '0644'\n"
      "file:\n"
      "  <<: *defaults\n"
      "  mode: '0600'\n"
      "  path: /etc/motd\n");
  const wy::Node* file = n.find("file");
  ASSERT_TRUE(file->is_map());
  EXPECT_EQ(file->find("owner")->as_str(), "root");
  // Explicit keys override merged ones regardless of order.
  EXPECT_EQ(file->find("mode")->as_str(), "0600");
  EXPECT_EQ(file->find("path")->as_str(), "/etc/motd");
}

TEST(YamlAnchors, AliasInFlowSequence) {
  wy::Node n = must_parse(
      "a: &v nginx\n"
      "list: [*v, other]\n");
  EXPECT_EQ(n.find("list")->items()[0].as_str(), "nginx");
}

TEST(YamlAnchors, UnknownAliasIsError) {
  auto result = wy::parse_stream("a: *nope\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error->message.find("alias"), std::string::npos);
}

TEST(YamlAnchors, DanglingAnchorIsHandled) {
  // An anchor with no value anchors a null.
  wy::Node n = must_parse("a: &empty\nb: *empty\n");
  EXPECT_TRUE(n.find("a")->is_null());
  EXPECT_TRUE(n.find("b")->is_null());
}

TEST(YamlErrors, BadIndentationInMapping) {
  EXPECT_FALSE(wy::is_valid_yaml("a: 1\n   b: 2\n"));
}

TEST(YamlErrors, ErrorCarriesLineNumber) {
  auto result = wy::parse_stream("ok: 1\nbad: 'x\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->line, 2u);
}

TEST(YamlErrors, FuzzNoiseNeverCrashes) {
  // Random structured-ish noise: the parser must fail gracefully (or
  // accept), never crash or hang.
  wisdom::util::Rng rng(31337);
  const char* pool = "-:#&*!|>'\"[]{},%\n  abcXYZ0123._~\t\\";
  const std::size_t pool_len = 33;
  for (int trial = 0; trial < 500; ++trial) {
    std::string noise;
    std::size_t len = rng.uniform(120);
    for (std::size_t i = 0; i < len; ++i)
      noise += pool[rng.uniform(pool_len)];
    auto result = wy::parse_stream(noise);
    if (!result.ok()) {
      EXPECT_FALSE(result.error->message.empty());
    }
  }
  SUCCEED();
}

TEST(YamlErrors, FuzzRawBytesNeverCrash) {
  wisdom::util::Rng rng(2718);
  for (int trial = 0; trial < 200; ++trial) {
    std::string noise;
    std::size_t len = rng.uniform(200);
    for (std::size_t i = 0; i < len; ++i)
      noise += static_cast<char>(rng.uniform(256));
    wy::parse_stream(noise);  // must not crash
  }
  SUCCEED();
}

TEST(YamlErrors, EmptyStreamHasNoDocuments) {
  auto result = wy::parse_stream("");
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.documents.empty());
  EXPECT_FALSE(wy::parse_document("").has_value());
}
