#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluate.hpp"
#include "core/pipeline.hpp"
#include "core/postprocess.hpp"
#include "core/trainer.hpp"
#include "data/packing.hpp"
#include "model/checkpoint.hpp"
#include "model/transformer.hpp"
#include "text/bpe.hpp"

namespace wc = wisdom::core;
namespace wd = wisdom::data;
namespace wm = wisdom::model;
namespace wt = wisdom::text;

// --- postprocess -------------------------------------------------------------

TEST(Postprocess, TrimGenerationDropsPartialLastLine) {
  EXPECT_EQ(wc::trim_generation("  a: 1\n  b: 2\n  c"), "  a: 1\n  b: 2\n");
  EXPECT_EQ(wc::trim_generation("no newline at all"), "");
  EXPECT_EQ(wc::trim_generation(""), "");
}

TEST(Postprocess, TruncateStopsAtNextTask) {
  std::string body =
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: present\n"
      "- name: Another task\n"
      "  ansible.builtin.ping:\n";
  EXPECT_EQ(wc::truncate_to_first_task(body, 0),
            "  ansible.builtin.apt:\n    name: nginx\n    state: present\n");
}

TEST(Postprocess, TruncateStopsAtDocumentMarker) {
  std::string body = "  ansible.builtin.ping:\n---\nother: doc\n";
  EXPECT_EQ(wc::truncate_to_first_task(body, 0),
            "  ansible.builtin.ping:\n");
}

TEST(Postprocess, TruncateStopsAtBlankLine) {
  std::string body = "  ansible.builtin.ping:\n\ngarbage\n";
  EXPECT_EQ(wc::truncate_to_first_task(body, 0),
            "  ansible.builtin.ping:\n");
}

TEST(Postprocess, TruncateRespectsPlaybookIndent) {
  // Item indent 4 (task inside a playbook): body lines at 6+, next task at 4.
  std::string body =
      "      ansible.builtin.apt:\n"
      "        name: nginx\n"
      "    - name: Next\n"
      "      ansible.builtin.ping:\n";
  EXPECT_EQ(wc::truncate_to_first_task(body, 4),
            "      ansible.builtin.apt:\n        name: nginx\n");
}

TEST(Postprocess, TruncateStopsAtDedent) {
  std::string body =
      "  ansible.builtin.debug:\n"
      "    msg: hi\n"
      "hosts: oops\n";
  EXPECT_EQ(wc::truncate_to_first_task(body, 0),
            "  ansible.builtin.debug:\n    msg: hi\n");
}

TEST(Postprocess, TruncateKeepsWholeSingleTask) {
  std::string body = "  ansible.builtin.ping:\n  when: run_it\n";
  EXPECT_EQ(wc::truncate_to_first_task(body, 0), body);
}

// --- trainer -----------------------------------------------------------------

namespace {
wm::ModelConfig tiny_config(int vocab) {
  wm::ModelConfig cfg;
  cfg.vocab = vocab;
  cfg.ctx = 16;
  cfg.d_model = 16;
  cfg.n_head = 2;
  cfg.n_layer = 2;
  cfg.d_ff = 32;
  return cfg;
}
}  // namespace

TEST(Trainer, LossDecreasesOnRepetitiveCorpus) {
  auto tok = wt::BpeTokenizer::train("state: present\nname: nginx\n", 280);
  std::vector<std::string> files;
  for (int i = 0; i < 40; ++i)
    files.push_back("name: nginx\nstate: present\n");
  auto set = wd::pack_files(tok, files, 16);
  ASSERT_GT(set.count(), 4u);

  wm::Transformer model(tiny_config(static_cast<int>(tok.vocab_size())), 3);
  float first_loss = wc::evaluate_loss(model, set);
  wc::TrainConfig tc;
  tc.epochs = 20;
  tc.micro_batch = 4;
  tc.grad_accum = 1;  // tiny set: keep the optimizer step count useful
  tc.lr = 3e-3f;
  wc::TrainResult result = wc::train_model(model, set, nullptr, tc);
  EXPECT_GT(result.steps, 0);
  EXPECT_LT(result.final_train_loss, first_loss * 0.5f);
  EXPECT_LT(wc::evaluate_loss(model, set), first_loss * 0.5f);
}

TEST(Trainer, EpochCallbackFires) {
  auto tok = wt::BpeTokenizer::train("a b c\n", 262);
  std::vector<std::string> files(10, "a b c\n");
  auto set = wd::pack_files(tok, files, 8);
  wm::Transformer model(tiny_config(static_cast<int>(tok.vocab_size())), 5);
  wc::TrainConfig tc;
  tc.epochs = 3;
  int calls = 0;
  tc.on_epoch = [&](int epoch, float loss, float) {
    EXPECT_EQ(epoch, calls);
    EXPECT_GT(loss, 0.0f);
    ++calls;
  };
  wc::train_model(model, set, nullptr, tc);
  EXPECT_EQ(calls, 3);
}

TEST(Trainer, BestCheckpointByValidator) {
  // A validator that prefers epoch 1 must leave the model with epoch-1
  // weights even though training continues past it.
  auto tok = wt::BpeTokenizer::train("x y\n", 260);
  std::vector<std::string> files(10, "x y\n");
  auto set = wd::pack_files(tok, files, 8);
  wm::Transformer model(tiny_config(static_cast<int>(tok.vocab_size())), 7);
  wc::TrainConfig tc;
  tc.epochs = 4;
  std::vector<float> scores = {0.1f, 0.9f, 0.2f, 0.3f};
  int epoch_counter = 0;
  std::string epoch1_weights;
  tc.validator = [&](wm::Transformer& m) {
    float score = scores[static_cast<std::size_t>(epoch_counter)];
    if (epoch_counter == 1)
      epoch1_weights = wm::save_checkpoint(m, "");
    ++epoch_counter;
    return score;
  };
  wc::TrainResult result = wc::train_model(model, set, nullptr, tc);
  EXPECT_EQ(result.best_epoch, 1);
  EXPECT_FLOAT_EQ(result.best_validation_score, 0.9f);
  EXPECT_EQ(wm::save_checkpoint(model, ""), epoch1_weights);
}

TEST(Trainer, ValidationLossFallback) {
  auto tok = wt::BpeTokenizer::train("p q\n", 260);
  std::vector<std::string> files(10, "p q\n");
  auto train_set = wd::pack_files(tok, files, 8);
  auto valid_set = wd::pack_files(tok, files, 8);
  wm::Transformer model(tiny_config(static_cast<int>(tok.vocab_size())), 9);
  wc::TrainConfig tc;
  tc.epochs = 2;
  wc::TrainResult result = wc::train_model(model, train_set, &valid_set, tc);
  EXPECT_GE(result.best_epoch, 0);
}

TEST(Trainer, EmptySetIsNoop) {
  wd::TokenBatchSet empty;
  empty.window = 8;
  wm::Transformer model(tiny_config(260), 1);
  wc::TrainResult result = wc::train_model(model, empty, nullptr, {});
  EXPECT_EQ(result.steps, 0);
  EXPECT_EQ(wc::evaluate_loss(model, empty), 0.0f);
}

// --- pipeline (non-training pieces) -------------------------------------------

TEST(Pipeline, MixLabels) {
  EXPECT_EQ(wc::mix_label(wc::PretrainMix::CodeGenMulti), "CodeGen-Multi");
  EXPECT_EQ(wc::mix_label(wc::PretrainMix::WisdomAnsibleMulti),
            "Wisdom-Ansible-Multi");
  EXPECT_EQ(wc::mix_label(wc::PretrainMix::CodexAnalog), "Codex-Davinci-002");
  EXPECT_TRUE(wc::mix_extends_codegen_multi(wc::PretrainMix::WisdomYamlMulti));
  EXPECT_FALSE(wc::mix_extends_codegen_multi(wc::PretrainMix::WisdomAnsible));
}

TEST(Pipeline, MixCorporaMatchTableTwo) {
  // Table II: which datasets feed which model. Spot-check by content
  // signature: NL corpora contain prose, code corpora contain "def ",
  // Ansible corpora contain module FQCNs.
  wc::PipelineConfig cfg;
  wc::Pipeline pipe(cfg);

  auto has = [](const std::vector<std::string>& files,
                std::string_view needle) {
    for (const auto& f : files)
      if (f.find(needle) != std::string::npos) return true;
    return false;
  };

  auto nl = pipe.mix_corpus(wc::PretrainMix::CodeGenNL);
  EXPECT_FALSE(has(nl, "def "));  // no BigQuery code in CodeGen-NL

  auto multi = pipe.mix_corpus(wc::PretrainMix::CodeGenMulti);
  EXPECT_TRUE(has(multi, "def "));  // BigQuery code present

  auto ansible = pipe.mix_corpus(wc::PretrainMix::WisdomAnsible);
  EXPECT_TRUE(has(ansible, "ansible.builtin."));
  EXPECT_FALSE(has(ansible, "apiVersion"));  // no generic YAML

  auto yaml = pipe.mix_corpus(wc::PretrainMix::WisdomYaml);
  EXPECT_TRUE(has(yaml, "ansible.builtin."));
  EXPECT_TRUE(has(yaml, "apiVersion"));  // generic YAML included

  auto codex = pipe.mix_corpus(wc::PretrainMix::CodexAnalog);
  EXPECT_TRUE(has(codex, "def "));
  EXPECT_TRUE(has(codex, "ansible.builtin."));
}

TEST(Pipeline, TokenizerSharedAndSized) {
  wc::PipelineConfig cfg;
  cfg.vocab_size = 300;
  wc::Pipeline pipe(cfg);
  const auto& tok = pipe.tokenizer();
  EXPECT_LE(tok.vocab_size(), 300u);
  EXPECT_GT(tok.merge_count(), 10u);
  // Same object on repeated calls.
  EXPECT_EQ(&pipe.tokenizer(), &tok);
}

TEST(Pipeline, GalaxySplitsStable) {
  wc::PipelineConfig cfg;
  wc::Pipeline a(cfg), b(cfg);
  const auto& sa = a.galaxy_splits();
  const auto& sb = b.galaxy_splits();
  ASSERT_EQ(sa.train.size(), sb.train.size());
  ASSERT_FALSE(sa.train.empty());
  EXPECT_EQ(sa.train[0].target_body, sb.train[0].target_body);
  EXPECT_EQ(sa.test.size(), sb.test.size());
  // Roughly 80/10/10.
  double total = static_cast<double>(sa.train.size() + sa.valid.size() +
                                     sa.test.size());
  EXPECT_NEAR(sa.train.size() / total, 0.8, 0.02);
}

// --- end-to-end micro pipeline --------------------------------------------------

TEST(PipelineEndToEnd, TinyFinetuneBeatsUntrainedModel) {
  // Full path at micro scale: tokenizer -> FT packing -> training -> greedy
  // decode -> metrics. A few dozen highly repetitive samples are learnable
  // within seconds; the trained model must beat an untrained one.
  wc::PipelineConfig cfg;
  cfg.vocab_size = 320;
  wc::Pipeline pipe(cfg);
  const auto& tok = pipe.tokenizer();

  std::vector<wd::FtSample> samples;
  const char* pkgs[] = {"nginx", "redis", "git", "curl", "vim"};
  for (const char* pkg : pkgs) {
    wd::FtSample s;
    s.type = wd::GenerationType::NlToTask;
    s.prompt = std::string("Install ") + pkg;
    s.input_line = "- name: Install " + std::string(pkg) + "\n";
    s.target_body = "  ansible.builtin.apt:\n    name: " + std::string(pkg) +
                    "\n    state: present\n";
    samples.push_back(s);
  }
  std::vector<std::string> texts;
  for (int rep = 0; rep < 30; ++rep)
    for (const auto& s : samples)
      texts.push_back(wd::format_training_text(
          s, wd::PromptFormat::NameCompletion));

  wm::ModelConfig mc;
  mc.vocab = static_cast<int>(tok.vocab_size());
  mc.ctx = 64;
  mc.d_model = 32;
  mc.n_head = 2;
  mc.n_layer = 2;
  mc.d_ff = 64;
  wm::Transformer model(mc, 11);
  wc::EvalOptions eval;
  auto before = wc::evaluate_model(model, tok, samples, eval);

  auto set = wd::pack_samples(tok, texts, mc.ctx);
  wc::TrainConfig tc;
  tc.epochs = 8;
  tc.micro_batch = 4;
  tc.grad_accum = 1;
  tc.lr = 3e-3f;
  wc::train_model(model, set, nullptr, tc);
  auto after = wc::evaluate_model(model, tok, samples, eval);

  EXPECT_GT(after.bleu, before.bleu + 20.0);
  EXPECT_GT(after.ansible_aware, before.ansible_aware);
  EXPECT_GT(after.bleu, 60.0);
}
