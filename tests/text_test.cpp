#include <gtest/gtest.h>

#include <string>

#include "text/bpe.hpp"
#include "text/ngram.hpp"
#include "text/tokenize.hpp"
#include "util/rng.hpp"

namespace wt = wisdom::text;

namespace {
const std::string kYamlCorpus =
    "- name: Install nginx\n"
    "  ansible.builtin.apt:\n"
    "    name: nginx\n"
    "    state: present\n"
    "- name: Start nginx\n"
    "  ansible.builtin.service:\n"
    "    name: nginx\n"
    "    state: started\n"
    "- name: Install postgresql\n"
    "  ansible.builtin.apt:\n"
    "    name: postgresql\n"
    "    state: present\n";
}  // namespace

// --- pretokenize -----------------------------------------------------------

TEST(Pretokenize, NewlinesStandalone) {
  auto toks = wt::pretokenize("a\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1], "\n");
}

TEST(Pretokenize, IndentGluesToWord) {
  auto toks = wt::pretokenize("    state: present");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "    state:");
  EXPECT_EQ(toks[1], " present");
}

TEST(Pretokenize, ConcatenationRecoversInput) {
  std::string input = "  - name: X\n    apt:\n      state: present\n";
  std::string glued;
  for (auto t : wt::pretokenize(input)) glued += t;
  EXPECT_EQ(glued, input);
}

// --- BPE --------------------------------------------------------------------

TEST(Bpe, RoundTripOnTrainingDomain) {
  auto tok = wt::BpeTokenizer::train(kYamlCorpus, 300);
  auto ids = tok.encode(kYamlCorpus);
  EXPECT_EQ(tok.decode(ids), kYamlCorpus);
}

TEST(Bpe, RoundTripOnUnseenText) {
  auto tok = wt::BpeTokenizer::train(kYamlCorpus, 300);
  std::string unseen = "completely: different\n  content: [1, 2]\n";
  EXPECT_EQ(tok.decode(tok.encode(unseen)), unseen);
}

TEST(Bpe, RoundTripArbitraryBytes) {
  auto tok = wt::BpeTokenizer::train(kYamlCorpus, 280);
  wisdom::util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::string bytes;
    for (int i = 0; i < 64; ++i)
      bytes += static_cast<char>(rng.uniform(256));
    EXPECT_EQ(tok.decode(tok.encode(bytes)), bytes);
  }
}

TEST(Bpe, MergesCompress) {
  auto tok = wt::BpeTokenizer::train(kYamlCorpus, 400);
  auto ids = tok.encode(kYamlCorpus);
  // With learned merges the sequence must be much shorter than raw bytes.
  EXPECT_LT(ids.size(), kYamlCorpus.size() / 2);
  EXPECT_GT(tok.merge_count(), 20u);
}

TEST(Bpe, LargerVocabNeverLongerEncoding) {
  auto small = wt::BpeTokenizer::train(kYamlCorpus, 280);
  auto large = wt::BpeTokenizer::train(kYamlCorpus, 420);
  EXPECT_LE(large.encode(kYamlCorpus).size(),
            small.encode(kYamlCorpus).size());
}

TEST(Bpe, DeterministicTraining) {
  auto a = wt::BpeTokenizer::train(kYamlCorpus, 320);
  auto b = wt::BpeTokenizer::train(kYamlCorpus, 320);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(a.encode("state: present"), b.encode("state: present"));
}

TEST(Bpe, SpecialTokensDecodeToNothing) {
  auto tok = wt::BpeTokenizer::train(kYamlCorpus, 280);
  std::vector<wt::TokenId> ids = {wt::BpeTokenizer::kEndOfText,
                                  wt::BpeTokenizer::kPad};
  EXPECT_EQ(tok.decode(ids), "");
  EXPECT_EQ(tok.token_text(wt::BpeTokenizer::kEndOfText), "<|eot|>");
  EXPECT_EQ(tok.token_text(wt::BpeTokenizer::kPad), "<|pad|>");
}

TEST(Bpe, SerializationRoundTrip) {
  auto tok = wt::BpeTokenizer::train(kYamlCorpus, 350);
  auto restored = wt::BpeTokenizer::deserialize(tok.serialize());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->vocab_size(), tok.vocab_size());
  EXPECT_EQ(restored->encode(kYamlCorpus), tok.encode(kYamlCorpus));
}

TEST(Bpe, DeserializeRejectsGarbage) {
  EXPECT_FALSE(wt::BpeTokenizer::deserialize("not a tokenizer").has_value());
  auto tok = wt::BpeTokenizer::train(kYamlCorpus, 300);
  std::string data = tok.serialize();
  data.resize(data.size() / 2);
  EXPECT_FALSE(wt::BpeTokenizer::deserialize(data).has_value());
}

TEST(Bpe, VocabSizeHonored) {
  auto tok = wt::BpeTokenizer::train(kYamlCorpus, 300);
  EXPECT_LE(tok.vocab_size(), 300u);
  EXPECT_GE(tok.vocab_size(), 258u);
}

// --- bleu tokenization ----------------------------------------------------------

TEST(BleuTokenize, SplitsIdentifiersAndPunct) {
  auto toks = wt::bleu_tokenize("name: openssh-server");
  std::vector<std::string> expected = {"name", ":", "openssh", "-", "server"};
  EXPECT_EQ(toks, expected);
}

TEST(BleuTokenize, NewlineMarkers) {
  auto toks = wt::bleu_tokenize("a\nb");
  std::vector<std::string> expected = {"a", "<nl>", "b"};
  EXPECT_EQ(toks, expected);
}

TEST(BleuTokenize, KeepsUnderscoreInIdentifier) {
  auto toks = wt::bleu_tokenize("gather_facts: false");
  EXPECT_EQ(toks[0], "gather_facts");
}

// --- ngrams --------------------------------------------------------------------

TEST(Ngram, CountsAndClipping) {
  std::vector<std::string> a = {"x", "y", "x", "y"};
  auto unigrams = wt::count_ngrams(a, 1);
  EXPECT_EQ(unigrams["x"], 2);
  auto bigrams = wt::count_ngrams(a, 2);
  EXPECT_EQ(bigrams.size(), 2u);  // distinct: xy (count 2), yx (count 1)
  EXPECT_EQ(bigrams["x\x1fy"], 2);
  std::vector<std::string> ref = {"x", "y"};
  auto ref_uni = wt::count_ngrams(ref, 1);
  // candidate has x twice but reference only once: clipped to 1 (+1 for y).
  EXPECT_EQ(wt::clipped_matches(unigrams, ref_uni), 2);
}

TEST(Ngram, OrderLargerThanSequence) {
  std::vector<std::string> a = {"x"};
  EXPECT_TRUE(wt::count_ngrams(a, 2).empty());
  EXPECT_TRUE(wt::count_ngrams({}, 1).empty());
}
