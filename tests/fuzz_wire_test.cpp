// Seeded fuzz test for the serve::wire JSON parsers. Two corpora:
// mutations of valid request/response messages (bit flips, truncations,
// splices, duplications) and pure random bytes. The parsers must never
// crash, hang, or read out of bounds — they either return a value or
// nullopt — and any accepted input must survive a serialize→parse round
// trip. The 1 MiB payload cap and the nesting-depth bound are asserted
// explicitly, including a megabyte-deep nesting attack that must be
// rejected without exhausting the stack.
//
// Iteration budget: WISDOM_FUZZ_ITERS (default 10000, the CI budget);
// raise it locally for longer campaigns.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace ws = wisdom::serve;

namespace {

int fuzz_iters() {
  if (const char* env = std::getenv("WISDOM_FUZZ_ITERS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 10000;
}

// Deterministic splitmix64: reproducible corpora on every platform.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

std::vector<std::string> seed_corpus() {
  std::vector<std::string> seeds;
  ws::SuggestionRequest request;
  request.context = "- name: Install nginx\n  ansible.builtin.apt:\n";
  request.prompt = "Install redis \"quoted\" \\ \t\n";
  request.indent = 4;
  request.deadline_ms = 12.5;
  request.trace_id = "f00dfeed";
  seeds.push_back(ws::to_json(request));
  seeds.push_back(ws::to_json(ws::SuggestionRequest{.prompt = "x"}));

  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "- name: Install nginx\n  ansible.builtin.apt:\n";
  response.schema_correct = true;
  response.latency_ms = 3.25;
  response.generated_tokens = 17;
  response.cached = true;
  response.trace_id = "deadbeef";
  response.server_timing_ms = {{"cache", 0.01}, {"decode", 2.5}};
  wisdom::analysis::Diagnostic d;
  d.rule = "fqcn";
  d.message = "use the fully qualified name";
  d.severity = wisdom::analysis::Severity::Warning;
  d.span.line = 2;
  d.span.column = 3;
  d.span.begin = 10;
  d.span.end = 14;
  response.diagnostics.push_back(d);
  seeds.push_back(ws::to_json(response));

  ws::SuggestionResponse degraded;
  degraded.ok = false;
  degraded.degraded = true;
  degraded.error = ws::ServiceError::DeadlineExceeded;
  seeds.push_back(ws::to_json(degraded));
  return seeds;
}

std::string mutate(const std::string& seed, Rng& rng) {
  std::string out = seed;
  switch (rng.below(6)) {
    case 0:  // byte flip(s)
      for (std::size_t flips = 1 + rng.below(4); flips && !out.empty();
           --flips)
        out[rng.below(out.size())] =
            static_cast<char>(static_cast<unsigned char>(rng.next()));
      break;
    case 1:  // truncate
      out.resize(rng.below(out.size() + 1));
      break;
    case 2:  // insert random bytes
      for (std::size_t n = 1 + rng.below(8); n; --n)
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(out.size() + 1)),
                   static_cast<char>(static_cast<unsigned char>(rng.next())));
      break;
    case 3: {  // duplicate a slice
      if (out.empty()) break;
      std::size_t begin = rng.below(out.size());
      std::size_t len = 1 + rng.below(out.size() - begin);
      out.insert(rng.below(out.size()), out.substr(begin, len));
      break;
    }
    case 4: {  // splice: random head of out + random tail of seed
      std::size_t cut = rng.below(out.size() + 1);
      out = out.substr(0, cut) + seed.substr(rng.below(seed.size() + 1));
      break;
    }
    default:  // structural noise: sprinkle JSON punctuation
      for (std::size_t n = 1 + rng.below(6); n; --n) {
        const char punct[] = "{}[]\":,\\";
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(out.size() + 1)),
                   punct[rng.below(sizeof(punct) - 1)]);
      }
      break;
  }
  return out;
}

// Every accepted parse must re-serialize to something the parser accepts
// again: the wire format is closed under its own round trip.
void check_roundtrip_closed(const std::string& input) {
  if (auto request = ws::request_from_json(input)) {
    auto again = ws::request_from_json(ws::to_json(*request));
    ASSERT_TRUE(again.has_value()) << "request round-trip not closed";
    EXPECT_EQ(again->prompt, request->prompt);
    EXPECT_EQ(again->context, request->context);
    EXPECT_EQ(again->indent, request->indent);
  }
  if (auto response = ws::response_from_json(input)) {
    auto again = ws::response_from_json(ws::to_json(*response));
    ASSERT_TRUE(again.has_value()) << "response round-trip not closed";
    EXPECT_EQ(again->snippet, response->snippet);
    EXPECT_EQ(again->cached, response->cached);
    EXPECT_EQ(again->error, response->error);
  }
}

}  // namespace

TEST(FuzzWire, SeededMutationsNeverCrashAndStayClosed) {
  auto seeds = seed_corpus();
  // The unmutated seeds themselves must parse.
  for (std::size_t i = 0; i < 2; ++i)
    ASSERT_TRUE(ws::request_from_json(seeds[i]).has_value()) << seeds[i];
  for (std::size_t i = 2; i < seeds.size(); ++i)
    ASSERT_TRUE(ws::response_from_json(seeds[i]).has_value()) << seeds[i];

  Rng rng(0x5eedf00dull);
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    std::string input = mutate(seeds[rng.below(seeds.size())], rng);
    check_roundtrip_closed(input);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FuzzWire, PureRandomBytesNeverCrash) {
  Rng rng(0xdecafbadull);
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    std::string input;
    std::size_t len = rng.below(512);
    input.reserve(len);
    for (std::size_t k = 0; k < len; ++k)
      input.push_back(static_cast<char>(static_cast<unsigned char>(rng.next())));
    check_roundtrip_closed(input);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FuzzWire, PayloadCapRefusedBeforeParsing) {
  // One byte over the cap: rejected regardless of content; at the cap a
  // syntactically valid message still parses.
  std::string over(ws::kMaxWireBytes + 1, ' ');
  EXPECT_FALSE(ws::request_from_json(over).has_value());
  EXPECT_FALSE(ws::response_from_json(over).has_value());

  std::string padded = "{\"prompt\": \"x\"}";
  padded.append(ws::kMaxWireBytes - padded.size(), ' ');
  ASSERT_EQ(padded.size(), ws::kMaxWireBytes);
  EXPECT_TRUE(ws::request_from_json(padded).has_value());
}

TEST(FuzzWire, DepthBoundHoldsWithoutStackExhaustion) {
  // Nesting just past the documented bound is rejected...
  std::string nested = "{\"prompt\": \"x\", \"extra\": ";
  for (int i = 0; i < 16; ++i) nested += "{\"a\": ";
  nested += "1";
  for (int i = 0; i < 16; ++i) nested += "}";
  nested += "}";
  EXPECT_FALSE(ws::request_from_json(nested).has_value());

  // ...and a ~1 MiB-deep nesting attack must die at the depth check, not
  // by exhausting the recursion stack.
  std::string bomb = "{\"prompt\": ";
  bomb.append(500000, '[');
  EXPECT_FALSE(ws::request_from_json(bomb).has_value());
  std::string brace_bomb;
  brace_bomb.append(500000, '{');
  EXPECT_FALSE(ws::response_from_json(brace_bomb).has_value());
}

TEST(FuzzWire, ShallowNestingWithinBoundStillParses) {
  // server_timing_ms is one level down; unknown nested fields within the
  // bound are tolerated.
  std::string json =
      "{\"ok\": true, \"snippet\": \"s\", \"extra\": {\"a\": {\"b\": 1}},"
      " \"server_timing_ms\": {\"decode\": 1.5}}";
  auto response = ws::response_from_json(json);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->server_timing_ms.at("decode"), 1.5);
}
