#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/adamw.hpp"
#include "nn/ops.hpp"
#include "nn/schedule.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace nn = wisdom::nn;
using wisdom::util::Rng;

namespace {

nn::Vec random_vec(Rng& rng, std::size_t n, float scale = 1.0f) {
  nn::Vec v(n);
  for (float& x : v) x = static_cast<float>(rng.normal()) * scale;
  return v;
}

// Central-difference numeric gradient of a scalar loss w.r.t. x[i].
double numeric_grad(std::function<double()> loss, float& xi, float eps) {
  float saved = xi;
  xi = saved + eps;
  double up = loss();
  xi = saved - eps;
  double down = loss();
  xi = saved;
  return (up - down) / (2.0 * eps);
}

void expect_close(double a, double b, double tol, const char* what) {
  double denom = std::max({std::abs(a), std::abs(b), 1e-3});
  EXPECT_LT(std::abs(a - b) / denom, tol) << what << ": " << a << " vs " << b;
}

}  // namespace

// --- matmul -------------------------------------------------------------------

TEST(Ops, MatmulKnownValues) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  float a[] = {1, 2, 3, 4};
  float b[] = {5, 6, 7, 8};
  float c[4];
  nn::matmul(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19);
  EXPECT_FLOAT_EQ(c[1], 22);
  EXPECT_FLOAT_EQ(c[2], 43);
  EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(Ops, MatmulBtMatchesMatmul) {
  Rng rng(1);
  const int m = 3, k = 4, n = 5;
  nn::Vec a = random_vec(rng, m * k);
  nn::Vec b = random_vec(rng, k * n);
  nn::Vec bt(n * k);
  for (int i = 0; i < k; ++i)
    for (int j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
  nn::Vec c1(m * n), c2(m * n);
  nn::matmul(a.data(), b.data(), c1.data(), m, k, n);
  nn::matmul_bt(a.data(), bt.data(), c2.data(), m, k, n);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4);
}

TEST(Ops, MatmulGradcheck) {
  Rng rng(2);
  const int m = 3, k = 4, n = 2;
  nn::Vec a = random_vec(rng, m * k);
  nn::Vec b = random_vec(rng, k * n);
  nn::Vec dc = random_vec(rng, m * n);
  // loss = sum(C .* dc)
  auto loss = [&] {
    nn::Vec c(m * n);
    nn::matmul(a.data(), b.data(), c.data(), m, k, n);
    double s = 0;
    for (int i = 0; i < m * n; ++i) s += c[i] * dc[i];
    return s;
  };
  nn::Vec da(m * k, 0.0f), db(k * n, 0.0f);
  nn::matmul_backward(a.data(), b.data(), dc.data(), da.data(), db.data(), m,
                      k, n);
  for (int i : {0, 5, 11}) {
    expect_close(numeric_grad(loss, a[i], 1e-3f), da[i], 1e-2, "dA");
  }
  for (int i : {0, 3, 7}) {
    expect_close(numeric_grad(loss, b[i], 1e-3f), db[i], 1e-2, "dB");
  }
}

// --- bias ----------------------------------------------------------------------

TEST(Ops, BiasForwardAndBackward) {
  float x[] = {1, 2, 3, 4};
  float bias[] = {10, 20};
  float y[4];
  nn::add_bias(x, bias, y, 2, 2);
  EXPECT_FLOAT_EQ(y[0], 11);
  EXPECT_FLOAT_EQ(y[3], 24);
  float dy[] = {1, 2, 3, 4};
  float dbias[] = {0, 0};
  nn::add_bias_backward(dy, dbias, 2, 2);
  EXPECT_FLOAT_EQ(dbias[0], 4);  // 1 + 3
  EXPECT_FLOAT_EQ(dbias[1], 6);  // 2 + 4
}

// --- gelu ----------------------------------------------------------------------

TEST(Ops, GeluValues) {
  float x[] = {-2.0f, 0.0f, 2.0f};
  float y[3];
  nn::gelu(x, y, 3);
  EXPECT_NEAR(y[1], 0.0, 1e-6);
  EXPECT_NEAR(y[2], 1.9546, 1e-3);  // gelu(2)
  EXPECT_NEAR(y[0], -0.0454, 1e-3);
  // Monotone-ish ordering for these points.
  EXPECT_LT(y[0], y[1]);
  EXPECT_LT(y[1], y[2]);
}

TEST(Ops, GeluGradcheck) {
  Rng rng(3);
  nn::Vec x = random_vec(rng, 8);
  nn::Vec dy = random_vec(rng, 8);
  auto loss = [&] {
    nn::Vec y(8);
    nn::gelu(x.data(), y.data(), 8);
    double s = 0;
    for (int i = 0; i < 8; ++i) s += y[i] * dy[i];
    return s;
  };
  nn::Vec dx(8, 0.0f);
  nn::gelu_backward(x.data(), dy.data(), dx.data(), 8);
  for (int i = 0; i < 8; ++i)
    expect_close(numeric_grad(loss, x[i], 1e-3f), dx[i], 1e-2, "gelu dx");
}

// --- layernorm --------------------------------------------------------------------

TEST(Ops, LayernormNormalizes) {
  Rng rng(4);
  const int m = 2, n = 16;
  nn::Vec x = random_vec(rng, m * n, 3.0f);
  nn::Vec gain(n, 1.0f), bias(n, 0.0f), y(m * n), mean(m), rstd(m);
  nn::layernorm(x.data(), gain.data(), bias.data(), y.data(), mean.data(),
                rstd.data(), m, n);
  for (int i = 0; i < m; ++i) {
    double mu = 0, var = 0;
    for (int j = 0; j < n; ++j) mu += y[i * n + j];
    mu /= n;
    for (int j = 0; j < n; ++j) var += (y[i * n + j] - mu) * (y[i * n + j] - mu);
    var /= n;
    EXPECT_NEAR(mu, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Ops, LayernormGradcheck) {
  Rng rng(5);
  const int m = 2, n = 6;
  nn::Vec x = random_vec(rng, m * n);
  nn::Vec gain = random_vec(rng, n, 0.5f);
  for (float& g : gain) g += 1.0f;
  nn::Vec bias = random_vec(rng, n, 0.1f);
  nn::Vec dy = random_vec(rng, m * n);
  auto loss = [&] {
    nn::Vec y(m * n), mean(m), rstd(m);
    nn::layernorm(x.data(), gain.data(), bias.data(), y.data(), mean.data(),
                  rstd.data(), m, n);
    double s = 0;
    for (int i = 0; i < m * n; ++i) s += y[i] * dy[i];
    return s;
  };
  nn::Vec y(m * n), mean(m), rstd(m);
  nn::layernorm(x.data(), gain.data(), bias.data(), y.data(), mean.data(),
                rstd.data(), m, n);
  nn::Vec dx(m * n, 0.0f), dgain(n, 0.0f), dbias(n, 0.0f);
  nn::layernorm_backward(x.data(), gain.data(), mean.data(), rstd.data(),
                         dy.data(), dx.data(), dgain.data(), dbias.data(), m,
                         n);
  for (int i = 0; i < m * n; ++i)
    expect_close(numeric_grad(loss, x[i], 1e-3f), dx[i], 2e-2, "ln dx");
  for (int j = 0; j < n; ++j) {
    expect_close(numeric_grad(loss, gain[j], 1e-3f), dgain[j], 1e-2,
                 "ln dgain");
    expect_close(numeric_grad(loss, bias[j], 1e-3f), dbias[j], 1e-2,
                 "ln dbias");
  }
}

// --- softmax ---------------------------------------------------------------------

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(6);
  const int m = 3, n = 7;
  nn::Vec x = random_vec(rng, m * n, 2.0f);
  nn::Vec y(m * n);
  nn::softmax(x.data(), y.data(), m, n);
  for (int i = 0; i < m; ++i) {
    double s = 0;
    for (int j = 0; j < n; ++j) {
      EXPECT_GT(y[i * n + j], 0.0f);
      s += y[i * n + j];
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxStableForLargeInputs) {
  float x[] = {1000.0f, 1001.0f};
  float y[2];
  nn::softmax(x, y, 1, 2);
  EXPECT_FALSE(std::isnan(y[0]));
  EXPECT_NEAR(y[0] + y[1], 1.0, 1e-5);
  EXPECT_GT(y[1], y[0]);
}

TEST(Ops, SoftmaxGradcheck) {
  Rng rng(7);
  const int n = 5;
  nn::Vec x = random_vec(rng, n);
  nn::Vec dy = random_vec(rng, n);
  auto loss = [&] {
    nn::Vec y(n);
    nn::softmax(x.data(), y.data(), 1, n);
    double s = 0;
    for (int i = 0; i < n; ++i) s += y[i] * dy[i];
    return s;
  };
  nn::Vec y(n), dx(n, 0.0f);
  nn::softmax(x.data(), y.data(), 1, n);
  nn::softmax_backward(y.data(), dy.data(), dx.data(), 1, n);
  for (int i = 0; i < n; ++i)
    expect_close(numeric_grad(loss, x[i], 1e-3f), dx[i], 2e-2, "softmax dx");
}

// --- rotary ----------------------------------------------------------------------

TEST(Ops, RotaryPreservesNorm) {
  Rng rng(8);
  const int t = 4, dim = 8;
  nn::Vec x = random_vec(rng, t * dim);
  nn::Vec rotated = x;
  nn::rotary(rotated.data(), t, dim, dim, 0);
  for (int i = 0; i < t; ++i) {
    double n0 = 0, n1 = 0;
    for (int j = 0; j < dim; ++j) {
      n0 += x[i * dim + j] * x[i * dim + j];
      n1 += rotated[i * dim + j] * rotated[i * dim + j];
    }
    EXPECT_NEAR(n0, n1, 1e-3);
  }
}

TEST(Ops, RotaryPositionZeroIsIdentity) {
  Rng rng(9);
  nn::Vec x = random_vec(rng, 8);
  nn::Vec r = x;
  nn::rotary(r.data(), 1, 8, 8, 0);
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(r[i], x[i], 1e-6);
}

TEST(Ops, RotaryBackwardIsInverse) {
  Rng rng(10);
  const int t = 3, dim = 8;
  nn::Vec x = random_vec(rng, t * dim);
  nn::Vec y = x;
  nn::rotary(y.data(), t, dim, dim, 5);
  nn::rotary_backward(y.data(), t, dim, dim, 5);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-5);
}

TEST(Ops, RotaryDependsOnAbsolutePosition) {
  nn::Vec x = {1, 0, 0, 0};
  nn::Vec a = x, b = x;
  nn::rotary(a.data(), 1, 4, 4, 1);
  nn::rotary(b.data(), 1, 4, 4, 2);
  bool differs = false;
  for (int i = 0; i < 4; ++i) differs |= std::abs(a[i] - b[i]) > 1e-6;
  EXPECT_TRUE(differs);
}

TEST(Ops, RotaryPartialDimLeavesTailUntouched) {
  Rng rng(11);
  nn::Vec x = random_vec(rng, 8);
  nn::Vec r = x;
  nn::rotary(r.data(), 1, 8, 4, 3);
  for (int i = 4; i < 8; ++i) EXPECT_FLOAT_EQ(r[i], x[i]);
}

// --- cross entropy -----------------------------------------------------------------

TEST(Ops, CrossEntropyUniformLogits) {
  const int v = 4;
  nn::Vec logits(v, 0.0f);
  std::int32_t target = 2;
  nn::Vec dlogits(v);
  float loss = nn::cross_entropy(logits.data(), &target, 1, v, -1,
                                 dlogits.data());
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5);
  EXPECT_NEAR(dlogits[2], 0.25f - 1.0f, 1e-5);
  EXPECT_NEAR(dlogits[0], 0.25f, 1e-5);
}

TEST(Ops, CrossEntropyIgnoreIndex) {
  const int v = 3;
  nn::Vec logits = {0, 0, 5, 1, 1, 1};
  std::int32_t targets[] = {2, -1};
  nn::Vec dlogits(6);
  float loss = nn::cross_entropy(logits.data(), targets, 2, v, -1,
                                 dlogits.data());
  EXPECT_GT(loss, 0.0f);
  // Ignored row has zero gradient.
  EXPECT_FLOAT_EQ(dlogits[3], 0.0f);
  EXPECT_FLOAT_EQ(dlogits[4], 0.0f);
  EXPECT_FLOAT_EQ(dlogits[5], 0.0f);
}

TEST(Ops, CrossEntropyAllIgnored) {
  nn::Vec logits = {1, 2};
  std::int32_t target = -1;
  nn::Vec dlogits(2, 9.0f);
  float loss = nn::cross_entropy(logits.data(), &target, 1, 2, -1,
                                 dlogits.data());
  EXPECT_FLOAT_EQ(loss, 0.0f);
  EXPECT_FLOAT_EQ(dlogits[0], 0.0f);
}

TEST(Ops, CrossEntropyGradcheck) {
  Rng rng(12);
  const int rows = 2, v = 5;
  nn::Vec logits = random_vec(rng, rows * v);
  std::int32_t targets[] = {1, 4};
  auto loss = [&] {
    nn::Vec d(rows * v);
    return static_cast<double>(
        nn::cross_entropy(logits.data(), targets, rows, v, -1, d.data()));
  };
  nn::Vec dlogits(rows * v);
  nn::cross_entropy(logits.data(), targets, rows, v, -1, dlogits.data());
  for (int i = 0; i < rows * v; ++i)
    expect_close(numeric_grad(loss, logits[i], 1e-3f), dlogits[i], 2e-2,
                 "ce dlogits");
}

// --- embedding -----------------------------------------------------------------------

TEST(Ops, EmbeddingGatherScatter) {
  nn::Vec table = {1, 2, 3, 4, 5, 6};  // 3 tokens x dim 2
  std::int32_t ids[] = {2, 0, 2};
  nn::Vec out(6);
  nn::embedding(table.data(), ids, out.data(), 3, 2);
  EXPECT_FLOAT_EQ(out[0], 5);
  EXPECT_FLOAT_EQ(out[2], 1);
  nn::Vec dout = {1, 1, 10, 10, 100, 100};
  nn::Vec dtable(6, 0.0f);
  nn::embedding_backward(ids, dout.data(), dtable.data(), 3, 2);
  EXPECT_FLOAT_EQ(dtable[0], 10);   // from second row
  EXPECT_FLOAT_EQ(dtable[4], 101);  // rows 0 and 2 both hit token 2
}

// --- optimizer / schedule ----------------------------------------------------------------

TEST(AdamW, ConvergesOnQuadratic) {
  // minimize (w - 3)^2
  nn::Param p(1);
  p.w[0] = 0.0f;
  nn::AdamWConfig cfg;
  cfg.weight_decay = 0.0f;
  nn::AdamW opt(cfg);
  for (int i = 0; i < 2000; ++i) {
    p.g[0] = 2.0f * (p.w[0] - 3.0f);
    opt.begin_step();
    opt.step_param(p, 0.01f, false);
  }
  EXPECT_NEAR(p.w[0], 3.0f, 1e-2);
}

TEST(AdamW, WeightDecayShrinksWeights) {
  nn::Param p(1);
  p.w[0] = 1.0f;
  nn::AdamWConfig cfg;
  cfg.weight_decay = 0.1f;
  nn::AdamW opt(cfg);
  for (int i = 0; i < 100; ++i) {
    p.g[0] = 0.0f;  // no loss gradient: decay only
    opt.begin_step();
    opt.step_param(p, 0.01f, true);
  }
  EXPECT_LT(p.w[0], 1.0f);
  EXPECT_GT(p.w[0], 0.0f);
}

TEST(AdamW, ClipGradNorm) {
  nn::Param p(2);
  p.g = {3.0f, 4.0f};  // norm 5
  std::vector<nn::Param*> params = {&p};
  float norm = nn::clip_grad_norm(params, 1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(p.g[0], 0.6f, 1e-5);
  EXPECT_NEAR(p.g[1], 0.8f, 1e-5);
  // Under the limit: untouched.
  p.g = {0.3f, 0.4f};
  nn::clip_grad_norm(params, 1.0f);
  EXPECT_NEAR(p.g[0], 0.3f, 1e-6);
}

TEST(Schedule, WarmupThenLinearDecay) {
  nn::LrSchedule sched;
  sched.base_lr = 1.0f;
  sched.warmup_steps = 10;
  sched.total_steps = 110;
  sched.decay = nn::DecayKind::Linear;
  EXPECT_LT(sched.at(0), 0.2f);
  EXPECT_NEAR(sched.at(9), 1.0f, 1e-5);
  EXPECT_GT(sched.at(10), sched.at(60));
  EXPECT_NEAR(sched.at(110), 0.0f, 1e-5);
}

TEST(Schedule, CosineDecay) {
  nn::LrSchedule sched;
  sched.base_lr = 1.0f;
  sched.warmup_steps = 0;
  sched.total_steps = 100;
  sched.decay = nn::DecayKind::Cosine;
  EXPECT_NEAR(sched.at(0), 1.0f, 1e-4);
  EXPECT_NEAR(sched.at(50), 0.5f, 1e-2);
  EXPECT_NEAR(sched.at(100), 0.0f, 1e-5);
  // Cosine is above linear early on.
  nn::LrSchedule lin = sched;
  lin.decay = nn::DecayKind::Linear;
  EXPECT_GT(sched.at(20), lin.at(20));
}

TEST(Schedule, MinRatioFloor) {
  nn::LrSchedule sched;
  sched.base_lr = 1.0f;
  sched.total_steps = 10;
  sched.min_ratio = 0.1f;
  EXPECT_NEAR(sched.at(10), 0.1f, 1e-5);
  EXPECT_NEAR(sched.at(10000), 0.1f, 1e-5);
}
