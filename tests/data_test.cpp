#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ansible/catalog.hpp"
#include "ansible/freeform.hpp"
#include "ansible/linter.hpp"
#include "ansible/model.hpp"
#include "data/ansible_gen.hpp"
#include "data/dataset.hpp"
#include "data/dedup.hpp"
#include "data/generic_yaml.hpp"
#include "data/packing.hpp"
#include "data/sources.hpp"
#include "data/textgen.hpp"
#include "util/rng.hpp"
#include "yaml/parse.hpp"

namespace wa = wisdom::ansible;
namespace wd = wisdom::data;
namespace wt = wisdom::text;
namespace wy = wisdom::yaml;
using wisdom::util::Rng;

// --- ansible generator --------------------------------------------------------

TEST(AnsibleGen, TasksAreValidYaml) {
  wd::AnsibleGenerator gen(Rng{1});
  for (int i = 0; i < 200; ++i) {
    std::string text = gen.role_tasks_text(3);
    EXPECT_TRUE(wy::is_valid_yaml(text)) << text;
  }
}

TEST(AnsibleGen, TasksHaveNameFirst) {
  wd::AnsibleGenerator gen(Rng{2});
  for (int i = 0; i < 100; ++i) {
    wy::Node task = gen.task();
    ASSERT_TRUE(task.is_map());
    ASSERT_GE(task.size(), 2u);
    EXPECT_EQ(task.entries()[0].first, "name");
    EXPECT_TRUE(task.entries()[0].second.is_str());
    EXPECT_FALSE(task.entries()[0].second.as_str().empty());
  }
}

TEST(AnsibleGen, CleanStyleIsSchemaCorrect) {
  // Galaxy-profile tasks (FQCN, no legacy args) must lint clean — they are
  // the "good quality files created and vetted by the community".
  wd::AnsibleGenerator gen(Rng{3});
  wd::TaskGenOptions opts;
  opts.short_name_prob = 0.0;
  opts.old_style_prob = 0.0;
  int clean = 0;
  const int total = 200;
  for (int i = 0; i < total; ++i) {
    std::string text = gen.role_tasks_text(2, opts);
    if (wa::lint_text(text).ok()) ++clean;
  }
  EXPECT_GE(clean, total * 95 / 100);
}

TEST(AnsibleGen, OldStyleProbabilityProducesLegacyArgs) {
  wd::AnsibleGenerator gen(Rng{4});
  wd::TaskGenOptions opts;
  opts.old_style_prob = 1.0;
  opts.keyword_prob = 0.0;
  int old_style = 0;
  for (int i = 0; i < 100; ++i) {
    wy::Node task = gen.task(opts);
    wa::Task parsed = wa::Task::from_node(task);
    if (parsed.args.is_str() &&
        wa::looks_like_kv_args(parsed.args.as_str()))
      ++old_style;
  }
  // Free-form/no-arg modules cannot be converted; most others must be.
  EXPECT_GT(old_style, 40);
}

TEST(AnsibleGen, ModuleDistributionIsZipfian) {
  wd::AnsibleGenerator gen(Rng{5});
  std::map<std::string, int> counts;
  for (int i = 0; i < 2000; ++i) {
    wy::Node task = gen.task();
    counts[wa::Task::from_node(task).module]++;
  }
  // Many distinct modules, but the head dominates.
  EXPECT_GT(counts.size(), 25u);
  int max_count = 0;
  for (const auto& [mod, count] : counts) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 2000 / 25);
}

TEST(AnsibleGen, PlaybookStructure) {
  wd::AnsibleGenerator gen(Rng{6});
  for (int i = 0; i < 50; ++i) {
    wy::Node doc = gen.playbook(2);
    ASSERT_TRUE(doc.is_seq());
    ASSERT_EQ(doc.size(), 1u);
    const wy::Node& play = doc.items()[0];
    EXPECT_TRUE(play.has("name"));
    EXPECT_TRUE(play.has("hosts"));
    ASSERT_TRUE(play.has("tasks"));
    EXPECT_EQ(play.find("tasks")->size(), 2u);
  }
}

TEST(AnsibleGen, NamesCorrelateWithModules) {
  // The learnable signal: package installs mention the package name.
  wd::AnsibleGenerator gen(Rng{7});
  int checked = 0;
  for (int i = 0; i < 500 && checked < 20; ++i) {
    wy::Node task = gen.task();
    wa::Task parsed = wa::Task::from_node(task);
    std::string fqcn = wa::ModuleCatalog::instance().to_fqcn(parsed.module);
    if (fqcn != "ansible.builtin.apt" || !parsed.args.is_map()) continue;
    const wy::Node* pkg = parsed.args.find("name");
    if (!pkg || !pkg->is_str()) continue;
    EXPECT_NE(parsed.name.find(pkg->as_str()), std::string::npos)
        << parsed.name << " / " << pkg->as_str();
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(AnsibleGen, Deterministic) {
  wd::AnsibleGenerator a(Rng{42}), b(Rng{42});
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(a.role_tasks_text(3), b.role_tasks_text(3));
}

// --- generic yaml ----------------------------------------------------------------

TEST(GenericYaml, AllKindsParse) {
  wd::GenericYamlGenerator gen(Rng{8});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(wy::is_valid_yaml(gen.file_text()));
  }
}

TEST(GenericYaml, KubernetesShape) {
  wd::GenericYamlGenerator gen(Rng{9});
  wy::Node doc = gen.kubernetes_manifest();
  EXPECT_TRUE(doc.has("apiVersion"));
  EXPECT_TRUE(doc.has("kind"));
  EXPECT_TRUE(doc.has("metadata"));
  EXPECT_TRUE(doc.has("spec"));
}

TEST(GenericYaml, NotAnsible) {
  wd::GenericYamlGenerator gen(Rng{10});
  for (int i = 0; i < 30; ++i) {
    auto doc = wy::parse_document(gen.file_text());
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE(wisdom::ansible::looks_like_playbook(*doc));
  }
}

// --- text generators -----------------------------------------------------------------

TEST(TextGen, NlDocumentsLookLikeProse) {
  wd::NlTextGenerator gen(Rng{11});
  std::string doc = gen.document();
  EXPECT_GT(doc.size(), 40u);
  EXPECT_NE(doc.find(". "), std::string::npos);
  EXPECT_EQ(doc.find(":"), std::string::npos);  // no YAML-ish content
}

TEST(TextGen, CodeDocumentsLookLikeCode) {
  wd::CodeTextGenerator gen(Rng{12});
  bool saw_python = false, saw_c = false;
  for (int i = 0; i < 50; ++i) {
    std::string doc = gen.document();
    if (doc.find("def ") != std::string::npos) saw_python = true;
    if (doc.find("int ") != std::string::npos) saw_c = true;
  }
  EXPECT_TRUE(saw_python);
  EXPECT_TRUE(saw_c);
}

// --- sources / Table I -------------------------------------------------------------

TEST(Sources, TableOneShape) {
  auto sources = wd::table1_sources();
  ASSERT_EQ(sources.size(), 4u);
  // Paper counts, exact.
  EXPECT_EQ(sources[0].paper_file_count, 112'000u);   // Galaxy
  EXPECT_EQ(sources[1].paper_file_count, 64'000u);    // GitLab
  EXPECT_EQ(sources[2].paper_file_count, 1'100'000u); // GH+GBQ Ansible
  EXPECT_EQ(sources[3].paper_file_count, 2'200'000u); // GH+GBQ Generic
  EXPECT_STREQ(sources[0].usage, "FT");
  EXPECT_STREQ(sources[1].usage, "PT");
  // Scaled pre-training counts preserve the ordering generic > ansible.
  EXPECT_GT(sources[3].scaled_file_count, sources[2].scaled_file_count);
}

TEST(Sources, BuildsRequestedCounts) {
  for (const auto& spec : wd::table1_sources()) {
    auto files = wd::build_source(spec, 123);
    EXPECT_EQ(files.size(), spec.scaled_file_count) << spec.label;
    // Spot-check validity of a few files.
    for (std::size_t i = 0; i < std::min<std::size_t>(files.size(), 10); ++i)
      EXPECT_TRUE(wy::is_valid_yaml(files[i].text));
  }
}

TEST(Sources, GenericSourceIsNotAnsibleTagged) {
  auto generic = wd::build_source(wd::table1_sources()[3], 1);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(generic[i].ansible);
  auto galaxy = wd::build_source(wd::table1_sources()[0], 1);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_TRUE(galaxy[i].ansible);
}

TEST(Sources, DeterministicBySeed) {
  auto a = wd::build_source(wd::table1_sources()[0], 7);
  auto b = wd::build_source(wd::table1_sources()[0], 7);
  auto c = wd::build_source(wd::table1_sources()[0], 8);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].text, b[0].text);
  EXPECT_NE(a[0].text, c[0].text);
}

TEST(Sources, BundlesNonEmpty) {
  EXPECT_GT(wd::ansible_pretraining_corpus(1).total_bytes(), 50'000u);
  EXPECT_GT(wd::generic_yaml_corpus(1).total_bytes(), 100'000u);
  EXPECT_GT(wd::galaxy_corpus(1).total_bytes(), 50'000u);
  EXPECT_GT(wd::nl_corpus(1).total_bytes(), 50'000u);
  EXPECT_GT(wd::code_corpus(1).total_bytes(), 50'000u);
}

// --- dedup ------------------------------------------------------------------------

TEST(Dedup, RemovesExactDuplicatesOnly) {
  std::vector<wd::CorpusFile> files;
  files.push_back({"a: 1\n", wd::SourceId::Galaxy, true});
  files.push_back({"a: 1\n", wd::SourceId::GitLab, true});
  files.push_back({"a: 2\n", wd::SourceId::Galaxy, true});
  wd::DedupStats stats;
  auto kept = wd::dedup_files(std::move(files), &stats);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_EQ(stats.removed(), 1u);
  // First occurrence wins.
  EXPECT_EQ(kept[0].source, wd::SourceId::Galaxy);
}

TEST(Dedup, Strings) {
  auto kept = wd::dedup_strings({"x", "y", "x", "x"});
  EXPECT_EQ(kept.size(), 2u);
}

// --- fine-tuning sample extraction -----------------------------------------------------

TEST(Dataset, ExtractFromRole) {
  std::string role =
      "---\n"
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: present\n"
      "- name: Start nginx\n"
      "  ansible.builtin.service:\n"
      "    name: nginx\n"
      "    state: started\n"
      "- name: Check health\n"
      "  ansible.builtin.uri:\n"
      "    url: https://example.com/health\n";
  auto samples = wd::extract_samples(role);
  ASSERT_EQ(samples.size(), 3u);  // 1x NL->T + 2x T+NL->T
  EXPECT_EQ(samples[0].type, wd::GenerationType::NlToTask);
  EXPECT_EQ(samples[0].prompt, "Install nginx");
  EXPECT_TRUE(samples[0].context.empty());
  EXPECT_EQ(samples[0].input_line, "- name: Install nginx\n");
  EXPECT_NE(samples[0].target_body.find("ansible.builtin.apt"),
            std::string::npos);

  EXPECT_EQ(samples[1].type, wd::GenerationType::TNlToTask);
  EXPECT_EQ(samples[1].prompt, "Start nginx");
  EXPECT_NE(samples[1].context.find("Install nginx"), std::string::npos);

  EXPECT_EQ(samples[2].type, wd::GenerationType::TNlToTask);
  // Context holds both previous tasks.
  EXPECT_NE(samples[2].context.find("Start nginx"), std::string::npos);
}

TEST(Dataset, ExtractFromSmallPlaybook) {
  std::string playbook =
      "---\n"
      "- name: Setup web\n"
      "  hosts: web\n"
      "  tasks:\n"
      "    - name: Install nginx\n"
      "      ansible.builtin.apt:\n"
      "        name: nginx\n"
      "        state: present\n";
  auto samples = wd::extract_samples(playbook);
  ASSERT_EQ(samples.size(), 1u);  // NL->PB only (single task)
  EXPECT_EQ(samples[0].type, wd::GenerationType::NlToPlaybook);
  // Combined prompt: play name + task names.
  EXPECT_EQ(samples[0].prompt, "Setup web. Install nginx");
  EXPECT_NE(samples[0].target_body.find("hosts: web"), std::string::npos);
}

TEST(Dataset, ExtractFromLargePlaybook) {
  std::string playbook =
      "---\n"
      "- name: Setup\n"
      "  hosts: all\n"
      "  tasks:\n"
      "    - name: T1\n"
      "      ansible.builtin.ping:\n"
      "    - name: T2\n"
      "      ansible.builtin.setup:\n"
      "    - name: T3\n"
      "      ansible.builtin.debug:\n"
      "        msg: done\n";
  auto samples = wd::extract_samples(playbook);
  // 3 tasks: no NL->PB (too large), PB+NL->T for k=1,2.
  ASSERT_EQ(samples.size(), 2u);
  for (const auto& s : samples)
    EXPECT_EQ(s.type, wd::GenerationType::PbNlToTask);
  // Context of the first sample holds the header and exactly one task.
  EXPECT_NE(samples[0].context.find("hosts: all"), std::string::npos);
  EXPECT_NE(samples[0].context.find("T1"), std::string::npos);
  EXPECT_EQ(samples[0].context.find("T2"), std::string::npos);
  EXPECT_EQ(samples[0].input_line, "    - name: T2\n");
  // Target body is indented as a playbook task.
  EXPECT_NE(samples[0].target_body.find("      ansible.builtin.setup:"),
            std::string::npos);
}

TEST(Dataset, TargetsParseStandalone) {
  // full_target must be valid YAML on its own for the metrics to consume.
  auto galaxy = wd::galaxy_corpus(3);
  auto samples = wd::extract_corpus_samples(galaxy.files);
  ASSERT_GT(samples.size(), 500u);
  int checked = 0;
  for (const auto& s : samples) {
    if (++checked > 300) break;
    EXPECT_TRUE(wy::is_valid_yaml(s.full_target()))
        << wd::generation_type_label(s.type) << "\n"
        << s.full_target();
    if (!s.context.empty()) {
      EXPECT_TRUE(wy::is_valid_yaml(s.context));
    }
  }
}

TEST(Dataset, UnparseableOrUnnamedFilesYieldNothing) {
  EXPECT_TRUE(wd::extract_samples("key: 'broken\n").empty());
  EXPECT_TRUE(wd::extract_samples("- ansible.builtin.ping:\n").empty());
  EXPECT_TRUE(wd::extract_samples("scalar\n").empty());
}

TEST(Dataset, TypeDistributionMatchesPaperShape) {
  // Table VI: T+NL->T dominates, then NL->T, then PB+NL->T, NL->PB rare.
  auto galaxy = wd::galaxy_corpus(5);
  auto samples = wd::extract_corpus_samples(galaxy.files);
  std::map<wd::GenerationType, int> counts;
  for (const auto& s : samples) counts[s.type]++;
  EXPECT_GT(counts[wd::GenerationType::TNlToTask],
            counts[wd::GenerationType::NlToTask]);
  EXPECT_GT(counts[wd::GenerationType::NlToTask],
            counts[wd::GenerationType::NlToPlaybook]);
  EXPECT_GT(counts[wd::GenerationType::PbNlToTask], 0);
  EXPECT_GT(counts[wd::GenerationType::NlToPlaybook], 0);
}

TEST(Dataset, SplitsAreDisjointAndSized) {
  auto galaxy = wd::galaxy_corpus(7);
  auto samples = wd::extract_corpus_samples(galaxy.files);
  std::size_t total = samples.size();
  auto splits = wd::split_dataset(std::move(samples), 99);
  EXPECT_EQ(splits.train.size() + splits.valid.size() + splits.test.size(),
            total);
  EXPECT_NEAR(static_cast<double>(splits.train.size()) / total, 0.8, 0.02);
  EXPECT_NEAR(static_cast<double>(splits.valid.size()) / total, 0.1, 0.02);
  std::set<std::string> train_keys;
  for (const auto& s : splits.train)
    train_keys.insert(s.context + s.input_line + s.target_body);
  for (const auto& s : splits.test) {
    EXPECT_EQ(train_keys.count(s.context + s.input_line + s.target_body), 0u);
  }
}

TEST(Dataset, PromptFormats) {
  wd::FtSample sample;
  sample.type = wd::GenerationType::TNlToTask;
  sample.context = "- name: Prev\n  ansible.builtin.ping:\n";
  sample.prompt = "Install nginx";
  sample.input_line = "- name: Install nginx\n";
  sample.target_body = "  ansible.builtin.apt:\n    name: nginx\n";

  std::string name_style =
      wd::format_input(sample, wd::PromptFormat::NameCompletion);
  EXPECT_EQ(name_style, sample.context + sample.input_line);

  std::string prefix_style =
      wd::format_input(sample, wd::PromptFormat::Prefix);
  EXPECT_NE(prefix_style.find("### context code"), std::string::npos);
  EXPECT_NE(prefix_style.find("### prompt"), std::string::npos);
  // Both end with the name line so decoding starts at the body.
  EXPECT_TRUE(prefix_style.ends_with(sample.input_line));

  EXPECT_EQ(wd::format_training_text(sample, wd::PromptFormat::NameCompletion),
            name_style + sample.target_body);
}

// --- packing -----------------------------------------------------------------------

TEST(Packing, WindowsCoverStream) {
  auto tok = wt::BpeTokenizer::train("abc def ghi jkl\n", 270);
  std::vector<std::string> files = {"abc def\n", "ghi jkl\n"};
  auto set = wd::pack_files(tok, files, 8);
  ASSERT_GT(set.count(), 0u);
  for (std::size_t i = 0; i < set.count(); ++i) {
    EXPECT_EQ(set.input(i).size(), 8u);
    EXPECT_EQ(set.target(i).size(), 8u);
  }
}

TEST(Packing, TargetsAreShiftedInputs) {
  auto tok = wt::BpeTokenizer::train("x y z w\n", 265);
  std::vector<std::string> files = {"x y z w\n"};
  auto set = wd::pack_files(tok, files, 4);
  ASSERT_GE(set.count(), 1u);
  auto in0 = set.input(0);
  auto tg0 = set.target(0);
  // target[j] == input[j+1] within the stream.
  EXPECT_EQ(tg0[0], in0[1]);
  EXPECT_EQ(tg0[1], in0[2]);
}

TEST(Packing, SeparatorBetweenFiles) {
  auto tok = wt::BpeTokenizer::train("aa bb\n", 262);
  std::vector<std::string> files = {"aa\n", "bb\n"};
  auto set = wd::pack_files(tok, files, 16);
  int separators = 0;
  for (auto id : set.inputs)
    if (id == wt::BpeTokenizer::kEndOfText) ++separators;
  EXPECT_GE(separators, 1);  // separator between (and after) files
}

TEST(Packing, PaddingIsMasked) {
  auto tok = wt::BpeTokenizer::train("q r s\n", 261);
  std::vector<std::string> files = {"q\n"};
  auto set = wd::pack_files(tok, files, 16);
  ASSERT_EQ(set.count(), 1u);
  auto in0 = set.input(0);
  auto tg0 = set.target(0);
  bool saw_pad = false;
  for (std::size_t j = 0; j < 16; ++j) {
    if (in0[j] == wt::BpeTokenizer::kPad) {
      saw_pad = true;
      EXPECT_EQ(tg0[j], -1);
    }
  }
  EXPECT_TRUE(saw_pad);
}

TEST(Packing, OversizedSampleLeftTruncated) {
  auto tok = wt::BpeTokenizer::train("m n o p\n", 265);
  std::string big;
  for (int i = 0; i < 50; ++i) big += "m n o p\n";
  big += "FINAL";
  std::vector<std::string> samples = {big};
  auto set = wd::pack_samples(tok, samples, 16);
  // The kept suffix must contain the end of the sample.
  std::string decoded;
  for (std::size_t i = 0; i < set.count(); ++i) {
    auto in = set.input(i);
    decoded += tok.decode({in.data(), in.size()});
  }
  EXPECT_NE(decoded.find("FINAL"), std::string::npos);
  EXPECT_LE(set.count(), 2u);
}

TEST(Packing, EmptyInput) {
  auto tok = wt::BpeTokenizer::train("a\n", 259);
  std::vector<std::string> none;
  auto set = wd::pack_files(tok, none, 8);
  EXPECT_EQ(set.count(), 0u);
}
