#include <gtest/gtest.h>

#include "ansible/catalog.hpp"
#include "ansible/freeform.hpp"
#include "ansible/keywords.hpp"
#include "ansible/model.hpp"
#include "yaml/parse.hpp"

namespace wa = wisdom::ansible;
namespace wy = wisdom::yaml;

namespace {
const wa::ModuleCatalog& catalog() { return wa::ModuleCatalog::instance(); }

wy::Node must_parse(std::string_view text) {
  wy::ParseError err;
  auto doc = wy::parse_document(text, &err);
  EXPECT_TRUE(doc.has_value()) << err.to_string();
  return doc ? *doc : wy::Node::null();
}
}  // namespace

// --- catalog -----------------------------------------------------------------

TEST(Catalog, HasCoreBuiltins) {
  for (const char* name :
       {"apt", "yum", "dnf", "package", "copy", "template", "file",
        "lineinfile", "service", "systemd", "command", "shell", "user",
        "group", "git", "get_url", "uri", "debug", "set_fact"}) {
    EXPECT_NE(catalog().by_short_name(name), nullptr) << name;
  }
  EXPECT_GE(catalog().all().size(), 70u);
}

TEST(Catalog, FqcnResolution) {
  EXPECT_EQ(catalog().to_fqcn("copy"), "ansible.builtin.copy");
  EXPECT_EQ(catalog().to_fqcn("ansible.builtin.copy"), "ansible.builtin.copy");
  EXPECT_EQ(catalog().to_fqcn("vyos_config"), "vyos.vyos.vyos_config");
  EXPECT_EQ(catalog().to_fqcn("docker_container"),
            "community.docker.docker_container");
  // Unknown names pass through unchanged.
  EXPECT_EQ(catalog().to_fqcn("my.custom.module"), "my.custom.module");
}

TEST(Catalog, ShortNamesAreUnique) {
  std::set<std::string> names;
  for (const auto& m : catalog().all()) {
    EXPECT_TRUE(names.insert(m.short_name).second)
        << "duplicate short name " << m.short_name;
  }
}

TEST(Catalog, SameModule) {
  EXPECT_TRUE(catalog().same_module("copy", "ansible.builtin.copy"));
  EXPECT_FALSE(catalog().same_module("copy", "template"));
}

TEST(Catalog, NearEquivalenceClassesFromPaper) {
  // "command / shell, copy / template, package / apt, dnf, yum"
  EXPECT_TRUE(catalog().near_equivalent("command", "shell"));
  EXPECT_TRUE(catalog().near_equivalent("copy", "template"));
  EXPECT_TRUE(catalog().near_equivalent("package", "apt"));
  EXPECT_TRUE(catalog().near_equivalent("apt", "yum"));
  EXPECT_TRUE(catalog().near_equivalent("dnf", "yum"));
  EXPECT_TRUE(
      catalog().near_equivalent("ansible.builtin.apt", "ansible.builtin.dnf"));
  EXPECT_FALSE(catalog().near_equivalent("copy", "command"));
  EXPECT_FALSE(catalog().near_equivalent("apt", "apt"));  // same, not "near"
  EXPECT_FALSE(catalog().near_equivalent("apt", "no_such_module"));
}

TEST(Catalog, ParamSpecs) {
  const wa::ModuleSpec* apt = catalog().by_short_name("apt");
  ASSERT_NE(apt, nullptr);
  EXPECT_TRUE(apt->has_param("name"));
  EXPECT_TRUE(apt->has_param("state"));
  const wa::ParamSpec* state = apt->param("state");
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->type, wa::ParamType::Choice);
  EXPECT_FALSE(state->choices.empty());
  EXPECT_FALSE(apt->has_param("bogus"));
}

TEST(Catalog, FreeFormFlags) {
  EXPECT_TRUE(catalog().by_short_name("command")->free_form);
  EXPECT_TRUE(catalog().by_short_name("shell")->free_form);
  EXPECT_TRUE(catalog().by_short_name("meta")->free_form);
  EXPECT_FALSE(catalog().by_short_name("apt")->free_form);
  EXPECT_TRUE(catalog().by_short_name("set_fact")->arbitrary_params);
}

// --- keywords ------------------------------------------------------------------

TEST(Keywords, TaskKeywordLookup) {
  EXPECT_NE(wa::find_task_keyword("when"), nullptr);
  EXPECT_NE(wa::find_task_keyword("become"), nullptr);
  EXPECT_NE(wa::find_task_keyword("register"), nullptr);
  EXPECT_EQ(wa::find_task_keyword("hosts"), nullptr);  // play-only
  EXPECT_EQ(wa::find_task_keyword("apt"), nullptr);    // module
}

TEST(Keywords, PlayKeywordLookup) {
  EXPECT_NE(wa::find_play_keyword("hosts"), nullptr);
  EXPECT_NE(wa::find_play_keyword("gather_facts"), nullptr);
  EXPECT_NE(wa::find_play_keyword("roles"), nullptr);
  EXPECT_EQ(wa::find_play_keyword("loop"), nullptr);  // task-only
}

TEST(Keywords, BlockKeys) {
  EXPECT_TRUE(wa::is_block_key("block"));
  EXPECT_TRUE(wa::is_block_key("rescue"));
  EXPECT_TRUE(wa::is_block_key("always"));
  EXPECT_FALSE(wa::is_block_key("tasks"));
}

// --- free-form k=v parsing -------------------------------------------------------

TEST(FreeForm, SimplePairs) {
  auto split = wa::parse_free_form("name=nginx state=present");
  EXPECT_TRUE(split.free_text.empty());
  ASSERT_EQ(split.params.size(), 2u);
  EXPECT_EQ(split.params.find("name")->as_str(), "nginx");
  EXPECT_EQ(split.params.find("state")->as_str(), "present");
}

TEST(FreeForm, QuotedValues) {
  auto split = wa::parse_free_form("dest=/etc/motd content='hello world'");
  EXPECT_EQ(split.params.find("content")->as_str(), "hello world");
}

TEST(FreeForm, ValueTypeResolution) {
  auto split = wa::parse_free_form("update_cache=yes cache_valid_time=3600");
  EXPECT_TRUE(split.params.find("update_cache")->as_bool());
  EXPECT_EQ(split.params.find("cache_valid_time")->as_int(), 3600);
  // Quoted values never resolve.
  auto q = wa::parse_free_form("v='yes'");
  EXPECT_TRUE(q.params.find("v")->is_str());
}

TEST(FreeForm, CommandTextIsNotSplit) {
  auto split = wa::parse_free_form("echo a=b c");
  EXPECT_EQ(split.free_text, "echo a=b c");
  EXPECT_EQ(split.params.size(), 0u);
}

TEST(FreeForm, LeadingPairsThenFreeText) {
  auto split = wa::parse_free_form("chdir=/tmp make all");
  EXPECT_EQ(split.params.find("chdir")->as_str(), "/tmp");
  EXPECT_EQ(split.free_text, "make all");
}

TEST(FreeForm, LooksLikeKvArgs) {
  EXPECT_TRUE(wa::looks_like_kv_args("name=nginx state=present"));
  EXPECT_FALSE(wa::looks_like_kv_args("systemctl restart nginx"));
  EXPECT_FALSE(wa::looks_like_kv_args(""));
}

// --- task / play model --------------------------------------------------------------

TEST(Model, TaskFromNodeClassifiesKeys) {
  wy::Node node = must_parse(
      "name: Install nginx\n"
      "ansible.builtin.apt:\n"
      "  name: nginx\n"
      "  state: present\n"
      "become: true\n"
      "when: ansible_os_family == 'Debian'\n");
  wa::Task task = wa::Task::from_node(node);
  EXPECT_EQ(task.name, "Install nginx");
  EXPECT_EQ(task.module, "ansible.builtin.apt");
  EXPECT_TRUE(task.args.is_map());
  ASSERT_EQ(task.keywords.size(), 2u);
  EXPECT_EQ(task.keywords[0].first, "become");
}

TEST(Model, TaskRoundTripPreservesOrder) {
  wy::Node node = must_parse(
      "name: t\n"
      "copy:\n"
      "  src: a\n"
      "  dest: b\n"
      "notify: restart nginx\n");
  wa::Task task = wa::Task::from_node(node);
  wy::Node back = task.to_node();
  EXPECT_EQ(back.entries()[0].first, "name");
  EXPECT_EQ(back.entries()[1].first, "copy");
  EXPECT_EQ(back.entries()[2].first, "notify");
}

TEST(Model, UnknownModuleStillDetected) {
  wy::Node node = must_parse("my_org.custom.widget:\n  size: 3\n");
  wa::Task task = wa::Task::from_node(node);
  EXPECT_EQ(task.module, "my_org.custom.widget");
}

TEST(Model, FreeFormTaskModule) {
  wy::Node node = must_parse(
      "name: Run it\n"
      "shell: systemctl restart nginx\n");
  wa::Task task = wa::Task::from_node(node);
  EXPECT_EQ(task.module, "shell");
  EXPECT_TRUE(task.args.is_str());
}

TEST(Model, PlaybookFromNode) {
  wy::Node node = must_parse(
      "- hosts: web\n"
      "  become: true\n"
      "  tasks:\n"
      "    - name: a\n"
      "      ping:\n"
      "    - name: b\n"
      "      debug:\n"
      "        msg: hi\n");
  auto pb = wa::Playbook::from_node(node);
  ASSERT_TRUE(pb.has_value());
  ASSERT_EQ(pb->plays.size(), 1u);
  EXPECT_EQ(pb->plays[0].tasks.size(), 2u);
  EXPECT_EQ(pb->plays[0].tasks[1].name, "b");
}

TEST(Model, PlaybookRejectsNonSequence) {
  EXPECT_FALSE(wa::Playbook::from_node(must_parse("key: value")).has_value());
}

TEST(Model, BlockDetection) {
  wy::Node block = must_parse(
      "name: grouped\n"
      "block:\n"
      "  - ping:\n");
  EXPECT_TRUE(wa::is_block(block));
  wy::Node task = must_parse("ping:\n");
  EXPECT_FALSE(wa::is_block(task));
}

TEST(Model, LooksLikePlaybook) {
  EXPECT_TRUE(wa::looks_like_playbook(must_parse(
      "- hosts: all\n  tasks:\n    - ping:\n")));
  // A bare task list is not a playbook.
  EXPECT_FALSE(wa::looks_like_playbook(must_parse(
      "- name: t\n  ping:\n")));
  EXPECT_FALSE(wa::looks_like_playbook(must_parse("- 1\n- 2\n")));
  EXPECT_FALSE(wa::looks_like_playbook(must_parse("k: v\n")));
}
