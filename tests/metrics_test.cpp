#include <gtest/gtest.h>

#include "metrics/aggregate.hpp"
#include "metrics/ansible_aware.hpp"
#include "metrics/bleu.hpp"
#include "metrics/exact_match.hpp"
#include "metrics/schema_correct.hpp"
#include "yaml/parse.hpp"

namespace wm = wisdom::metrics;
namespace wy = wisdom::yaml;

// --- BLEU ------------------------------------------------------------------

TEST(Bleu, IdenticalIsOne) {
  std::string text = "- name: x\n  ansible.builtin.apt:\n    name: nginx\n";
  EXPECT_NEAR(wm::sentence_bleu(text, text), 1.0, 1e-9);
}

TEST(Bleu, DisjointIsZero) {
  EXPECT_EQ(wm::sentence_bleu("alpha beta gamma delta", "uno dos tres cuatro"),
            0.0);
}

TEST(Bleu, PartialOverlapBetween) {
  double score = wm::sentence_bleu(
      "ansible.builtin.apt:\n  name: nginx\n  state: latest\n",
      "ansible.builtin.apt:\n  name: nginx\n  state: present\n");
  EXPECT_GT(score, 0.3);
  EXPECT_LT(score, 1.0);
}

TEST(Bleu, OrderMatters) {
  double in_order = wm::sentence_bleu("a b c d e f", "a b c d e f");
  double shuffled = wm::sentence_bleu("f e d c b a", "a b c d e f");
  EXPECT_GT(in_order, shuffled);
}

TEST(Bleu, BrevityPenaltyAppliesToShortCandidates) {
  // Unigram-perfect but half-length candidate must be penalized.
  double truncated = wm::sentence_bleu("a b c", "a b c d e f");
  double full = wm::sentence_bleu("a b c d e f", "a b c d e f");
  EXPECT_LT(truncated, full);
}

TEST(Bleu, EmptyCandidate) {
  EXPECT_EQ(wm::sentence_bleu("", "a b c"), 0.0);
  EXPECT_EQ(wm::sentence_bleu("a b c", ""), 0.0);
  EXPECT_EQ(wm::sentence_bleu("", ""), 1.0);
}

TEST(Bleu, CorpusAccumulatorPoolsCounts) {
  wm::BleuAccumulator acc;
  acc.add("a b c d", "a b c d");
  acc.add("x y z w", "x y z w");
  EXPECT_NEAR(acc.score(), 1.0, 1e-9);
  EXPECT_EQ(acc.sample_count(), 2u);

  wm::BleuAccumulator mixed;
  mixed.add("a b c d", "a b c d");
  mixed.add("p q r s", "totally different tokens here");
  EXPECT_GT(mixed.score(), 0.0);
  EXPECT_LT(mixed.score(), 1.0);
}

TEST(Bleu, EmptyAccumulator) {
  wm::BleuAccumulator acc;
  EXPECT_EQ(acc.score(), 0.0);
}

// --- Exact Match -----------------------------------------------------------

TEST(ExactMatch, FormattingInsensitive) {
  EXPECT_TRUE(wm::exact_match(
      "name: x\napt: {name: nginx, state: present}\n",
      "name: x\napt:\n  name: nginx\n  state: present\n"));
  EXPECT_TRUE(wm::exact_match("a: 'yes'\n", "a: \"yes\"\n"));
}

TEST(ExactMatch, ValueDifferenceBreaksMatch) {
  EXPECT_FALSE(wm::exact_match("a: 1\n", "a: 2\n"));
  EXPECT_FALSE(wm::exact_match("a: 'yes'\n", "a: yes\n"));  // str vs bool
}

TEST(ExactMatch, UnparseableFallsBackToLiteral) {
  EXPECT_TRUE(wm::exact_match("key: 'broken\n", "key: 'broken"));
  EXPECT_FALSE(wm::exact_match("key: 'broken\n", "key: fine\n"));
}

// --- Schema Correct ----------------------------------------------------------

TEST(SchemaCorrect, ValidTask) {
  EXPECT_TRUE(wm::schema_correct(
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: present\n"));
}

TEST(SchemaCorrect, InvalidYaml) {
  EXPECT_FALSE(wm::schema_correct("key: 'broken\n"));
}

TEST(SchemaCorrect, HistoricalFormRejected) {
  // The paper: "a sample with a perfect Exact Match score may have a Schema
  // Correct score of 0" — old-style args are valid Ansible, strict-schema
  // incorrect.
  std::string old_style = "- ansible.builtin.apt: name=nginx state=present\n";
  EXPECT_TRUE(wm::exact_match(old_style, old_style));
  EXPECT_FALSE(wm::schema_correct(old_style));
}

// --- Ansible Aware --------------------------------------------------------------

namespace {
double aware(std::string_view pred, std::string_view target) {
  return wm::ansible_aware_text(pred, target);
}

const std::string kTargetTask =
    "name: Install nginx\n"
    "ansible.builtin.apt:\n"
    "  name: nginx\n"
    "  state: present\n";
}  // namespace

TEST(AnsibleAware, PerfectMatch) {
  EXPECT_NEAR(aware(kTargetTask, kTargetTask), 1.0, 1e-9);
}

TEST(AnsibleAware, NameIsIgnored) {
  std::string renamed =
      "name: a totally different description\n"
      "ansible.builtin.apt:\n"
      "  name: nginx\n"
      "  state: present\n";
  EXPECT_NEAR(aware(renamed, kTargetTask), 1.0, 1e-9);
  // Missing name entirely also scores 1.
  std::string unnamed =
      "ansible.builtin.apt:\n  name: nginx\n  state: present\n";
  EXPECT_NEAR(aware(unnamed, kTargetTask), 1.0, 1e-9);
}

TEST(AnsibleAware, FqcnNormalization) {
  // Short name vs FQCN is not a difference: "copy is changed to
  // ansible.builtin.copy".
  std::string short_name = "apt:\n  name: nginx\n  state: present\n";
  EXPECT_NEAR(aware(short_name, kTargetTask), 1.0, 1e-9);
}

TEST(AnsibleAware, MissingParamScoresZeroForThatEntry) {
  std::string missing = "ansible.builtin.apt:\n  name: nginx\n";
  // Module pair: key 1.0; args: target has 2 entries, one matched fully
  // (avg(1,1)=1), one missing (0) -> args 0.5; pair avg(1, 0.5) = 0.75.
  EXPECT_NEAR(aware(missing, kTargetTask), 0.75, 1e-9);
}

TEST(AnsibleAware, InsertedParamsIgnored) {
  std::string inserted =
      "ansible.builtin.apt:\n"
      "  name: nginx\n"
      "  state: present\n"
      "  update_cache: true\n"
      "register: result\n";
  EXPECT_NEAR(aware(inserted, kTargetTask), 1.0, 1e-9);
}

TEST(AnsibleAware, WrongValuePartialCredit) {
  std::string wrong_state =
      "ansible.builtin.apt:\n  name: nginx\n  state: latest\n";
  // args: name entry avg(1,1)=1, state entry avg(1,0)=0.5 -> 0.75;
  // module pair avg(1, 0.75) = 0.875.
  EXPECT_NEAR(aware(wrong_state, kTargetTask), 0.875, 1e-9);
}

TEST(AnsibleAware, NearEquivalentModulePartialKeyScore) {
  std::string dnf = "ansible.builtin.dnf:\n  name: nginx\n  state: present\n";
  // key 0.5, args 1.0 -> pair 0.75.
  EXPECT_NEAR(aware(dnf, kTargetTask), 0.75, 1e-9);
  std::string shell_for_command = "shell: systemctl restart nginx\n";
  std::string command_target = "command: systemctl restart nginx\n";
  EXPECT_NEAR(aware(shell_for_command, command_target), 0.75, 1e-9);
}

TEST(AnsibleAware, UnrelatedModuleScoresZero) {
  std::string wrong = "ansible.builtin.service:\n  name: nginx\n";
  EXPECT_NEAR(aware(wrong, kTargetTask), 0.0, 1e-9);
}

TEST(AnsibleAware, OldStyleArgsNormalizedToDict) {
  // "convert the old k1=v1 k2=v2 syntax for module parameters into a dict"
  std::string old_style = "apt: name=nginx state=present\n";
  EXPECT_NEAR(aware(old_style, kTargetTask), 1.0, 1e-9);
  EXPECT_NEAR(aware(kTargetTask, old_style), 1.0, 1e-9);
}

TEST(AnsibleAware, KeywordsScored) {
  std::string target =
      "ansible.builtin.service:\n"
      "  name: nginx\n"
      "  state: started\n"
      "become: true\n";
  std::string missing_become =
      "ansible.builtin.service:\n  name: nginx\n  state: started\n";
  // Pairs: module (1.0) + become (0) -> 0.5.
  EXPECT_NEAR(aware(missing_become, target), 0.5, 1e-9);
  std::string wrong_become =
      "ansible.builtin.service:\n"
      "  name: nginx\n"
      "  state: started\n"
      "become: false\n";
  // become pair: key 1, value 0 -> 0.5; overall (1.0 + 0.5)/2 = 0.75.
  EXPECT_NEAR(aware(wrong_become, target), 0.75, 1e-9);
}

TEST(AnsibleAware, ListValuesMatchedByIndex) {
  std::string target =
      "vyos.vyos.vyos_config:\n"
      "  lines:\n"
      "    - set system host-name vyos\n"
      "    - set service ssh port 22\n";
  std::string half =
      "vyos.vyos.vyos_config:\n"
      "  lines:\n"
      "    - set system host-name vyos\n";
  // lines: item0 = 1, item1 missing = 0 -> 0.5; args = avg(1, 0.5)=0.75;
  // module pair avg(1, 0.75) = 0.875.
  EXPECT_NEAR(aware(half, target), 0.875, 1e-9);
}

TEST(AnsibleAware, ScalarQuotingDifferencesAreEqual) {
  EXPECT_NEAR(aware("file:\n  path: /tmp/x\n  mode: '0644'\n",
                    "file:\n  path: /tmp/x\n  mode: 0644\n"),
              1.0, 1e-9);
}

TEST(AnsibleAware, TaskListAveraged) {
  std::string target =
      "- name: a\n  ansible.builtin.ping:\n"
      "- name: b\n  ansible.builtin.debug:\n    msg: hi\n";
  std::string first_only = "- name: a\n  ansible.builtin.ping:\n";
  EXPECT_NEAR(aware(first_only, target), 0.5, 1e-9);
  EXPECT_NEAR(aware(target, target), 1.0, 1e-9);
}

TEST(AnsibleAware, PlaybookScoring) {
  std::string target =
      "- hosts: web\n"
      "  become: true\n"
      "  tasks:\n"
      "    - name: Install nginx\n"
      "      ansible.builtin.apt:\n"
      "        name: nginx\n"
      "        state: present\n";
  EXPECT_NEAR(aware(target, target), 1.0, 1e-9);
  std::string wrong_hosts =
      "- hosts: db\n"
      "  become: true\n"
      "  tasks:\n"
      "    - name: Install nginx\n"
      "      ansible.builtin.apt:\n"
      "        name: nginx\n"
      "        state: present\n";
  // hosts pair avg(1,0)=0.5; become 1; tasks 1 -> (0.5+1+1)/3.
  EXPECT_NEAR(aware(wrong_hosts, target), (0.5 + 1.0 + 1.0) / 3.0, 1e-9);
}

TEST(AnsibleAware, UnparseablePredictionZero) {
  EXPECT_EQ(aware("key: 'broken\n", kTargetTask), 0.0);
}

TEST(AnsibleAware, PredictionWrappedInListUnwrapped) {
  std::string wrapped =
      "- ansible.builtin.apt:\n    name: nginx\n    state: present\n";
  EXPECT_NEAR(aware(wrapped, kTargetTask), 1.0, 1e-9);
}

TEST(AnsibleAware, ScoreIsBoundedZeroOne) {
  const char* preds[] = {
      "ansible.builtin.apt:\n  name: nginx\n",
      "shell: ls\n",
      "x: 1\n",
      "- a\n- b\n",
      "[]",
  };
  for (const char* p : preds) {
    double s = aware(p, kTargetTask);
    EXPECT_GE(s, 0.0) << p;
    EXPECT_LE(s, 1.0) << p;
  }
}

// --- accumulator -------------------------------------------------------------

TEST(Aggregate, PerfectPredictions) {
  wm::MetricsAccumulator acc;
  acc.add(kTargetTask, kTargetTask);
  acc.add("- name: t\n  ansible.builtin.ping:\n",
          "- name: t\n  ansible.builtin.ping:\n");
  auto report = acc.report();
  EXPECT_EQ(report.count, 2u);
  EXPECT_NEAR(report.exact_match, 100.0, 1e-9);
  EXPECT_NEAR(report.bleu, 100.0, 1e-9);
  EXPECT_NEAR(report.ansible_aware, 100.0, 1e-9);
  EXPECT_NEAR(report.schema_correct, 100.0, 1e-9);
}

TEST(Aggregate, MixedPredictions) {
  wm::MetricsAccumulator acc;
  acc.add(kTargetTask, kTargetTask);
  acc.add("totally wrong ???", kTargetTask);
  auto report = acc.report();
  EXPECT_NEAR(report.exact_match, 50.0, 1e-9);
  EXPECT_NEAR(report.schema_correct, 50.0, 1e-9);
  EXPECT_LT(report.bleu, 100.0);
  EXPECT_NEAR(report.ansible_aware, 50.0, 1e-9);
}

TEST(Aggregate, EmptyReport) {
  wm::MetricsAccumulator acc;
  auto report = acc.report();
  EXPECT_EQ(report.count, 0u);
  EXPECT_EQ(report.bleu, 0.0);
}

TEST(Aggregate, ReportToString) {
  wm::MetricsAccumulator acc;
  acc.add(kTargetTask, kTargetTask);
  std::string s = acc.report().to_string();
  EXPECT_NE(s.find("bleu=100.00"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}
