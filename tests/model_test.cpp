#include <gtest/gtest.h>

#include <cmath>

#include "model/checkpoint.hpp"
#include "model/config.hpp"
#include "model/transformer.hpp"
#include "util/rng.hpp"

namespace wm = wisdom::model;
namespace nn = wisdom::nn;
using wisdom::util::Rng;

namespace {

wm::ModelConfig tiny_config() {
  wm::ModelConfig cfg;
  cfg.vocab = 16;
  cfg.ctx = 8;
  cfg.d_model = 8;
  cfg.n_head = 2;
  cfg.n_layer = 2;
  cfg.d_ff = 16;
  return cfg;
}

// A toy sequence task: token i is followed by (i * 3 + 1) % vocab.
void make_batch(const wm::ModelConfig& cfg, Rng& rng,
                std::vector<std::int32_t>& x, std::vector<std::int32_t>& y,
                int batch, int t) {
  x.resize(static_cast<std::size_t>(batch) * t);
  y.resize(x.size());
  for (int b = 0; b < batch; ++b) {
    std::int32_t cur =
        static_cast<std::int32_t>(rng.uniform(static_cast<std::uint64_t>(cfg.vocab)));
    for (int i = 0; i < t; ++i) {
      x[static_cast<std::size_t>(b) * t + i] = cur;
      cur = (cur * 3 + 1) % cfg.vocab;
      y[static_cast<std::size_t>(b) * t + i] = cur;
    }
  }
}

}  // namespace

TEST(Config, ParamCountMatchesParameters) {
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 1);
  EXPECT_EQ(model.param_count(), cfg.param_count());
  EXPECT_TRUE(cfg.valid());
}

TEST(Config, SizeFamilyOrdering) {
  // The family must preserve the paper's compute ordering 350M < 2.7B < 6B
  // < 175B.
  auto s = wm::config_for(wm::SizeClass::S350M, 320, 96);
  auto m = wm::config_for(wm::SizeClass::M2_7B, 320, 96);
  auto l = wm::config_for(wm::SizeClass::L6B, 320, 96);
  auto xl = wm::config_for(wm::SizeClass::XL175B, 320, 96);
  EXPECT_LT(s.param_count(), m.param_count());
  EXPECT_LT(m.param_count(), l.param_count());
  EXPECT_LT(l.param_count(), xl.param_count());
  for (const auto& cfg : {s, m, l, xl}) EXPECT_TRUE(cfg.valid());
  EXPECT_EQ(wm::size_label(wm::SizeClass::S350M), "350M");
  EXPECT_EQ(wm::size_label(wm::SizeClass::XL175B), "175B");
}

TEST(Transformer, FullModelGradcheck) {
  // Finite-difference check through the entire forward/backward stack —
  // attention, rotary, layernorm, GELU, embeddings, cross-entropy.
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 7);
  Rng rng(3);
  std::vector<std::int32_t> x, y;
  make_batch(cfg, rng, x, y, /*batch=*/2, /*t=*/6);

  model.zero_grad();
  model.forward_backward(x, y, 2, 6);

  auto params = model.parameters();
  Rng pick(99);
  int checked = 0;
  for (nn::Param* p : params) {
    // Check two random entries of every parameter tensor.
    for (int r = 0; r < 2; ++r) {
      std::size_t idx =
          static_cast<std::size_t>(pick.uniform(p->w.size()));
      float saved = p->w[idx];
      // Small enough that the O(eps^2) curvature term through the softmax /
      // layernorm stack is negligible, large enough for float evaluation
      // noise to stay below tolerance (verified by an eps sweep).
      const float eps = 2e-3f;
      p->w[idx] = saved + eps;
      double up = model.evaluate(x, y, 2, 6);
      p->w[idx] = saved - eps;
      double down = model.evaluate(x, y, 2, 6);
      p->w[idx] = saved;
      double numeric = (up - down) / (2.0 * eps);
      double analytic = p->g[idx];
      double denom = std::max({std::abs(numeric), std::abs(analytic), 1e-2});
      EXPECT_LT(std::abs(numeric - analytic) / denom, 0.08)
          << "param " << checked << " idx " << idx << ": numeric=" << numeric
          << " analytic=" << analytic;
    }
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST(Transformer, LossDecreasesWhenTraining) {
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 11);
  Rng rng(5);
  std::vector<std::int32_t> x, y;
  make_batch(cfg, rng, x, y, 4, 8);

  nn::AdamW opt;
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 150; ++step) {
    model.zero_grad();
    float loss = model.forward_backward(x, y, 4, 8);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    model.optim_step(opt, 3e-3f, 1.0f);
  }
  // The deterministic toy map is learnable: loss should collapse.
  EXPECT_LT(last_loss, first_loss * 0.25f);
  EXPECT_LT(last_loss, 0.7f);
}

TEST(Transformer, OverfitMemorizesSequence) {
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 13);
  Rng rng(8);
  std::vector<std::int32_t> x, y;
  make_batch(cfg, rng, x, y, 4, 8);

  nn::AdamW opt;
  for (int step = 0; step < 250; ++step) {
    model.zero_grad();
    model.forward_backward(x, y, 4, 8);
    model.optim_step(opt, 3e-3f, 1.0f);
  }
  // Greedy continuation from the first token must reproduce the toy rule.
  std::vector<std::int32_t> prompt = {x[0]};
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 5;
  auto out = model.generate(prompt, gen);
  ASSERT_GE(out.size(), 3u);
  std::int32_t cur = x[0];
  for (std::size_t i = 0; i < 3; ++i) {
    cur = (cur * 3 + 1) % cfg.vocab;
    EXPECT_EQ(out[i], cur) << "position " << i;
  }
}

TEST(Transformer, KvCacheMatchesBatchedForward) {
  // Greedy decoding through the KV cache must produce exactly the logits of
  // the batched forward pass at the last position.
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 17);
  std::vector<std::int32_t> seq = {3, 1, 4, 1, 5, 9, 2, 6};
  const int t = static_cast<int>(seq.size());

  // Batched evaluation: loss against shifted targets exercises logits; for
  // a direct check we reuse evaluate() twice with different final targets
  // and compare losses with hand-computed softmax — instead, simply check
  // greedy agreement at every prefix.
  for (int prefix = 1; prefix <= t; ++prefix) {
    wm::Transformer::KvCache cache = model.make_cache();
    std::span<const float> inc_logits;
    for (int i = 0; i < prefix; ++i)
      inc_logits = model.decode_step(cache, seq[static_cast<std::size_t>(i)]);

    // Recompute with a fresh cache fed the same prefix in one pass (the
    // decode path is already incremental; this validates determinism), then
    // against a one-token-at-a-time cache built from a *different* object.
    wm::Transformer::KvCache cache2 = model.make_cache();
    std::span<const float> inc2;
    for (int i = 0; i < prefix; ++i)
      inc2 = model.decode_step(cache2, seq[static_cast<std::size_t>(i)]);
    for (int j = 0; j < cfg.vocab; ++j)
      EXPECT_FLOAT_EQ(inc_logits[static_cast<std::size_t>(j)],
                      inc2[static_cast<std::size_t>(j)]);
  }
}

TEST(Transformer, KvCacheConsistentWithTrainingPath) {
  // The training forward and the decode path share kernels but different
  // code: verify they agree through the loss. Train until the model prefers
  // a specific next token, then check decode_step picks the same argmax the
  // training-path loss says is most likely.
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 23);
  Rng rng(4);
  std::vector<std::int32_t> x, y;
  make_batch(cfg, rng, x, y, 4, 8);
  nn::AdamW opt;
  for (int step = 0; step < 120; ++step) {
    model.zero_grad();
    model.forward_backward(x, y, 4, 8);
    model.optim_step(opt, 3e-3f, 1.0f);
  }
  // For each candidate continuation token c, evaluate() the sequence whose
  // final target is c; the smallest loss marks the training path's argmax.
  std::vector<std::int32_t> seq(x.begin(), x.begin() + 4);
  std::vector<std::int32_t> targets(4, -1);
  float best_loss = 1e30f;
  std::int32_t best_token = -1;
  for (std::int32_t c = 0; c < cfg.vocab; ++c) {
    targets[3] = c;
    float loss = model.evaluate(seq, targets, 1, 4);
    if (loss < best_loss) {
      best_loss = loss;
      best_token = c;
    }
  }
  wm::Transformer::KvCache cache = model.make_cache();
  std::span<const float> logits;
  for (std::int32_t tok : seq) logits = model.decode_step(cache, tok);
  std::int32_t argmax = 0;
  for (std::int32_t j = 1; j < cfg.vocab; ++j)
    if (logits[static_cast<std::size_t>(j)] >
        logits[static_cast<std::size_t>(argmax)])
      argmax = j;
  EXPECT_EQ(argmax, best_token);
}

TEST(Transformer, GenerateStopsAtStopToken) {
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 29);
  // Train the model to always emit token 2 after anything.
  std::vector<std::int32_t> x(16), y(16);
  Rng rng(2);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<std::int32_t>(rng.uniform(16));
    y[i] = 2;
  }
  nn::AdamW opt;
  for (int step = 0; step < 80; ++step) {
    model.zero_grad();
    model.forward_backward(x, y, 2, 8);
    model.optim_step(opt, 3e-3f, 1.0f);
  }
  std::vector<std::int32_t> prompt = {1};
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 6;
  gen.stop_token = 2;
  auto out = model.generate(prompt, gen);
  EXPECT_TRUE(out.empty());  // stop token emitted immediately, not included
}

TEST(Transformer, GenerateLeftTruncatesLongPrompt) {
  wm::ModelConfig cfg = tiny_config();  // ctx = 8
  wm::Transformer model(cfg, 31);
  std::vector<std::int32_t> prompt(50, 3);
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 4;
  auto out = model.generate(prompt, gen);
  EXPECT_LE(out.size(), 4u);  // no crash, budget respected
}

TEST(Transformer, GenerateRespectsContextWindow) {
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 37);
  std::vector<std::int32_t> prompt = {1, 2};
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 100;  // far beyond ctx
  auto out = model.generate(prompt, gen);
  EXPECT_LE(static_cast<int>(out.size() + prompt.size()), cfg.ctx + 1);
}

TEST(Transformer, DeterministicConstruction) {
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer a(cfg, 41), b(cfg, 41), c(cfg, 43);
  auto pa = a.parameters(), pb = b.parameters(), pc = c.parameters();
  EXPECT_EQ(pa[0]->w, pb[0]->w);
  EXPECT_NE(pa[0]->w, pc[0]->w);
}

// --- checkpointing -------------------------------------------------------------

TEST(Checkpoint, RoundTripPreservesBehaviour) {
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 47);
  Rng rng(6);
  std::vector<std::int32_t> x, y;
  make_batch(cfg, rng, x, y, 2, 8);
  nn::AdamW opt;
  for (int step = 0; step < 30; ++step) {
    model.zero_grad();
    model.forward_backward(x, y, 2, 8);
    model.optim_step(opt, 1e-3f, 1.0f);
  }

  std::string blob = wm::save_checkpoint(model, "tokenizer-bytes");
  std::string tok;
  auto restored = wm::load_checkpoint(blob, &tok);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(tok, "tokenizer-bytes");
  EXPECT_EQ(restored->config().d_model, cfg.d_model);
  EXPECT_FLOAT_EQ(restored->evaluate(x, y, 2, 8), model.evaluate(x, y, 2, 8));

  // Generation must agree token for token.
  std::vector<std::int32_t> prompt = {5, 3};
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 4;
  EXPECT_EQ(model.generate(prompt, gen), restored->generate(prompt, gen));
}

TEST(Checkpoint, RejectsCorruptData) {
  EXPECT_FALSE(wm::load_checkpoint("garbage", nullptr).has_value());
  wm::Transformer model(tiny_config(), 1);
  std::string blob = wm::save_checkpoint(model, "");
  blob.resize(blob.size() - 10);
  EXPECT_FALSE(wm::load_checkpoint(blob, nullptr).has_value());
  blob[0] ^= 0x55;
  EXPECT_FALSE(wm::load_checkpoint(blob, nullptr).has_value());
}

TEST(Checkpoint, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/wisdom_ckpt_test.bin";
  wm::Transformer model(tiny_config(), 53);
  ASSERT_TRUE(wm::save_checkpoint_file(path, model, "tok"));
  std::string tok;
  auto restored = wm::load_checkpoint_file(path, &tok);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(tok, "tok");
}

TEST(Checkpoint, ContinuedTrainingFromCheckpoint) {
  // The Wisdom workflow: load a "CodeGen" checkpoint and extend its
  // pre-training. Loss must continue from where it was, not restart.
  wm::ModelConfig cfg = tiny_config();
  wm::Transformer model(cfg, 59);
  Rng rng(9);
  std::vector<std::int32_t> x, y;
  make_batch(cfg, rng, x, y, 4, 8);
  nn::AdamW opt;
  for (int step = 0; step < 100; ++step) {
    model.zero_grad();
    model.forward_backward(x, y, 4, 8);
    model.optim_step(opt, 3e-3f, 1.0f);
  }
  float trained_loss = model.evaluate(x, y, 4, 8);

  auto restored = wm::load_checkpoint(wm::save_checkpoint(model, ""), nullptr);
  ASSERT_TRUE(restored.has_value());
  float fresh_loss = wm::Transformer(cfg, 61).evaluate(x, y, 4, 8);
  EXPECT_NEAR(restored->evaluate(x, y, 4, 8), trained_loss, 1e-6);
  EXPECT_LT(trained_loss, fresh_loss * 0.5f);
}
