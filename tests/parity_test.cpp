// Cross-feature differential parity harness for speculative decoding.
//
// The speculative contract is byte-identity: with a draft model configured
// and speculative_k > 0, every served response must equal the
// speculative-off response bit for bit — same snippet, same token count,
// same degraded/error classification — because greedy verification commits
// exactly the tokens sequential decode would have produced, and deadline
// checks are spent one-per-committed-token in the same order.
//
// One table drives the matrix: each case configures both services
// identically except for the speculative knobs, runs the same scenario
// against both, and compares payloads (excluding per-request bookkeeping:
// latency_ms, trace_id, server_timing_ms — speculative decoding changes
// span shapes, never bytes). The matrix crosses every serving feature that
// interacts with the decode loop:
//
//   { greedy, beam-fallback, streaming, warm prefix-cache,
//     continuous batching, deadline salvage }  x  WISDOM_THREADS {1, 4}
//
// plus direct model-level checks of generate_speculative() against
// generate() on trained and untrained model pairs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "model/checkpoint.hpp"
#include "model/config.hpp"
#include "model/speculative.hpp"
#include "model/transformer.hpp"
#include "serve/fault.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"
#include "text/bpe.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;
namespace wu = wisdom::util;
using wisdom::testutil::ForceParallel;
using wisdom::testutil::random_prompt;
using wisdom::testutil::serving_draft;
using wisdom::testutil::serving_model;
using wisdom::testutil::serving_tokenizer;
using wisdom::testutil::trained_tiny;

namespace {

// Fields that must be identical between speculative and baseline serving.
// Excluded: latency_ms, server_timing_ms (span shapes differ: draft/verify
// vs per-token decode), trace_id (sequence numbering), cached.
void expect_same_payload(const ws::SuggestionResponse& a,
                         const ws::SuggestionResponse& b,
                         const std::string& label) {
  EXPECT_EQ(a.ok, b.ok) << label;
  EXPECT_EQ(a.snippet, b.snippet) << label;
  EXPECT_EQ(a.schema_correct, b.schema_correct) << label;
  EXPECT_EQ(a.generated_tokens, b.generated_tokens) << label;
  EXPECT_EQ(a.degraded, b.degraded) << label;
  EXPECT_EQ(a.repaired, b.repaired) << label;
  EXPECT_EQ(a.error, b.error) << label;
  EXPECT_EQ(a.diagnostics.size(), b.diagnostics.size()) << label;
}

// --- model-level parity ------------------------------------------------------

// generate_speculative() must return generate()'s exact tokens and status
// for any prompt and any k — trained pair (high draft agreement, long
// accepted runs) and untrained pair (near-zero agreement, constant
// rejection resync) both.
TEST(SpeculativeModel, MatchesSequentialGreedyTrainedPair) {
  auto& f = trained_tiny();
  const auto prompts = {"- name: Install nginx\n", "- name: Install redis\n",
                        "- name: Start vim\n"};
  for (const char* text : prompts) {
    auto ids = f.tokenizer.encode(text);
    for (int k : {1, 2, 4, 7}) {
      wm::Transformer::GenerateOptions gen;
      gen.max_new_tokens = 24;
      gen.stop_token = wt::BpeTokenizer::kEndOfText;
      wm::Transformer::GenerateStatus base_status;
      gen.status = &base_status;
      auto expected = f.model.generate(ids, gen);

      wm::Transformer::GenerateStatus spec_status;
      gen.status = &spec_status;
      wm::SpeculativeOptions spec;
      spec.draft = &f.draft;
      spec.k = k;
      wm::SpeculativeStats stats;
      spec.stats = &stats;
      auto actual = wm::generate_speculative(f.model, ids, gen, spec);

      EXPECT_EQ(actual, expected) << "prompt=" << text << " k=" << k;
      EXPECT_EQ(spec_status.steps_taken, base_status.steps_taken)
          << "prompt=" << text << " k=" << k;
      EXPECT_EQ(spec_status.deadline_expired, base_status.deadline_expired);
      EXPECT_EQ(stats.committed,
                static_cast<std::int64_t>(expected.size()));
      // The trained pair agrees on schema tokens: speculation must
      // actually commit draft proposals, not just fall through.
      EXPECT_GT(stats.accepted, 0) << "prompt=" << text << " k=" << k;
    }
  }
}

TEST(SpeculativeModel, MatchesSequentialOnRandomPromptsUntrainedPair) {
  ForceParallel force;
  const auto tokenizer = serving_tokenizer();
  const wm::Transformer model = serving_model(tokenizer);
  const wm::Transformer draft = serving_draft(tokenizer);
  wu::Rng rng(7);
  const auto vocab = static_cast<std::int32_t>(tokenizer.vocab_size());
  for (int round = 0; round < 12; ++round) {
    const auto prompt = random_prompt(rng, 1, 12, vocab);
    const int k = rng.uniform_int(1, 6);
    wm::Transformer::GenerateOptions gen;
    gen.max_new_tokens = rng.uniform_int(1, 20);
    wm::Transformer::GenerateStatus base_status;
    gen.status = &base_status;
    auto expected = model.generate(prompt, gen);

    wm::Transformer::GenerateStatus spec_status;
    gen.status = &spec_status;
    wm::SpeculativeOptions spec;
    spec.draft = &draft;
    spec.k = k;
    auto actual = wm::generate_speculative(model, prompt, gen, spec);
    EXPECT_EQ(actual, expected) << "round=" << round << " k=" << k;
    EXPECT_EQ(spec_status.steps_taken, base_status.steps_taken)
        << "round=" << round << " k=" << k;
  }
}

// Check-count deadlines: speculation spends exactly one check per
// committed token in commit order, so a budget that cuts sequential
// decode after N tokens cuts speculative decode after the same N.
TEST(SpeculativeModel, DeadlineCutsAtTheSameToken) {
  auto& f = trained_tiny();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  const auto kept = f.model.kept_prompt(ids, 24);
  for (std::int64_t cut_after : {0, 1, 3, 5, 9}) {
    // Check-limited deadlines share their budget across copies, so each
    // run gets a freshly minted one with the identical allowance.
    const std::int64_t budget =
        static_cast<std::int64_t>(kept.size()) + cut_after;
    wm::Transformer::GenerateOptions gen;
    gen.max_new_tokens = 24;
    gen.stop_token = wt::BpeTokenizer::kEndOfText;
    gen.deadline = wu::Deadline::after_checks(budget);
    wm::Transformer::GenerateStatus base_status;
    gen.status = &base_status;
    auto expected = f.model.generate(ids, gen);

    gen.deadline = wu::Deadline::after_checks(budget);
    wm::Transformer::GenerateStatus spec_status;
    gen.status = &spec_status;
    wm::SpeculativeOptions spec;
    spec.draft = &f.draft;
    spec.k = 4;
    auto actual = wm::generate_speculative(f.model, ids, gen, spec);
    EXPECT_EQ(actual, expected) << "cut_after=" << cut_after;
    EXPECT_EQ(spec_status.deadline_expired, base_status.deadline_expired)
        << "cut_after=" << cut_after;
    EXPECT_EQ(spec_status.steps_taken, base_status.steps_taken)
        << "cut_after=" << cut_after;
  }
}

// Streaming hook parity: on_token fires once per committed token with the
// same values in the same order — never for drafted-but-unverified tokens.
TEST(SpeculativeModel, OnTokenSeesOnlyVerifiedTokensInOrder) {
  auto& f = trained_tiny();
  auto ids = f.tokenizer.encode("- name: Install redis\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 20;
  gen.stop_token = wt::BpeTokenizer::kEndOfText;
  std::vector<std::int32_t> base_seen;
  gen.on_token = [&](std::int32_t t) { base_seen.push_back(t); };
  auto expected = f.model.generate(ids, gen);

  std::vector<std::int32_t> spec_seen;
  gen.on_token = [&](std::int32_t t) { spec_seen.push_back(t); };
  wm::SpeculativeOptions spec;
  spec.draft = &f.draft;
  spec.k = 4;
  auto actual = wm::generate_speculative(f.model, ids, gen, spec);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(spec_seen, base_seen);
  EXPECT_EQ(spec_seen, actual);
}

// Warm prefix-cache interop at the model level: a snapshot taken by a
// speculative run warms a later speculative run, with the same bytes a
// cold sequential run produces.
TEST(SpeculativeModel, WarmCacheRoundTripMatchesCold) {
  auto& f = trained_tiny();
  auto ids = f.tokenizer.encode("- name: Install curl\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 16;
  gen.stop_token = wt::BpeTokenizer::kEndOfText;
  auto cold = f.model.generate(ids, gen);

  wm::SpeculativeOptions spec;
  spec.draft = &f.draft;
  spec.k = 3;
  wm::Transformer::KvCache snapshot;
  wm::Transformer::GenerateOptions snap_gen = gen;
  snap_gen.prompt_snapshot = &snapshot;
  EXPECT_EQ(wm::generate_speculative(f.model, ids, snap_gen, spec), cold);
  ASSERT_GT(snapshot.length, 0);

  wm::Transformer::KvCache warm = snapshot.clone(snapshot.length / 2);
  wm::Transformer::GenerateOptions warm_gen = gen;
  warm_gen.warm_cache = &warm;
  EXPECT_EQ(wm::generate_speculative(f.model, ids, warm_gen, spec), cold);
}

// The applicability gate: sampled decoding never speculates (greedy
// verification would change the RNG stream), and generate_speculative
// falls back to generate() bit-for-bit.
TEST(SpeculativeModel, SampledDecodingFallsBackExactly) {
  auto& f = trained_tiny();
  auto ids = f.tokenizer.encode("- name: Install git\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 16;
  gen.temperature = 0.8f;
  gen.top_k = 8;
  gen.sample_seed = 42;
  auto expected = f.model.generate(ids, gen);

  wm::SpeculativeOptions spec;
  spec.draft = &f.draft;
  spec.k = 4;
  EXPECT_FALSE(wm::speculation_applicable(f.model, spec, gen));
  wm::SpeculativeStats stats;
  spec.stats = &stats;
  EXPECT_EQ(wm::generate_speculative(f.model, ids, gen, spec), expected);
  EXPECT_EQ(stats.proposed, 0);
}

// --- service-level matrix ----------------------------------------------------

// One scenario of the matrix: `configure` mutates the shared options
// (applied to baseline and speculative service alike); `run` executes the
// scenario and returns the responses plus any streamed bytes.
struct CaseResult {
  std::vector<ws::SuggestionResponse> responses;
  std::vector<std::string> streams;
};

struct ParityCase {
  const char* name;
  void (*configure)(ws::ServiceOptions&);
  CaseResult (*run)(ws::InferenceService&, ws::FaultInjector&);
};

ws::SuggestionRequest make_request(const char* prompt) {
  ws::SuggestionRequest request;
  request.prompt = prompt;
  return request;
}

CaseResult run_singles(ws::InferenceService& service, ws::FaultInjector&) {
  CaseResult result;
  for (const char* p : {"Install nginx", "Start redis", "Install nginx",
                        "Remove package"})
    result.responses.push_back(service.suggest(make_request(p)));
  return result;
}

CaseResult run_streaming(ws::InferenceService& service, ws::FaultInjector&) {
  CaseResult result;
  for (const char* p : {"Install nginx", "Copy a file"}) {
    std::string accumulated;
    auto response = service.suggest_stream(
        make_request(p), [&](std::string_view text, bool reset) {
          if (reset) accumulated.clear();
          accumulated.append(text);
        });
    // The stream invariant holds per service; cross-service equality of
    // `streams` then proves chunking parity.
    EXPECT_EQ(accumulated, response.snippet) << "stream prompt=" << p;
    result.streams.push_back(std::move(accumulated));
    result.responses.push_back(std::move(response));
  }
  return result;
}

CaseResult run_warm_prefix(ws::InferenceService& service, ws::FaultInjector&) {
  CaseResult result;
  // Same prompt family: the second and third share a kept-prompt prefix
  // with the first, so they decode from a warm cache.
  for (const char* p : {"Install nginx", "Install redis", "Install nginx"})
    result.responses.push_back(service.suggest(make_request(p)));
  EXPECT_GT(service.prefix_cache_stats().hits, 0u);
  return result;
}

CaseResult run_batch(ws::InferenceService& service, ws::FaultInjector&) {
  CaseResult result;
  std::vector<ws::SuggestionRequest> requests;
  for (const char* p : {"Install nginx", "Start redis", "Copy a file",
                        "Install nginx", "Enable service", "Remove package",
                        "Install wget"})
    requests.push_back(make_request(p));
  result.responses = service.suggest_batch(requests);
  return result;
}

CaseResult run_deadline_salvage(ws::InferenceService& service,
                                ws::FaultInjector& faults) {
  auto& f = trained_tiny();
  CaseResult result;
  // Budget the check-count deadline to cut mid-decode: prefill costs one
  // check per kept-prompt token, then one per committed token.
  auto request = make_request("Install redis");
  auto ids = f.tokenizer.encode("- name: " + request.prompt + "\n");
  const auto kept = f.model.kept_prompt(ids, service.options().max_new_tokens);
  faults.set_slow_decode_after_tokens(
      static_cast<std::int64_t>(kept.size()) + 4);
  auto response = service.suggest(request);
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
  EXPECT_TRUE(response.degraded);
  result.responses.push_back(std::move(response));
  return result;
}

constexpr ParityCase kMatrix[] = {
    {"greedy", [](ws::ServiceOptions&) {}, run_singles},
    {"beam_fallback",
     [](ws::ServiceOptions& o) { o.beam_width = 3; }, run_singles},
    {"streaming", [](ws::ServiceOptions&) {}, run_streaming},
    {"warm_prefix_cache",
     [](ws::ServiceOptions& o) { o.prefix_cache_enabled = true; },
     run_warm_prefix},
    {"continuous_batching",
     [](ws::ServiceOptions& o) {
       o.continuous_batching = true;
       o.max_batch_sequences = 4;
     },
     run_batch},
    {"deadline_salvage", [](ws::ServiceOptions&) {}, run_deadline_salvage},
};

std::uint64_t spec_counter(const ws::InferenceService& service,
                           const char* name) {
  const auto* counter = service.metrics().find_counter(name);
  return counter != nullptr ? counter->value() : 0u;
}

// The tentpole test: every matrix case, at 1 and 4 threads, serves
// byte-identical payloads with speculation on and off — and the
// speculative service provably speculated (except under beam decoding,
// where the gate must keep it off).
TEST(SpeculativeParity, MatrixMatchesBaselineAcrossThreads) {
  auto& f = trained_tiny();
  for (int threads : {1, 4}) {
    wu::ThreadPool::set_global_threads(threads);
    for (const auto& parity_case : kMatrix) {
      const std::string label = std::string(parity_case.name) +
                                " threads=" + std::to_string(threads);
      ws::FaultInjector base_faults;
      ws::ServiceOptions base;
      base.max_new_tokens = 24;
      base.continuous_batching = false;
      base.faults = &base_faults;
      parity_case.configure(base);

      ws::ServiceOptions spec = base;
      ws::FaultInjector spec_faults;
      spec.faults = &spec_faults;
      spec.speculative_k = 3;
      spec.draft_model = &f.draft;

      ws::InferenceService baseline(f.model, f.tokenizer, base);
      ws::InferenceService speculative(f.model, f.tokenizer, spec);
      ASSERT_EQ(speculative.options().speculative_k, 3) << label;

      CaseResult expected = parity_case.run(baseline, base_faults);
      CaseResult actual = parity_case.run(speculative, spec_faults);

      ASSERT_EQ(actual.responses.size(), expected.responses.size()) << label;
      for (std::size_t i = 0; i < expected.responses.size(); ++i)
        expect_same_payload(actual.responses[i], expected.responses[i],
                            label + " request=" + std::to_string(i));
      EXPECT_EQ(actual.streams, expected.streams) << label;

      const std::uint64_t proposed =
          spec_counter(speculative, "wisdom_spec_proposed_total");
      if (std::string(parity_case.name) == "beam_fallback") {
        EXPECT_EQ(proposed, 0u) << label << ": beam must not speculate";
      } else {
        EXPECT_GT(proposed, 0u) << label << ": speculation never engaged";
        EXPECT_GT(spec_counter(speculative, "wisdom_spec_accepted_total"), 0u)
            << label;
      }
      EXPECT_EQ(spec_counter(baseline, "wisdom_spec_proposed_total"), 0u)
          << label;
    }
  }
  wu::ThreadPool::set_global_threads(0);
}

// Same matrix driven through an owned draft loaded from a checkpoint file
// — the deployment path (draft_checkpoint) must behave exactly like the
// borrowed-pointer path. One representative case keeps runtime bounded.
TEST(SpeculativeParity, CheckpointDraftMatchesBorrowedDraft) {
  auto& f = trained_tiny();
  const std::string path = ::testing::TempDir() + "wisdom_parity_draft.ckpt";
  ASSERT_TRUE(wm::save_checkpoint_file(path, f.draft, ""));

  ws::ServiceOptions borrowed;
  borrowed.max_new_tokens = 24;
  borrowed.continuous_batching = false;
  borrowed.speculative_k = 3;
  borrowed.draft_model = &f.draft;

  ws::ServiceOptions from_file = borrowed;
  from_file.draft_model = nullptr;
  from_file.draft_checkpoint = path;

  ws::InferenceService a(f.model, f.tokenizer, borrowed);
  ws::InferenceService b(f.model, f.tokenizer, from_file);
  ASSERT_EQ(b.options().speculative_k, 3)
      << "checkpoint draft failed to load";
  for (const char* p : {"Install nginx", "Start redis"}) {
    auto ra = a.suggest(make_request(p));
    auto rb = b.suggest(make_request(p));
    expect_same_payload(ra, rb, std::string("checkpoint draft prompt=") + p);
  }
  EXPECT_GT(spec_counter(b, "wisdom_spec_accepted_total"), 0u);
  std::remove(path.c_str());
}

// An incompatible draft (vocab mismatch) must disable speculation, not
// fail construction or change bytes.
TEST(SpeculativeParity, IncompatibleDraftDisablesSpeculation) {
  auto& f = trained_tiny();
  wm::ModelConfig bad_cfg = wisdom::testutil::tiny_draft_config();
  bad_cfg.vocab = static_cast<std::int32_t>(f.tokenizer.vocab_size()) + 1;
  const wm::Transformer bad_draft(bad_cfg, 5);

  ws::ServiceOptions options;
  options.max_new_tokens = 24;
  options.continuous_batching = false;
  options.speculative_k = 3;
  options.draft_model = &bad_draft;
  ws::InferenceService service(f.model, f.tokenizer, options);
  EXPECT_EQ(service.options().speculative_k, 0);

  ws::ServiceOptions off;
  off.max_new_tokens = 24;
  off.continuous_batching = false;
  ws::InferenceService baseline(f.model, f.tokenizer, off);
  auto a = service.suggest(make_request("Install nginx"));
  auto b = baseline.suggest(make_request("Install nginx"));
  expect_same_payload(a, b, "incompatible draft");
  EXPECT_EQ(spec_counter(service, "wisdom_spec_proposed_total"), 0u);
}

}  // namespace
