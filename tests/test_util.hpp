// Shared test fixtures: the tiny-model / tokenizer / checkpoint builders
// that were copy-pasted across cache_test, scheduler_test, chaos_test and
// http_test, extracted here so each suite (and the new speculative parity
// and fuzz suites) constructs identical models from one definition.
//
// Two model families live here:
//  - tiny_config() / serving_model(): an UNtrained 2-layer model whose
//    outputs are arbitrary but deterministic — right for parity and
//    chaos tests, where only byte-identity across serving modes matters.
//  - TrainedTinyModel: a micro model trained for ~2s on a synthetic
//    apt-task corpus, producing schema-shaped YAML — right for
//    end-to-end/golden tests that assert on response content. Its
//    `draft` member is a smaller config trained on the SAME corpus with
//    the SAME tokenizer, so greedy agreement with the main model is high
//    — the speculative-decoding tests and benches need that pairing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/packing.hpp"
#include "model/config.hpp"
#include "model/transformer.hpp"
#include "nn/ops.hpp"
#include "text/bpe.hpp"
#include "util/rng.hpp"

namespace wisdom::testutil {

// The untrained micro-model config shared by scheduler/chaos-style
// parity tests (96-token vocab, no tokenizer involved).
inline model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.vocab = 96;
  cfg.ctx = 48;
  cfg.d_model = 24;
  cfg.n_head = 2;
  cfg.n_layer = 2;
  cfg.d_ff = 48;
  return cfg;
}

// A strictly smaller config over the same vocab/ctx — the draft side of
// a speculative pair. Sharing ctx keeps the applicability gate
// (draft ctx >= model ctx) satisfied.
inline model::ModelConfig tiny_draft_config() {
  model::ModelConfig cfg = tiny_config();
  cfg.d_model = 16;
  cfg.n_head = 2;
  cfg.n_layer = 1;
  cfg.d_ff = 32;
  return cfg;
}

// Forces every kernel through the thread pool (threshold 0) while alive,
// so parity tests exercise parallel kernels even on tiny models.
struct ForceParallel {
  std::size_t saved = nn::parallel_threshold();
  ForceParallel() { nn::set_parallel_threshold(0); }
  ~ForceParallel() { nn::set_parallel_threshold(saved); }
};

inline std::vector<std::int32_t> random_prompt(util::Rng& rng, int min_len,
                                               int max_len,
                                               std::int32_t vocab) {
  std::vector<std::int32_t> prompt(
      static_cast<std::size_t>(rng.uniform_int(min_len, max_len)));
  for (auto& t : prompt)
    t = static_cast<std::int32_t>(
        rng.uniform(static_cast<std::uint64_t>(vocab)));
  return prompt;
}

// The service-level fixtures: a BPE tokenizer trained on one nginx task
// and an untrained model sized to its vocab.
inline text::BpeTokenizer serving_tokenizer() {
  return text::BpeTokenizer::train(
      "- name: Install nginx\n  ansible.builtin.apt:\n"
      "    name: nginx\n    state: present\n",
      280);
}

inline model::Transformer serving_model(const text::BpeTokenizer& tokenizer) {
  model::ModelConfig cfg = tiny_config();
  cfg.vocab = static_cast<std::int32_t>(tokenizer.vocab_size());
  return model::Transformer(cfg, 17);
}

// An untrained draft paired with serving_model(): same vocab, same ctx,
// smaller everything else. Deterministic (fixed seed), so parity runs
// that share it produce identical draft proposals.
inline model::Transformer serving_draft(const text::BpeTokenizer& tokenizer) {
  model::ModelConfig cfg = tiny_draft_config();
  cfg.vocab = static_cast<std::int32_t>(tokenizer.vocab_size());
  return model::Transformer(cfg, 29);
}

// The trained micro-model shared by content-asserting suites. Training
// takes ~2s; suites hold one instance via trained_tiny(). The draft is
// trained on the same packed corpus so its greedy argmax agrees with the
// main model on most schema tokens — speculation then actually commits
// multi-token runs in tests instead of degenerating to k rejections.
struct TrainedTinyModel {
  text::BpeTokenizer tokenizer;
  model::Transformer model;
  model::Transformer draft;

  TrainedTinyModel()
      : tokenizer(text::BpeTokenizer::train(corpus(), 300)),
        model(config(), 21),
        draft(draft_config(), 33) {
    std::vector<std::string> texts;
    const char* pkgs[] = {"nginx", "redis", "git", "curl", "vim",
                          "htop", "jq", "wget"};
    for (int rep = 0; rep < 12; ++rep) {
      for (const char* pkg : pkgs) {
        texts.push_back(std::string("- name: Install ") + pkg +
                        "\n  ansible.builtin.apt:\n    name: " + pkg +
                        "\n    state: present\n");
      }
    }
    auto set = data::pack_samples(tokenizer, texts, 48);
    core::TrainConfig tc;
    tc.epochs = 30;
    tc.micro_batch = 4;
    tc.grad_accum = 1;
    tc.lr = 3e-3f;
    core::train_model(model, set, nullptr, tc);
    core::train_model(draft, set, nullptr, tc);
  }

  static std::string corpus() {
    return "- name: Install nginx\n"
           "  ansible.builtin.apt:\n"
           "    name: nginx\n"
           "    state: present\n";
  }
  model::ModelConfig config() const {
    model::ModelConfig cfg;
    cfg.vocab = static_cast<int>(tokenizer.vocab_size());
    cfg.ctx = 48;
    cfg.d_model = 24;
    cfg.n_head = 2;
    cfg.n_layer = 2;
    cfg.d_ff = 48;
    return cfg;
  }
  model::ModelConfig draft_config() const {
    model::ModelConfig cfg = config();
    cfg.d_model = 16;
    cfg.n_head = 2;
    cfg.n_layer = 1;
    cfg.d_ff = 32;
    return cfg;
  }
};

// Leaked singleton (never destroyed): avoids static-destruction-order
// races with the global thread pool on process exit.
inline TrainedTinyModel& trained_tiny() {
  static TrainedTinyModel* instance = new TrainedTinyModel();
  return *instance;
}

}  // namespace wisdom::testutil
