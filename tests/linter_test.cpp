#include <gtest/gtest.h>

#include "ansible/linter.hpp"
#include "yaml/parse.hpp"

namespace wa = wisdom::ansible;
namespace wy = wisdom::yaml;

namespace {
wa::LintResult lint_task_text(std::string_view text) {
  auto doc = wy::parse_document(text);
  EXPECT_TRUE(doc.has_value()) << text;
  return wa::lint_task(doc ? *doc : wy::Node::null());
}

bool has_rule(const wa::LintResult& result, std::string_view rule) {
  for (const auto& v : result.violations)
    if (v.rule == rule) return true;
  return false;
}
}  // namespace

TEST(LintTask, ValidFqcnTask) {
  auto result = lint_task_text(
      "name: Install SSH server\n"
      "ansible.builtin.apt:\n"
      "  name: openssh-server\n"
      "  state: present\n");
  EXPECT_TRUE(result.ok()) << result.to_string();
  EXPECT_TRUE(result.violations.empty());
}

TEST(LintTask, ShortModuleNameIsWarningOnly) {
  auto result = lint_task_text("apt:\n  name: nginx\n  state: present\n");
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(has_rule(result, "fqcn"));
}

TEST(LintTask, UnknownModule) {
  auto result = lint_task_text("frobnicate:\n  level: 9\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "unknown-module"));
}

TEST(LintTask, UnknownParam) {
  auto result = lint_task_text(
      "ansible.builtin.apt:\n  name: nginx\n  statee: present\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "unknown-param"));
}

TEST(LintTask, BadChoiceValue) {
  auto result = lint_task_text(
      "ansible.builtin.service:\n  name: nginx\n  state: galloping\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "param-value"));
}

TEST(LintTask, TemplatedValueSatisfiesAnyShape) {
  auto result = lint_task_text(
      "ansible.builtin.service:\n"
      "  name: '{{ svc_name }}'\n"
      "  state: '{{ desired_state }}'\n"
      "  enabled: '{{ enable_it }}'\n");
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(LintTask, MissingRequiredParam) {
  auto result = lint_task_text("ansible.builtin.copy:\n  src: /src/file\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "missing-required-param"));
}

TEST(LintTask, RequiredParamViaArgsKeyword) {
  auto result = lint_task_text(
      "ansible.builtin.copy:\n"
      "  src: /src/file\n"
      "args:\n"
      "  dest: /dst/file\n");
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(LintTask, NullArgsOkWhenNothingRequired) {
  EXPECT_TRUE(lint_task_text("ansible.builtin.ping:\n").ok());
  EXPECT_TRUE(lint_task_text("ansible.builtin.setup:\n").ok());
}

TEST(LintTask, NullArgsFailsWhenRequired) {
  auto result = lint_task_text("ansible.builtin.copy:\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "missing-required-param"));
}

TEST(LintTask, FreeFormString) {
  EXPECT_TRUE(
      lint_task_text("ansible.builtin.shell: systemctl restart nginx\n").ok());
  EXPECT_TRUE(lint_task_text("ansible.builtin.meta: flush_handlers\n").ok());
  EXPECT_TRUE(
      lint_task_text("ansible.builtin.include_tasks: setup.yml\n").ok());
}

TEST(LintTask, OldStyleKvArgsRejectedByStrictSchema) {
  // Valid Ansible, but the strict linter schema rejects it — the exact
  // "historical form" mismatch the paper describes for Schema Correct.
  auto result =
      lint_task_text("ansible.builtin.apt: name=nginx state=present\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "old-style-args"));
}

TEST(LintTask, StringArgsOnNonFreeFormModule) {
  auto result = lint_task_text("ansible.builtin.apt: install nginx please\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "args-shape"));
}

TEST(LintTask, KeywordShapes) {
  EXPECT_TRUE(lint_task_text(
                  "ansible.builtin.ping:\n"
                  "become: true\n"
                  "retries: 3\n"
                  "tags:\n"
                  "  - web\n"
                  "  - setup\n")
                  .ok());
  auto bad_bool = lint_task_text(
      "ansible.builtin.ping:\nbecome:\n  nested: map\n");
  EXPECT_FALSE(bad_bool.ok());
  EXPECT_TRUE(has_rule(bad_bool, "keyword-type"));
  auto bad_int = lint_task_text(
      "ansible.builtin.ping:\nretries: soon\n");
  EXPECT_FALSE(bad_int.ok());
}

TEST(LintTask, MultipleModules) {
  auto result = lint_task_text(
      "ansible.builtin.ping:\n"
      "ansible.builtin.debug:\n  msg: hi\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "multiple-modules"));
}

TEST(LintTask, NoModule) {
  auto result = lint_task_text("name: does nothing\nbecome: true\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "module-missing"));
}

TEST(LintTask, SetFactArbitraryKeys) {
  EXPECT_TRUE(lint_task_text(
                  "ansible.builtin.set_fact:\n"
                  "  deployment_color: blue\n"
                  "  app_port: 8080\n")
                  .ok());
}

TEST(LintTask, BlockWithNestedTasks) {
  auto result = lint_task_text(
      "name: grouped\n"
      "block:\n"
      "  - name: inner\n"
      "    ansible.builtin.ping:\n"
      "rescue:\n"
      "  - name: report\n"
      "    ansible.builtin.debug:\n"
      "      msg: failed\n"
      "when: run_it | bool\n");
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(LintTask, BlockCatchesInnerErrors) {
  auto result = lint_task_text(
      "block:\n"
      "  - bogus_module:\n      x: 1\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "unknown-module"));
}

TEST(LintTask, NotAMapping) {
  wa::LintResult result = wa::lint_task(wy::Node::str("just text"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "task-shape"));
}

// --- playbooks -----------------------------------------------------------------

TEST(LintPlaybook, ValidPlaybook) {
  auto doc = wy::parse_document(
      "- name: Site setup\n"
      "  hosts: web\n"
      "  become: true\n"
      "  tasks:\n"
      "    - name: Install nginx\n"
      "      ansible.builtin.apt:\n"
      "        name: nginx\n"
      "        state: present\n");
  ASSERT_TRUE(doc.has_value());
  auto result = wa::lint_playbook(*doc);
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(LintPlaybook, MissingHosts) {
  auto doc = wy::parse_document(
      "- tasks:\n"
      "    - ansible.builtin.ping:\n");
  auto result = wa::lint_playbook(*doc);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "hosts-missing"));
}

TEST(LintPlaybook, EmptyPlay) {
  auto doc = wy::parse_document("- hosts: all\n  become: true\n");
  auto result = wa::lint_playbook(*doc);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "play-empty"));
}

TEST(LintPlaybook, UnknownPlayKeyword) {
  auto doc = wy::parse_document(
      "- hosts: all\n  hostss: oops\n  tasks:\n    - ansible.builtin.ping:\n");
  auto result = wa::lint_playbook(*doc);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "unknown-play-keyword"));
}

TEST(LintPlaybook, TaskErrorsPropagate) {
  auto doc = wy::parse_document(
      "- hosts: all\n"
      "  tasks:\n"
      "    - made_up_module:\n        a: 1\n");
  auto result = wa::lint_playbook(*doc);
  EXPECT_FALSE(result.ok());
}

TEST(LintPlaybook, NotASequence) {
  auto result = wa::lint_playbook(wy::Node::map());
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "playbook-shape"));
}

// --- lint_text dispatch -----------------------------------------------------------

TEST(LintText, DispatchesOnShape) {
  EXPECT_TRUE(wa::lint_text("- hosts: all\n  tasks:\n    - ansible.builtin.ping:\n").ok());
  EXPECT_TRUE(wa::lint_text("- name: t\n  ansible.builtin.ping:\n").ok());
  EXPECT_TRUE(wa::lint_text("name: t\nansible.builtin.ping:\n").ok());
}

TEST(LintText, YamlSyntaxError) {
  auto result = wa::lint_text("key: 'broken\n");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_rule(result, "yaml-syntax"));
}

TEST(LintText, PaperFig1PlaybookIsSchemaCorrect) {
  auto result = wa::lint_text(
      "---\n"
      "- hosts: servers\n"
      "  tasks:\n"
      "    - name: Install SSH server\n"
      "      ansible.builtin.apt:\n"
      "        name: openssh-server\n"
      "        state: present\n"
      "    - name: Start SSH server\n"
      "      ansible.builtin.service:\n"
      "        name: ssh\n"
      "        state: started\n");
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(LintText, PaperFig2TaskSnippets) {
  auto result = wa::lint_text(
      "- name: Ensure apache is at the latest version\n"
      "  ansible.builtin.yum:\n"
      "    name: httpd\n"
      "    state: latest\n"
      "- name: Write the apache config file\n"
      "  ansible.builtin.template:\n"
      "    src: /srv/httpd.j2\n"
      "    dest: /etc/httpd.conf\n");
  EXPECT_TRUE(result.ok()) << result.to_string();
}
