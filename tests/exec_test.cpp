#include <gtest/gtest.h>

#include "ansible/model.hpp"
#include "data/ansible_gen.hpp"
#include "exec/equivalence.hpp"
#include "exec/executor.hpp"
#include "util/rng.hpp"
#include "yaml/emit.hpp"
#include "yaml/parse.hpp"

namespace wa = wisdom::ansible;
namespace wd = wisdom::data;
namespace we = wisdom::exec;
namespace wy = wisdom::yaml;
using wisdom::util::Rng;

namespace {
we::TaskResult run(std::string_view task_yaml, we::HostState& host) {
  auto doc = wy::parse_document(task_yaml);
  EXPECT_TRUE(doc.has_value()) << task_yaml;
  return we::execute_task(wa::Task::from_node(*doc), host);
}
}  // namespace

// --- package modules -----------------------------------------------------------

TEST(Executor, InstallPackage) {
  we::HostState host;
  auto result = run("ansible.builtin.apt:\n  name: nginx\n  state: present\n",
                    host);
  EXPECT_EQ(result.status, we::TaskStatus::Changed);
  EXPECT_TRUE(host.packages.count("nginx"));
  // Idempotent re-run.
  auto again = run("ansible.builtin.apt:\n  name: nginx\n  state: present\n",
                   host);
  EXPECT_EQ(again.status, we::TaskStatus::Ok);
}

TEST(Executor, RemovePackage) {
  we::HostState host;
  host.packages.insert("nginx");
  auto result = run("ansible.builtin.yum:\n  name: nginx\n  state: absent\n",
                    host);
  EXPECT_EQ(result.status, we::TaskStatus::Changed);
  EXPECT_FALSE(host.packages.count("nginx"));
}

TEST(Executor, PackageListAndLanguageManagers) {
  we::HostState host;
  run("ansible.builtin.apt:\n  name:\n    - nginx\n    - redis\n", host);
  EXPECT_TRUE(host.packages.count("nginx"));
  EXPECT_TRUE(host.packages.count("redis"));
  run("community.general.npm:\n  name: pm2\n", host);
  EXPECT_TRUE(host.packages.count("npm:pm2"));
}

TEST(Executor, EquivalentModulesProduceSameState) {
  // The Ansible Aware near-equivalence classes are real: apt and dnf act
  // identically on the simulated host.
  we::HostState a, b;
  run("ansible.builtin.apt:\n  name: nginx\n  state: present\n", a);
  run("ansible.builtin.dnf:\n  name: nginx\n  state: present\n", b);
  EXPECT_EQ(a, b);
}

// --- services ---------------------------------------------------------------------

TEST(Executor, ServiceLifecycle) {
  we::HostState host;
  run("ansible.builtin.service:\n  name: nginx\n  state: started\n"
      "  enabled: true\n",
      host);
  EXPECT_TRUE(host.services["nginx"].running);
  EXPECT_TRUE(host.services["nginx"].enabled);
  run("ansible.builtin.systemd:\n  name: nginx\n  state: restarted\n", host);
  EXPECT_EQ(host.services["nginx"].restarts, 1);
  run("ansible.builtin.service:\n  name: nginx\n  state: stopped\n", host);
  EXPECT_FALSE(host.services["nginx"].running);
}

// --- files -----------------------------------------------------------------------

TEST(Executor, CopyAndTemplate) {
  we::HostState host;
  run("ansible.builtin.copy:\n  content: hello\n  dest: /etc/motd\n"
      "  mode: '0644'\n",
      host);
  EXPECT_EQ(host.files["/etc/motd"].content, "hello");
  EXPECT_EQ(host.files["/etc/motd"].mode, "0644");
  auto changed = run(
      "ansible.builtin.template:\n  src: motd.j2\n  dest: /etc/motd\n", host);
  EXPECT_EQ(changed.status, we::TaskStatus::Changed);
  EXPECT_EQ(host.files["/etc/motd"].content, "template:motd.j2");
}

TEST(Executor, FileDirectoryAndAbsent) {
  we::HostState host;
  run("ansible.builtin.file:\n  path: /opt/app\n  state: directory\n", host);
  EXPECT_TRUE(host.files["/opt/app"].is_directory);
  run("ansible.builtin.file:\n  path: /opt/app\n  state: absent\n", host);
  EXPECT_FALSE(host.files.count("/opt/app"));
  // state: file on a missing path fails (asserts existence).
  auto missing =
      run("ansible.builtin.file:\n  path: /nope\n  state: file\n", host);
  EXPECT_EQ(missing.status, we::TaskStatus::Failed);
}

TEST(Executor, LineinfileIdempotent) {
  we::HostState host;
  const char* task =
      "ansible.builtin.lineinfile:\n"
      "  path: /etc/ssh/sshd_config\n"
      "  line: PermitRootLogin no\n";
  EXPECT_EQ(run(task, host).status, we::TaskStatus::Changed);
  EXPECT_EQ(run(task, host).status, we::TaskStatus::Ok);
  EXPECT_NE(host.files["/etc/ssh/sshd_config"].content.find(
                "PermitRootLogin no"),
            std::string::npos);
}

TEST(Executor, ReplaceLiteral) {
  we::HostState host;
  host.files["/etc/nginx/nginx.conf"].content = "listen 80;\n";
  run("ansible.builtin.replace:\n"
      "  path: /etc/nginx/nginx.conf\n"
      "  regexp: listen 80\n"
      "  replace: listen 8080\n",
      host);
  EXPECT_EQ(host.files["/etc/nginx/nginx.conf"].content, "listen 8080;\n");
}

// --- commands ----------------------------------------------------------------------

TEST(Executor, CommandJournalAndCreatesGuard) {
  we::HostState host;
  run("ansible.builtin.shell: systemctl daemon-reload\n", host);
  ASSERT_EQ(host.command_journal.size(), 1u);
  EXPECT_EQ(host.command_journal[0], "systemctl daemon-reload");
  // creates: skips when the artifact exists.
  const char* guarded =
      "ansible.builtin.command:\n  cmd: make install\n"
      "  creates: /usr/local/bin/app\n";
  EXPECT_EQ(run(guarded, host).status, we::TaskStatus::Changed);
  EXPECT_EQ(run(guarded, host).status, we::TaskStatus::Ok);
  EXPECT_EQ(host.command_journal.size(), 2u);
}

TEST(Executor, LegacyKvArgsExecuteToo) {
  we::HostState host;
  auto result = run("apt: name=nginx state=present\n", host);
  EXPECT_EQ(result.status, we::TaskStatus::Changed);
  EXPECT_TRUE(host.packages.count("nginx"));
}

// --- misc modules ----------------------------------------------------------------

TEST(Executor, UsersGroupsFirewallFacts) {
  we::HostState host;
  run("ansible.builtin.user:\n  name: deploy\n", host);
  EXPECT_TRUE(host.users.count("deploy"));
  run("ansible.builtin.group:\n  name: web\n", host);
  EXPECT_TRUE(host.groups.count("web"));
  run("community.general.ufw:\n  rule: allow\n  port: '443'\n", host);
  EXPECT_TRUE(host.open_ports.count("443"));
  run("ansible.builtin.set_fact:\n  deploy_color: blue\n", host);
  EXPECT_EQ(host.facts["deploy_color"], "blue");
  run("ansible.builtin.hostname:\n  name: web-01\n", host);
  EXPECT_EQ(host.hostname, "web-01");
}

TEST(Executor, ReadOnlyModulesDoNotChangeState) {
  we::HostState host = we::baseline_host();
  we::HostState before = host;
  run("ansible.builtin.debug:\n  msg: hi\n", host);
  run("ansible.builtin.ping:\n", host);
  run("ansible.builtin.stat:\n  path: /etc/motd\n", host);
  EXPECT_EQ(host, before);
}

TEST(Executor, FailAndUnsupported) {
  we::HostState host;
  EXPECT_EQ(run("ansible.builtin.fail:\n  msg: nope\n", host).status,
            we::TaskStatus::Failed);
  EXPECT_EQ(run("kubernetes.core.k8s:\n  state: present\n", host).status,
            we::TaskStatus::Unsupported);
  EXPECT_EQ(run("name: no module here\n", host).status,
            we::TaskStatus::Failed);
}

// --- execute_text over lists and playbooks ---------------------------------------------

TEST(Executor, TaskListExecutesInOrder) {
  we::HostState host;
  auto result = we::execute_text(
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n    name: nginx\n    state: present\n"
      "- name: Start nginx\n"
      "  ansible.builtin.service:\n    name: nginx\n    state: started\n",
      host);
  EXPECT_EQ(result.status, we::TaskStatus::Changed);
  EXPECT_TRUE(host.packages.count("nginx"));
  EXPECT_TRUE(host.services["nginx"].running);
}

TEST(Executor, PlaybookExecutes) {
  we::HostState host;
  auto result = we::execute_text(
      "- hosts: web\n"
      "  tasks:\n"
      "    - name: Create dir\n"
      "      ansible.builtin.file:\n"
      "        path: /srv/data\n"
      "        state: directory\n",
      host);
  EXPECT_EQ(result.status, we::TaskStatus::Changed);
  EXPECT_TRUE(host.files["/srv/data"].is_directory);
}

TEST(Executor, FailureStopsThePlay) {
  we::HostState host;
  auto result = we::execute_text(
      "- ansible.builtin.fail:\n    msg: stop\n"
      "- ansible.builtin.apt:\n    name: nginx\n",
      host);
  EXPECT_EQ(result.status, we::TaskStatus::Failed);
  EXPECT_FALSE(host.packages.count("nginx"));
}

TEST(Executor, ParseErrorFails) {
  we::HostState host;
  EXPECT_EQ(we::execute_text("key: 'broken\n", host).status,
            we::TaskStatus::Failed);
}

// --- execution equivalence --------------------------------------------------------------

TEST(Equivalence, IdenticalTasksAreEquivalent) {
  std::string task =
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n    name: nginx\n    state: present\n";
  EXPECT_EQ(we::execution_equivalence(task, task),
            we::Equivalence::Equivalent);
}

TEST(Equivalence, NearEquivalentModulesAreExecutionEquivalent) {
  // apt vs dnf: different text, identical effect — execution equivalence
  // captures what Ansible Aware only partially credits.
  EXPECT_EQ(we::execution_equivalence(
                "- ansible.builtin.dnf:\n    name: nginx\n    state: present\n",
                "- ansible.builtin.apt:\n    name: nginx\n    state: present\n"),
            we::Equivalence::Equivalent);
}

TEST(Equivalence, DifferentValuesDiffer) {
  EXPECT_EQ(we::execution_equivalence(
                "- ansible.builtin.apt:\n    name: redis\n",
                "- ansible.builtin.apt:\n    name: nginx\n"),
            we::Equivalence::Different);
}

TEST(Equivalence, BrokenPredictionFails) {
  EXPECT_EQ(we::execution_equivalence(
                "key: 'broken\n",
                "- ansible.builtin.apt:\n    name: nginx\n"),
            we::Equivalence::PredFailed);
}

TEST(Equivalence, UnsimulatedGoldIsUnscorable) {
  EXPECT_EQ(we::execution_equivalence(
                "- ansible.builtin.apt:\n    name: nginx\n",
                "- kubernetes.core.k8s:\n    state: present\n"),
            we::Equivalence::Unscorable);
}

TEST(Equivalence, StatsAggregate) {
  we::EquivalenceStats stats;
  stats.add(we::Equivalence::Equivalent);
  stats.add(we::Equivalence::Equivalent);
  stats.add(we::Equivalence::Different);
  stats.add(we::Equivalence::PredFailed);
  stats.add(we::Equivalence::Unscorable);
  EXPECT_EQ(stats.scorable(), 4u);
  EXPECT_NEAR(stats.rate(), 0.5, 1e-9);
}

TEST(Equivalence, GeneratedTasksAreSelfEquivalentWhenSimulated) {
  wd::AnsibleGenerator gen{Rng{55}};
  wd::TaskGenOptions opts;
  opts.keyword_prob = 0.0;
  int scorable = 0;
  for (int i = 0; i < 60; ++i) {
    std::string text = wy::emit(gen.role_tasks(1, opts));
    auto eq = we::execution_equivalence(text, text);
    if (eq == we::Equivalence::Unscorable) continue;
    EXPECT_EQ(eq, we::Equivalence::Equivalent) << text;
    ++scorable;
  }
  // A healthy share of the generator's output must be simulatable.
  EXPECT_GT(scorable, 20);
}

TEST(Equivalence, BaselineHostIsRealistic) {
  we::HostState host = we::baseline_host();
  EXPECT_FALSE(host.packages.empty());
  EXPECT_FALSE(host.files.empty());
  EXPECT_TRUE(host.services.count("sshd"));
  // Removal is observable against the baseline.
  EXPECT_EQ(we::execution_equivalence(
                "- ansible.builtin.apt:\n    name: curl\n    state: absent\n",
                "- ansible.builtin.apt:\n    name: curl\n    state: absent\n"),
            we::Equivalence::Equivalent);
  we::HostState after = we::baseline_host();
  we::execute_text("- ansible.builtin.apt:\n    name: curl\n    state: absent\n",
                   after);
  EXPECT_NE(after, host);
}
