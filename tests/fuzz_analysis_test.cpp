// Seeded fuzz test for the semantic analysis engine. The seed corpus
// exercises every IR shape the passes walk — plays, blocks with
// rescue/always, handlers and notify chains, loops, registers, set_fact,
// secrets and no_log — then mutates it with bit flips, truncations,
// splices, and indentation noise.
//
// Invariants under every input, however mangled:
//   1. analyze() never crashes, hangs, or reads out of bounds.
//   2. repair() reaches a fixed point: when it reports `converged`,
//      re-repairing its output changes nothing.
//   3. Repair never breaks a snippet the semantic metric accepted: if
//      semantic_correct held before repair, it holds after.
//
// Iteration budget: WISDOM_FUZZ_ITERS (default 10000, the CI budget);
// raise it locally for longer campaigns.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "metrics/semantic_correct.hpp"

namespace wa = wisdom::analysis;
namespace wm = wisdom::metrics;

namespace {

int fuzz_iters() {
  if (const char* env = std::getenv("WISDOM_FUZZ_ITERS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 10000;
}

// Deterministic splitmix64: reproducible corpora on every platform.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

std::vector<std::string> seed_corpus() {
  return {
      // Playbook with handlers, notify, and play vars.
      "- name: Site\n"
      "  hosts: web\n"
      "  vars:\n"
      "    app_name: web\n"
      "  tasks:\n"
      "    - name: Deploy config\n"
      "      ansible.builtin.copy:\n"
      "        src: nginx.conf\n"
      "        dest: /etc/nginx/nginx.conf\n"
      "      notify: restart nginx\n"
      "  handlers:\n"
      "    - name: restart nginx\n"
      "      ansible.builtin.service:\n"
      "        name: nginx\n"
      "        state: restarted\n",
      // Block / rescue / always with a register read across branches.
      "- name: Attempt\n"
      "  block:\n"
      "    - name: Try\n"
      "      ansible.builtin.command: primary-probe\n"
      "      register: probe_out\n"
      "  rescue:\n"
      "    - name: Fall back\n"
      "      ansible.builtin.command: secondary-probe\n"
      "      register: probe_out\n"
      "  always:\n"
      "    - name: Show\n"
      "      ansible.builtin.debug:\n"
      "        msg: \"{{ probe_out.stdout }}\"\n",
      // Loop with loop_control rename plus a when expression.
      "- name: Install packages\n"
      "  ansible.builtin.apt:\n"
      "    name: \"{{ pkg }}\"\n"
      "    state: present\n"
      "  loop: [vim, git]\n"
      "  loop_control:\n"
      "    loop_var: pkg\n"
      "  when: ansible_os_family == 'Debian'\n",
      // Secrets: credential param, tainted register, debug sink.
      "- name: Create db user\n"
      "  community.mysql.mysql_user:\n"
      "    name: app\n"
      "    password: \"{{ vault_db_password }}\"\n"
      "  register: user_result\n"
      "- name: Show\n"
      "  ansible.builtin.debug:\n"
      "    var: user_result\n",
      // Fixable schema + type errors: k=v args, bool spelling, typo'd
      // choice and parameter name.
      "- name: Install\n"
      "  apt: name=vim state=present\n"
      "- name: Update cache\n"
      "  ansible.builtin.apt:\n"
      "    update_cache: \"yes\"\n"
      "    stat: presnt\n",
      // set_fact chain with end_play and a dead tail.
      "- name: Set version\n"
      "  ansible.builtin.set_fact:\n"
      "    app_version: 1.2.3\n"
      "- name: Stop\n"
      "  ansible.builtin.meta: end_play\n"
      "- name: Never\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ app_version }}\"\n",
  };
}

std::string mutate(const std::string& seed, Rng& rng) {
  std::string out = seed;
  switch (rng.below(6)) {
    case 0:  // byte flip(s)
      for (std::size_t flips = 1 + rng.below(4); flips && !out.empty();
           --flips)
        out[rng.below(out.size())] =
            static_cast<char>(static_cast<unsigned char>(rng.next()));
      break;
    case 1:  // truncate
      out.resize(rng.below(out.size() + 1));
      break;
    case 2:  // insert random bytes
      for (std::size_t n = 1 + rng.below(8); n; --n)
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(out.size() + 1)),
                   static_cast<char>(static_cast<unsigned char>(rng.next())));
      break;
    case 3: {  // duplicate a slice
      if (out.empty()) break;
      std::size_t begin = rng.below(out.size());
      std::size_t len = 1 + rng.below(out.size() - begin);
      out.insert(rng.below(out.size()), out.substr(begin, len));
      break;
    }
    case 4: {  // splice: random head of out + random tail of seed
      std::size_t cut = rng.below(out.size() + 1);
      out = out.substr(0, cut) + seed.substr(rng.below(seed.size() + 1));
      break;
    }
    default:  // structural noise: YAML punctuation and indentation shifts
      for (std::size_t n = 1 + rng.below(6); n; --n) {
        const char punct[] = ":-{}[]\"' \n#";
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(out.size() + 1)),
                   punct[rng.below(sizeof(punct) - 1)]);
      }
      break;
  }
  return out;
}

// The three engine invariants, checked on one input.
void check_invariants(const std::string& input) {
  wa::AnalysisResult before = wa::analyze(input);
  bool was_semantic = wm::semantic_correct(before);

  wa::RepairResult repaired = wa::repair(input);
  if (repaired.converged) {
    // Fixed point: repairing the repaired text is a no-op.
    wa::RepairResult again = wa::repair(repaired.text);
    EXPECT_EQ(again.text, repaired.text) << input;
    EXPECT_FALSE(again.changed) << input;
  }
  if (was_semantic) {
    // Repair may still normalize fixable warnings (fqcn, boolean
    // spellings), but must never regress an accepted snippet.
    EXPECT_TRUE(wm::semantic_correct(wa::analyze(repaired.text))) << input;
  }
}

}  // namespace

TEST(FuzzAnalysis, SeedCorpusRepairsToSemanticCorrect) {
  // Unmutated seeds: every one analyzes, and repair leaves no fixable
  // diagnostic behind.
  for (const std::string& seed : seed_corpus()) {
    wa::RepairResult repaired = wa::repair(seed);
    EXPECT_TRUE(repaired.converged) << seed;
    EXPECT_EQ(repaired.final_result.fixable_count(), 0u) << seed;
  }
}

TEST(FuzzAnalysis, SeededMutationsNeverCrashAndHoldInvariants) {
  auto seeds = seed_corpus();
  Rng rng(0xa11a1e5e5ull);
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    std::string input = mutate(seeds[rng.below(seeds.size())], rng);
    check_invariants(input);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FuzzAnalysis, PureRandomBytesNeverCrash) {
  Rng rng(0xdeadfa11ull);
  const int iters = fuzz_iters();
  for (int i = 0; i < iters; ++i) {
    std::string input;
    std::size_t len = rng.below(512);
    input.reserve(len);
    for (std::size_t k = 0; k < len; ++k)
      input.push_back(
          static_cast<char>(static_cast<unsigned char>(rng.next())));
    check_invariants(input);
    if (::testing::Test::HasFatalFailure()) return;
  }
}
