// Continuous-batching tests: KvBlockAllocator lifecycle (exhaustion,
// COW refcounts, double-free tripwire, reuse of freed blocks), paged
// KvCache bit-identity against the monolithic layout (decode, clone/COW
// divergence, materialize fallback, truncate, beam search),
// decode_step_batch vs sequential decode_step, ContinuousScheduler
// parity with generate() (greedy, sampling, check-count deadlines,
// fuzzed mid-flight admissions), and service-level byte equality of
// continuous vs request-level vs sequential serving — including fault
// injection and arena exhaustion.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <stdexcept>
#include <vector>

#include "model/config.hpp"
#include "model/kv_block.hpp"
#include "model/transformer.hpp"
#include "nn/ops.hpp"
#include "serve/fault.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"
#include "text/bpe.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nn = wisdom::nn;
namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;
using wisdom::util::Deadline;
using wisdom::util::Rng;
using wisdom::util::ThreadPool;

namespace {

// Model builders and the ForceParallel guard are shared via
// test_util.hpp with the chaos and parity suites.
using wisdom::testutil::ForceParallel;
using wisdom::testutil::random_prompt;
using wisdom::testutil::tiny_config;

void expect_same_logits(std::span<const float> a, std::span<const float> b) {
  ASSERT_EQ(a.size(), b.size());
  // Bit-exact, not approximately equal: the whole continuous-batching
  // contract rests on it.
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

}  // namespace

// --- KvBlockAllocator -----------------------------------------------------

TEST(KvBlockAlloc, ExhaustionReturnsMinusOne) {
  wm::KvBlockAllocator arena(4, 8, 2, 16);
  std::set<std::int32_t> ids;
  for (int i = 0; i < 4; ++i) {
    std::int32_t id = arena.allocate();
    ASSERT_GE(id, 0);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate block id";
  }
  EXPECT_EQ(arena.free_blocks(), 0);
  EXPECT_EQ(arena.allocate(), -1);
  const wm::KvBlockStats stats = arena.stats();
  EXPECT_EQ(stats.in_use, 4);
  EXPECT_EQ(stats.peak_in_use, 4);
  EXPECT_EQ(stats.failed_allocations, 1u);
}

TEST(KvBlockAlloc, DoubleFreeAndBadIdsThrow) {
  wm::KvBlockAllocator arena(2, 4, 1, 8);
  const std::int32_t id = arena.allocate();
  arena.release(id);
  EXPECT_THROW(arena.release(id), std::logic_error);
  EXPECT_THROW(arena.release(-1), std::logic_error);
  EXPECT_THROW(arena.release(2), std::logic_error);
  EXPECT_THROW(arena.add_ref(id), std::logic_error);
  EXPECT_THROW(arena.make_exclusive(id), std::logic_error);
}

TEST(KvBlockAlloc, RefcountSharing) {
  wm::KvBlockAllocator arena(2, 4, 1, 8);
  const std::int32_t id = arena.allocate();
  EXPECT_EQ(arena.ref_count(id), 1);
  arena.add_ref(id);
  EXPECT_EQ(arena.ref_count(id), 2);
  arena.release(id);
  // Still live under the second owner: not back on the free list.
  EXPECT_EQ(arena.ref_count(id), 1);
  EXPECT_EQ(arena.free_blocks(), 1);
  arena.release(id);
  EXPECT_EQ(arena.free_blocks(), 2);
}

TEST(KvBlockAlloc, MakeExclusiveCopiesSharedPayload) {
  wm::KvBlockAllocator arena(4, 4, 2, 8);
  const std::int32_t id = arena.allocate();
  for (int layer = 0; layer < 2; ++layer)
    for (int row = 0; row < 4; ++row)
      for (int c = 0; c < 8; ++c) {
        arena.key_row(id, layer, row)[c] =
            static_cast<float>(100 * layer + 10 * row + c);
        arena.value_row(id, layer, row)[c] =
            -static_cast<float>(100 * layer + 10 * row + c);
      }
  // Exclusive owner: no copy, same id.
  EXPECT_EQ(arena.make_exclusive(id), id);
  EXPECT_EQ(arena.stats().cow_copies, 0u);

  arena.add_ref(id);
  const std::int32_t copy = arena.make_exclusive(id);
  ASSERT_GE(copy, 0);
  EXPECT_NE(copy, id);
  EXPECT_EQ(arena.ref_count(id), 1);
  EXPECT_EQ(arena.ref_count(copy), 1);
  EXPECT_EQ(arena.stats().cow_copies, 1u);
  for (int layer = 0; layer < 2; ++layer)
    for (int row = 0; row < 4; ++row) {
      EXPECT_EQ(0, std::memcmp(arena.key_row(id, layer, row),
                               arena.key_row(copy, layer, row),
                               8 * sizeof(float)));
      EXPECT_EQ(0, std::memcmp(arena.value_row(id, layer, row),
                               arena.value_row(copy, layer, row),
                               8 * sizeof(float)));
    }
}

TEST(KvBlockAlloc, MakeExclusiveExhaustionLeavesRefcount) {
  wm::KvBlockAllocator arena(2, 4, 1, 8);
  const std::int32_t a = arena.allocate();
  (void)arena.allocate();  // arena now full
  arena.add_ref(a);
  EXPECT_EQ(arena.make_exclusive(a), -1);
  EXPECT_EQ(arena.ref_count(a), 2);
  EXPECT_EQ(arena.stats().failed_allocations, 1u);
}

TEST(KvBlockAlloc, FreedBlocksAreReusedWithoutFragmentation) {
  wm::KvBlockAllocator arena(8, 4, 1, 8);
  std::vector<std::int32_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(arena.allocate());
  // Free every other block, then reallocate: uniform blocks mean any free
  // block satisfies any request — the freed ids come straight back.
  std::set<std::int32_t> freed;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    arena.release(ids[i]);
    freed.insert(ids[i]);
  }
  EXPECT_EQ(arena.free_blocks(), 4);
  for (int i = 0; i < 4; ++i) {
    const std::int32_t id = arena.allocate();
    EXPECT_TRUE(freed.count(id)) << "expected a recycled block";
  }
  EXPECT_EQ(arena.allocate(), -1);
}

// --- paged KvCache vs monolithic ------------------------------------------

TEST(PagedKvCache, BitIdenticalToMonolithic) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 11);
  Rng rng(3);
  const std::vector<std::int32_t> tokens =
      random_prompt(rng, 20, 20, cfg.vocab);
  for (int block_size : {1, 3, 16}) {
    wm::KvBlockAllocator arena(64, block_size, cfg.n_layer, cfg.d_model);
    wm::Transformer::KvCache mono = model.make_cache();
    wm::Transformer::KvCache paged = model.make_paged_cache(&arena);
    ASSERT_TRUE(paged.paged());
    for (std::int32_t t : tokens) {
      auto a = model.decode_step(mono, t);
      auto b = model.decode_step(paged, t);
      expect_same_logits(a, b);
    }
    EXPECT_TRUE(paged.paged()) << "no materialize expected here";
    EXPECT_EQ(paged.length, mono.length);
  }
}

TEST(PagedKvCache, CloneSharesBlocksAndCowDiverges) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 11);
  wm::KvBlockAllocator arena(64, 4, cfg.n_layer, cfg.d_model);
  Rng rng(5);
  const std::vector<std::int32_t> prefix = random_prompt(rng, 10, 10, cfg.vocab);

  wm::Transformer::KvCache paged = model.make_paged_cache(&arena);
  for (std::int32_t t : prefix) model.decode_step(paged, t);
  const int blocks_before = arena.stats().in_use;
  wm::Transformer::KvCache shared = paged.clone();
  // A paged clone is O(blocks): it shares instead of copying payload.
  EXPECT_EQ(arena.stats().in_use, blocks_before);
  EXPECT_EQ(arena.stats().cow_copies, 0u);

  // Diverge: parent and clone append different tokens. Appending into the
  // shared partial tail block must copy-on-write, leaving the other copy's
  // rows untouched.
  wm::Transformer::KvCache mono_a = model.make_cache();
  wm::Transformer::KvCache mono_b = model.make_cache();
  for (std::int32_t t : prefix) {
    model.decode_step(mono_a, t);
    model.decode_step(mono_b, t);
  }
  for (int i = 0; i < 6; ++i) {
    const std::int32_t ta = static_cast<std::int32_t>(i);
    const std::int32_t tb = static_cast<std::int32_t>(cfg.vocab - 1 - i);
    expect_same_logits(model.decode_step(paged, ta),
                       model.decode_step(mono_a, ta));
    expect_same_logits(model.decode_step(shared, tb),
                       model.decode_step(mono_b, tb));
  }
  EXPECT_GT(arena.stats().cow_copies, 0u);
}

TEST(PagedKvCache, MaterializesOnExhaustionAndStaysIdentical) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 11);
  // Room for only 8 rows: the 9th append exhausts the arena and the cache
  // must convert itself to monolithic mid-decode, bit-identically.
  wm::KvBlockAllocator arena(2, 4, cfg.n_layer, cfg.d_model);
  wm::Transformer::KvCache paged = model.make_paged_cache(&arena);
  wm::Transformer::KvCache mono = model.make_cache();
  Rng rng(7);
  const std::vector<std::int32_t> tokens =
      random_prompt(rng, 20, 20, cfg.vocab);
  for (std::int32_t t : tokens)
    expect_same_logits(model.decode_step(paged, t),
                       model.decode_step(mono, t));
  EXPECT_FALSE(paged.paged()) << "expected materialize fallback";
  EXPECT_EQ(paged.length, static_cast<int>(tokens.size()));
  // Every block went back to the free list.
  EXPECT_EQ(arena.free_blocks(), 2);
}

TEST(PagedKvCache, TruncateReleasesTailBlocks) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 11);
  wm::KvBlockAllocator arena(16, 4, cfg.n_layer, cfg.d_model);
  wm::Transformer::KvCache paged = model.make_paged_cache(&arena);
  for (std::int32_t t = 0; t < 15; ++t) model.decode_step(paged, t);
  EXPECT_EQ(arena.stats().in_use, 4);  // ceil(15/4)
  paged.truncate(5);
  EXPECT_EQ(arena.stats().in_use, 2);  // ceil(5/4)
  // Decoding resumes from the truncation point exactly like a monolithic
  // cache that ingested the surviving prefix.
  wm::Transformer::KvCache mono = model.make_cache();
  for (std::int32_t t = 0; t < 5; ++t) model.decode_step(mono, t);
  for (std::int32_t t = 40; t < 46; ++t)
    expect_same_logits(model.decode_step(paged, t),
                       model.decode_step(mono, t));
}

TEST(PagedKvCache, BeamSearchFromPagedWarmCacheMatches) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 11);
  wm::KvBlockAllocator arena(64, 4, cfg.n_layer, cfg.d_model);
  Rng rng(9);
  const std::vector<std::int32_t> prompt =
      random_prompt(rng, 12, 12, cfg.vocab);

  wm::Transformer::BeamOptions beam;
  beam.beam_width = 3;
  beam.max_new_tokens = 8;
  const std::vector<std::int32_t> cold = model.generate_beam(prompt, beam);

  // Warm roots: one monolithic and one paged prefill of the same prompt.
  wm::Transformer::KvCache mono = model.make_cache();
  wm::Transformer::KvCache paged = model.make_paged_cache(&arena);
  const auto kept = model.kept_prompt(prompt, beam.max_new_tokens);
  for (std::int32_t t : kept) {
    model.decode_step(mono, t);
    model.decode_step(paged, t);
  }
  wm::Transformer::BeamOptions warm_mono = beam;
  warm_mono.warm_cache = &mono;
  wm::Transformer::BeamOptions warm_paged = beam;
  warm_paged.warm_cache = &paged;
  EXPECT_EQ(model.generate_beam(prompt, warm_mono), cold);
  EXPECT_EQ(model.generate_beam(prompt, warm_paged), cold);
}

// --- batched decode step --------------------------------------------------

TEST(DecodeStepBatch, MatchesSequentialAtAnyThreadCount) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 13);
  Rng rng(21);
  // Four sequences at different positions, mixed paged/monolithic.
  std::vector<std::vector<std::int32_t>> prefixes;
  for (int s = 0; s < 4; ++s)
    prefixes.push_back(random_prompt(rng, 1 + 3 * s, 1 + 3 * s, cfg.vocab));

  for (int threads : {1, 4}) {
    ForceParallel force;
    ThreadPool::set_global_threads(threads);
    wm::KvBlockAllocator arena(64, 4, cfg.n_layer, cfg.d_model);
    std::vector<wm::Transformer::KvCache> batched, sequential;
    for (int s = 0; s < 4; ++s) {
      batched.push_back(s % 2 == 0 ? model.make_paged_cache(&arena)
                                   : model.make_cache());
      sequential.push_back(model.make_cache());
      for (std::int32_t t : prefixes[static_cast<std::size_t>(s)]) {
        model.decode_step(batched.back(), t);
        model.decode_step(sequential.back(), t);
      }
    }
    for (int step = 0; step < 6; ++step) {
      std::vector<wm::Transformer::KvCache*> caches;
      std::vector<std::int32_t> tokens;
      for (int s = 0; s < 4; ++s) {
        caches.push_back(&batched[static_cast<std::size_t>(s)]);
        tokens.push_back(static_cast<std::int32_t>((7 * step + s) %
                                                   cfg.vocab));
      }
      model.decode_step_batch(caches, tokens);
      for (int s = 0; s < 4; ++s) {
        auto expected = model.decode_step(
            sequential[static_cast<std::size_t>(s)],
            tokens[static_cast<std::size_t>(s)]);
        expect_same_logits(batched[static_cast<std::size_t>(s)].logits,
                           expected);
      }
    }
  }
  ThreadPool::set_global_threads(0);
}

// --- ContinuousScheduler parity -------------------------------------------

namespace {

struct Reference {
  std::vector<std::int32_t> tokens;
  wm::Transformer::GenerateStatus status;
};

// Sequential generate() with a fresh deadline of the same budget.
Reference run_reference(const wm::Transformer& model,
                        const std::vector<std::int32_t>& prompt,
                        int max_new, std::int32_t stop, float temperature,
                        int top_k, std::uint64_t seed,
                        std::int64_t deadline_checks) {
  Reference ref;
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = max_new;
  gen.stop_token = stop;
  gen.temperature = temperature;
  gen.top_k = top_k;
  gen.sample_seed = seed;
  if (deadline_checks >= 0) gen.deadline = Deadline::after_checks(deadline_checks);
  gen.status = &ref.status;
  ref.tokens = model.generate(prompt, gen);
  return ref;
}

}  // namespace

TEST(ContinuousScheduler, GreedyMatchesGenerate) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  wm::KvBlockAllocator arena(256, 4, cfg.n_layer, cfg.d_model);
  Rng rng(31);

  std::vector<ws::SeqRequest> requests(6);
  std::vector<Reference> expected;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ws::SeqRequest& req = requests[i];
    req.prompt = i == 4 ? std::vector<std::int32_t>{}  // empty prompt
                        : random_prompt(rng, 3, 20, cfg.vocab);
    req.max_new_tokens = i == 5 ? 0 : 4 + static_cast<int>(i) * 3;
    req.stop_token = 7;  // greedy argmax may emit it — exercises early stop
    expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                     req.stop_token, 0.0f, 0, 1, -1));
  }
  ws::SchedulerOptions options;
  options.max_in_flight = 4;
  options.arena = &arena;
  ws::ContinuousScheduler scheduler(model, options);
  std::vector<wm::Transformer::GenerateStatus> statuses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    requests[i].status = &statuses[i];
  const auto outs = scheduler.run(requests);
  ASSERT_EQ(outs.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(outs[i], expected[i].tokens) << "request " << i;
    EXPECT_EQ(statuses[i].steps_taken, expected[i].status.steps_taken);
    EXPECT_EQ(statuses[i].deadline_expired,
              expected[i].status.deadline_expired);
  }
  EXPECT_EQ(scheduler.last_run().admitted, static_cast<int>(requests.size()));
  EXPECT_LE(scheduler.last_run().peak_in_flight, 4);
  // Everything retired: all blocks returned.
  EXPECT_EQ(arena.free_blocks(), 256);
}

TEST(ContinuousScheduler, SamplingMatchesGenerate) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  Rng rng(37);
  std::vector<ws::SeqRequest> requests(5);
  std::vector<Reference> expected;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ws::SeqRequest& req = requests[i];
    req.prompt = random_prompt(rng, 3, 12, cfg.vocab);
    req.max_new_tokens = 10;
    req.temperature = 0.8f;
    req.top_k = 5;
    req.sample_seed = 1000 + i;  // distinct streams per sequence
    expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                     -1, req.temperature, req.top_k,
                                     req.sample_seed, -1));
  }
  ws::ContinuousScheduler scheduler(model);  // no arena: monolithic caches
  const auto outs = scheduler.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(outs[i], expected[i].tokens) << "request " << i;
}

TEST(ContinuousScheduler, CheckCountDeadlinesSpendIdentically) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  wm::KvBlockAllocator arena(256, 4, cfg.n_layer, cfg.d_model);
  Rng rng(41);
  // Budgets that cut during prefill (0, 2), mid-decode, and never.
  const std::int64_t budgets[] = {0, 2, 9, 14, 1000};
  std::vector<ws::SeqRequest> requests(std::size(budgets));
  std::vector<Reference> expected;
  std::vector<wm::Transformer::GenerateStatus> statuses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ws::SeqRequest& req = requests[i];
    req.prompt = random_prompt(rng, 6, 10, cfg.vocab);
    req.max_new_tokens = 8;
    req.deadline = Deadline::after_checks(budgets[i]);
    req.status = &statuses[i];
    expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                     -1, 0.0f, 0, 1, budgets[i]));
  }
  ws::SchedulerOptions options;
  options.max_in_flight = 3;  // forces waves: budgets must not bleed
  options.arena = &arena;
  ws::ContinuousScheduler scheduler(model, options);
  const auto outs = scheduler.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(outs[i], expected[i].tokens) << "budget " << budgets[i];
    EXPECT_EQ(statuses[i].deadline_expired,
              expected[i].status.deadline_expired)
        << "budget " << budgets[i];
    EXPECT_EQ(statuses[i].steps_taken, expected[i].status.steps_taken)
        << "budget " << budgets[i];
  }
}

TEST(ContinuousScheduler, WarmCacheAndSnapshotParity) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  wm::KvBlockAllocator arena(256, 4, cfg.n_layer, cfg.d_model);
  Rng rng(43);
  const std::vector<std::int32_t> prompt = random_prompt(rng, 10, 10, cfg.vocab);
  const int max_new = 6;

  // Reference: sequential generate, capturing the prompt snapshot.
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = max_new;
  wm::Transformer::KvCache ref_snapshot;
  gen.prompt_snapshot = &ref_snapshot;
  const auto cold = model.generate(prompt, gen);

  // Scheduler run capturing a (paged) snapshot.
  std::vector<ws::SeqRequest> first(1);
  first[0].prompt = prompt;
  first[0].max_new_tokens = max_new;
  wm::Transformer::KvCache sched_snapshot;
  first[0].prompt_snapshot = &sched_snapshot;
  ws::SchedulerOptions options;
  options.arena = &arena;
  ws::ContinuousScheduler scheduler(model, options);
  auto outs = scheduler.run(first);
  EXPECT_EQ(outs[0], cold);
  ASSERT_TRUE(sched_snapshot.paged());
  EXPECT_EQ(sched_snapshot.length, ref_snapshot.length);

  // Warm restart from each snapshot (full prefix hit) must reproduce the
  // cold bytes — through the scheduler and through generate().
  std::vector<ws::SeqRequest> warm(1);
  warm[0].prompt = prompt;
  warm[0].max_new_tokens = max_new;
  wm::Transformer::KvCache warm_clone = sched_snapshot.clone();
  warm[0].warm_cache = &warm_clone;
  std::vector<wm::Transformer::GenerateStatus> statuses(1);
  warm[0].status = &statuses[0];
  outs = scheduler.run(warm);
  EXPECT_EQ(outs[0], cold);
  EXPECT_EQ(statuses[0].prefill_tokens_reused, ref_snapshot.length);

  wm::Transformer::KvCache warm_mono = ref_snapshot.clone();
  wm::Transformer::GenerateOptions warm_gen;
  warm_gen.max_new_tokens = max_new;
  warm_gen.warm_cache = &warm_mono;
  EXPECT_EQ(model.generate(prompt, warm_gen), cold);
}

TEST(ContinuousScheduler, FuzzInterleavedAdmissionsMatchSequential) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 19);
  for (std::uint64_t round = 0; round < 6; ++round) {
    Rng rng(1000 + round);
    // A deliberately tight arena: some admissions fall back to monolithic
    // caches and long sequences can exhaust it mid-flight (materialize).
    wm::KvBlockAllocator arena(static_cast<int>(rng.uniform_int(6, 40)), 4,
                               cfg.n_layer, cfg.d_model);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 10));
    std::vector<ws::SeqRequest> requests(n);
    std::vector<Reference> expected;
    std::vector<wm::Transformer::GenerateStatus> statuses(n);
    for (std::size_t i = 0; i < n; ++i) {
      ws::SeqRequest& req = requests[i];
      req.prompt = random_prompt(rng, 1, 24, cfg.vocab);
      req.max_new_tokens = static_cast<int>(rng.uniform_int(1, 12));
      req.stop_token = rng.chance(0.5) ? 7 : -1;
      req.arrival_step = static_cast<int>(rng.uniform_int(0, 20));
      req.status = &statuses[i];
      // ~half the requests decode under a tight check budget — the
      // fault-injected "slow decode" shape from the serving layer.
      const std::int64_t budget =
          rng.chance(0.5) ? rng.uniform_int(0, 30) : -1;
      if (budget >= 0) req.deadline = Deadline::after_checks(budget);
      expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                       req.stop_token, 0.0f, 0, 1, budget));
    }
    ws::SchedulerOptions options;
    options.max_in_flight = static_cast<int>(rng.uniform_int(1, 4));
    options.arena = &arena;
    ws::ContinuousScheduler scheduler(model, options);
    const auto outs = scheduler.run(requests);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(outs[i], expected[i].tokens)
          << "round " << round << " request " << i;
      EXPECT_EQ(statuses[i].deadline_expired,
                expected[i].status.deadline_expired)
          << "round " << round << " request " << i;
      EXPECT_EQ(statuses[i].steps_taken, expected[i].status.steps_taken)
          << "round " << round << " request " << i;
    }
    // Every sequence retired; nothing leaked from the arena.
    EXPECT_EQ(arena.free_blocks(), arena.capacity())
        << "round " << round;
  }
}

// --- service-level continuous batching ------------------------------------

namespace {

using wisdom::testutil::serving_model;
using wisdom::testutil::serving_tokenizer;

std::vector<ws::SuggestionRequest> serving_requests() {
  std::vector<ws::SuggestionRequest> requests(7);
  const char* prompts[] = {"Install nginx",  "Start redis",
                           "Copy a file",    "Install nginx",
                           "Enable service", "Install nginx",
                           "Remove package"};
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].prompt = prompts[i];
    requests[i].indent = static_cast<int>(i % 3);
  }
  return requests;
}

void expect_same_payload(const ws::SuggestionResponse& a,
                         const ws::SuggestionResponse& b, std::size_t i) {
  EXPECT_EQ(a.snippet, b.snippet) << "request " << i;
  EXPECT_EQ(a.ok, b.ok) << "request " << i;
  EXPECT_EQ(a.schema_correct, b.schema_correct) << "request " << i;
  EXPECT_EQ(a.generated_tokens, b.generated_tokens) << "request " << i;
  EXPECT_EQ(a.degraded, b.degraded) << "request " << i;
  EXPECT_EQ(a.error, b.error) << "request " << i;
}

}  // namespace

TEST(ContinuousService, BatchMatchesRequestLevelAndSequential) {
  const wt::BpeTokenizer tokenizer = serving_tokenizer();
  const wm::Transformer model = serving_model(tokenizer);
  const auto requests = serving_requests();
  for (bool caches_on : {false, true}) {
    ws::ServiceOptions options;
    options.prefix_cache_enabled = caches_on;
    options.response_cache_enabled = caches_on;

    ws::ServiceOptions sequential_options = options;
    ws::InferenceService sequential(model, tokenizer, sequential_options);
    std::vector<ws::SuggestionResponse> expected;
    for (const auto& r : requests) expected.push_back(sequential.suggest(r));

    ws::ServiceOptions request_level = options;
    request_level.continuous_batching = false;
    ws::InferenceService pooled(model, tokenizer, request_level);
    const auto pooled_responses = pooled.suggest_batch(requests);

    ws::ServiceOptions continuous = options;
    continuous.max_batch_sequences = 3;  // narrower than the batch
    ws::InferenceService batched(model, tokenizer, continuous);
    const auto responses = batched.suggest_batch(requests);

    ASSERT_EQ(responses.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      expect_same_payload(responses[i], expected[i], i);
      expect_same_payload(responses[i], pooled_responses[i], i);
    }
    const ws::ServiceStats stats = batched.stats_snapshot();
    EXPECT_EQ(stats.requests, requests.size());
    EXPECT_EQ(stats.latencies_ms.size(), requests.size());
    EXPECT_GT(stats.total_wall_ms, 0.0);
  }
}

TEST(ContinuousService, FaultInjectionMatchesSequential) {
  const wt::BpeTokenizer tokenizer = serving_tokenizer();
  const wm::Transformer model = serving_model(tokenizer);
  const auto requests = serving_requests();

  // Generate-failure credits burn in arrival order on both paths.
  {
    ws::FaultInjector faults;
    ws::ServiceOptions options;
    options.faults = &faults;
    ws::InferenceService sequential(model, tokenizer, options);
    faults.set_fail_generate(2);
    std::vector<ws::SuggestionResponse> expected;
    for (const auto& r : requests) expected.push_back(sequential.suggest(r));

    ws::FaultInjector batch_faults;
    ws::ServiceOptions continuous = options;
    continuous.faults = &batch_faults;
    ws::InferenceService batched(model, tokenizer, continuous);
    batch_faults.set_fail_generate(2);
    const auto responses = batched.suggest_batch(requests);
    for (std::size_t i = 0; i < requests.size(); ++i)
      expect_same_payload(responses[i], expected[i], i);
  }
  // Slow decode: every request under a tight check-count budget.
  {
    ws::FaultInjector faults;
    ws::ServiceOptions options;
    options.faults = &faults;
    ws::InferenceService sequential(model, tokenizer, options);
    faults.set_slow_decode_after_tokens(6);
    std::vector<ws::SuggestionResponse> expected;
    for (const auto& r : requests) expected.push_back(sequential.suggest(r));

    ws::FaultInjector batch_faults;
    ws::ServiceOptions continuous = options;
    continuous.faults = &batch_faults;
    ws::InferenceService batched(model, tokenizer, continuous);
    batch_faults.set_slow_decode_after_tokens(6);
    const auto responses = batched.suggest_batch(requests);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      expect_same_payload(responses[i], expected[i], i);
      EXPECT_EQ(responses[i].error, ws::ServiceError::DeadlineExceeded);
    }
  }
}

TEST(ContinuousService, TinyArenaFallsBackMonolithically) {
  const wt::BpeTokenizer tokenizer = serving_tokenizer();
  const wm::Transformer model = serving_model(tokenizer);
  const auto requests = serving_requests();

  ws::InferenceService sequential(model, tokenizer);
  std::vector<ws::SuggestionResponse> expected;
  for (const auto& r : requests) expected.push_back(sequential.suggest(r));

  ws::ServiceOptions options;
  options.kv_arena_blocks = 2;  // almost nothing: most seqs go monolithic
  ws::InferenceService batched(model, tokenizer, options);
  const auto responses = batched.suggest_batch(requests);
  for (std::size_t i = 0; i < requests.size(); ++i)
    expect_same_payload(responses[i], expected[i], i);
  const auto* fallbacks = batched.metrics().find_counter(
      "wisdom_sched_monolithic_fallback_total");
  ASSERT_NE(fallbacks, nullptr);
  EXPECT_GT(fallbacks->value(), 0u);
}

// --- KV-pressure preemption and the scheduler watchdog ---------------------

TEST(SchedulerPreemption, RealPressurePreemptsAndStaysByteIdentical) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  // Each sequence's worst case is 7 blocks (8 prompt + 20 generated rows,
  // block size 4); two in flight need 14. A 10-block arena admits both
  // paged (admission sees a near-empty arena) and must preempt mid-flight.
  wm::KvBlockAllocator arena(10, 4, cfg.n_layer, cfg.d_model);
  Rng rng(53);

  std::vector<ws::SeqRequest> requests(3);
  std::vector<Reference> expected;
  std::vector<wm::Transformer::GenerateStatus> statuses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ws::SeqRequest& req = requests[i];
    req.prompt = random_prompt(rng, 8, 8, cfg.vocab);
    req.max_new_tokens = 20;
    if (i == 2) {  // one sampling sequence in the mix
      req.temperature = 0.8f;
      req.top_k = 5;
      req.sample_seed = 77;
    }
    req.status = &statuses[i];
    expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                     -1, req.temperature, req.top_k,
                                     req.sample_seed, -1));
  }
  ws::SchedulerOptions options;
  options.max_in_flight = 2;
  options.arena = &arena;
  ws::ContinuousScheduler scheduler(model, options);
  const auto outs = scheduler.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(outs[i], expected[i].tokens) << "request " << i;
    EXPECT_EQ(statuses[i].steps_taken, expected[i].status.steps_taken)
        << "request " << i;
    EXPECT_FALSE(statuses[i].deadline_expired) << "request " << i;
  }
  const ws::SchedulerRunStats& stats = scheduler.last_run();
  EXPECT_GT(stats.preemptions, 0);
  EXPECT_GT(stats.preempt_blocks_released, 0);
  EXPECT_GT(stats.preempt_recompute_tokens, 0);
  // The derived watchdog bound never trips on a fault-free run — even a
  // preemption-heavy one on a tiny arena.
  EXPECT_EQ(stats.watchdog_retired, 0);
  // Preempted-and-resumed sequences returned every block on retirement.
  EXPECT_EQ(arena.free_blocks(), arena.capacity());
}

TEST(SchedulerPreemption, InjectedExhaustionChurnsWithinCaps) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  wm::KvBlockAllocator arena(256, 4, cfg.n_layer, cfg.d_model);
  Rng rng(59);
  ws::FaultInjector faults;
  // From step 3 on the pressure check sees zero free blocks; real
  // allocations still succeed, so decodes complete and the churn is pure
  // preemption/requeue traffic.
  faults.set_arena_exhaust_at_step(3);

  const int kMaxPreempt = 2;
  std::vector<ws::SeqRequest> requests(4);
  std::vector<Reference> expected;
  std::vector<wm::Transformer::GenerateStatus> statuses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ws::SeqRequest& req = requests[i];
    req.prompt = random_prompt(rng, 4, 12, cfg.vocab);
    req.max_new_tokens = 10;
    req.status = &statuses[i];
    expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                     -1, 0.0f, 0, 1, -1));
  }
  ws::SchedulerOptions options;
  options.max_in_flight = 3;
  options.arena = &arena;
  options.max_preemptions_per_seq = kMaxPreempt;
  options.faults = &faults;
  ws::ContinuousScheduler scheduler(model, options);
  const auto outs = scheduler.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(outs[i], expected[i].tokens) << "request " << i;
    EXPECT_EQ(statuses[i].steps_taken, expected[i].status.steps_taken)
        << "request " << i;
  }
  const ws::SchedulerRunStats& stats = scheduler.last_run();
  EXPECT_GT(stats.preemptions, 0);
  // The per-sequence cap bounds total churn: once every sequence has been
  // victimized kMaxPreempt times, preemption stops and decoding proceeds
  // against the (injected) exhaustion via monolithic materialization.
  EXPECT_LE(stats.preemptions,
            kMaxPreempt * static_cast<int>(requests.size()));
  EXPECT_EQ(stats.watchdog_retired, 0);
  EXPECT_EQ(arena.free_blocks(), arena.capacity());
}

TEST(SchedulerPreemption, FiniteStallDelaysButStaysByteIdentical) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  wm::KvBlockAllocator arena(64, 4, cfg.n_layer, cfg.d_model);
  Rng rng(61);
  ws::FaultInjector faults;
  faults.set_stall_steps(4);  // four wedged iterations, then normal

  std::vector<ws::SeqRequest> requests(3);
  std::vector<Reference> expected;
  for (auto& req : requests) {
    req.prompt = random_prompt(rng, 3, 10, cfg.vocab);
    req.max_new_tokens = 6;
    expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                     -1, 0.0f, 0, 1, -1));
  }
  ws::SchedulerOptions options;
  options.arena = &arena;
  options.faults = &faults;
  ws::ContinuousScheduler scheduler(model, options);
  const auto outs = scheduler.run(requests);
  for (std::size_t i = 0; i < requests.size(); ++i)
    EXPECT_EQ(outs[i], expected[i].tokens) << "request " << i;
  EXPECT_EQ(scheduler.last_run().watchdog_retired, 0);
  EXPECT_EQ(arena.free_blocks(), arena.capacity());
}

TEST(SchedulerWatchdog, InfiniteStallForceRetiresAsDeadlineExpired) {
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  wm::KvBlockAllocator arena(64, 4, cfg.n_layer, cfg.d_model);
  Rng rng(67);
  ws::FaultInjector faults;
  faults.set_stall_steps(-1);  // wedged forever: only the watchdog exits

  const int kBound = 10;
  std::vector<ws::SeqRequest> requests(2);
  std::vector<wm::Transformer::GenerateStatus> statuses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].prompt = random_prompt(rng, 4, 8, cfg.vocab);
    requests[i].max_new_tokens = 8;
    requests[i].status = &statuses[i];
  }
  ws::SchedulerOptions options;
  options.arena = &arena;
  options.watchdog_iterations = kBound;
  options.faults = &faults;
  ws::ContinuousScheduler scheduler(model, options);
  const auto outs = scheduler.run(requests);  // must terminate
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(outs[i].empty()) << "request " << i;
    EXPECT_TRUE(statuses[i].deadline_expired) << "request " << i;
  }
  const ws::SchedulerRunStats& stats = scheduler.last_run();
  EXPECT_EQ(stats.watchdog_retired, static_cast<int>(requests.size()));
  // No sequence outlived its bound by more than the retiring iteration.
  EXPECT_LE(stats.max_seq_age, kBound + 1);
  EXPECT_EQ(arena.free_blocks(), arena.capacity());
}

TEST(ContinuousService, InjectedExhaustionIsByteTransparentThroughService) {
  const wt::BpeTokenizer tokenizer = serving_tokenizer();
  const wm::Transformer model = serving_model(tokenizer);
  const auto requests = serving_requests();

  ws::InferenceService sequential(model, tokenizer);
  std::vector<ws::SuggestionResponse> expected;
  for (const auto& r : requests) expected.push_back(sequential.suggest(r));

  ws::FaultInjector faults;
  faults.set_arena_exhaust_at_step(2);
  ws::ServiceOptions options;
  options.faults = &faults;
  ws::InferenceService batched(model, tokenizer, options);
  const auto responses = batched.suggest_batch(requests);
  for (std::size_t i = 0; i < requests.size(); ++i)
    expect_same_payload(responses[i], expected[i], i);
  const auto* preempted =
      batched.metrics().find_counter("wisdom_sched_preempt_total");
  ASSERT_NE(preempted, nullptr);
  EXPECT_GT(preempted->value(), 0u);
}
