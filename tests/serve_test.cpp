#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "data/packing.hpp"
#include "serve/service.hpp"
#include "text/bpe.hpp"

namespace wc = wisdom::core;
namespace wd = wisdom::data;
namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;

namespace {

// One trained micro-model shared by the suite (training takes ~2s).
struct Fixture {
  wt::BpeTokenizer tokenizer;
  wm::Transformer model;

  Fixture()
      : tokenizer(wt::BpeTokenizer::train(corpus(), 300)),
        model(config(), 21) {
    // Varied samples (different packages, lengths) so windows do not align
    // and the model cannot overfit absolute positions.
    std::vector<std::string> texts;
    const char* pkgs[] = {"nginx", "redis", "git", "curl", "vim",
                          "htop", "jq", "wget"};
    for (int rep = 0; rep < 12; ++rep) {
      for (const char* pkg : pkgs) {
        texts.push_back(std::string("- name: Install ") + pkg +
                        "\n  ansible.builtin.apt:\n    name: " + pkg +
                        "\n    state: present\n");
      }
    }
    auto set = wd::pack_samples(tokenizer, texts, 48);
    wc::TrainConfig tc;
    tc.epochs = 30;
    tc.micro_batch = 4;
    tc.grad_accum = 1;  // small set: more optimizer steps per epoch
    tc.lr = 3e-3f;
    wc::train_model(model, set, nullptr, tc);
  }

  static std::string corpus() {
    return "- name: Install nginx\n"
           "  ansible.builtin.apt:\n"
           "    name: nginx\n"
           "    state: present\n";
  }
  wm::ModelConfig config() const {
    wm::ModelConfig cfg;
    cfg.vocab = static_cast<int>(tokenizer.vocab_size());
    cfg.ctx = 48;
    cfg.d_model = 24;
    cfg.n_head = 2;
    cfg.n_layer = 2;
    cfg.d_ff = 48;
    return cfg;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

}  // namespace

TEST(Service, SuggestsTrainedCompletion) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  request.indent = 0;
  auto response = service.suggest(request);
  ASSERT_TRUE(response.ok);
  EXPECT_NE(response.snippet.find("- name: Install nginx"),
            std::string::npos);
  EXPECT_NE(response.snippet.find("ansible.builtin.apt"), std::string::npos);
  EXPECT_TRUE(response.schema_correct) << response.snippet;
  EXPECT_GT(response.latency_ms, 0.0);
  EXPECT_GT(response.generated_tokens, 0);
}

TEST(Service, EmptyPromptRejected) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.prompt = "";
  auto response = service.suggest(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(service.stats().requests, 1u);
}

TEST(Service, NegativeIndentRejected) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  request.indent = -1;
  EXPECT_FALSE(service.suggest(request).ok);
}

TEST(Service, IndentedSuggestionForPlaybookContext) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.context =
      "- hosts: web\n"
      "  tasks:\n";
  request.prompt = "Install nginx";
  request.indent = 4;
  auto response = service.suggest(request);
  EXPECT_NE(response.snippet.find("    - name: Install nginx"),
            std::string::npos);
}

TEST(Service, StatsAccumulate) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  service.suggest(request);
  service.suggest(request);
  service.record_accept();
  service.record_reject();
  service.record_accept();
  const auto& stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_NEAR(stats.acceptance_rate(), 2.0 / 3.0, 1e-9);
  EXPECT_GT(stats.mean_latency_ms(), 0.0);
}

TEST(Service, EmptyStats) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  EXPECT_EQ(service.stats().acceptance_rate(), 0.0);
  EXPECT_EQ(service.stats().mean_latency_ms(), 0.0);
}
