#include <gtest/gtest.h>

#include "core/trainer.hpp"
#include "data/packing.hpp"
#include "serve/service.hpp"
#include "text/bpe.hpp"

namespace wc = wisdom::core;
namespace wd = wisdom::data;
namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;

namespace {

// One trained micro-model shared by the suite (training takes ~2s).
struct Fixture {
  wt::BpeTokenizer tokenizer;
  wm::Transformer model;

  Fixture()
      : tokenizer(wt::BpeTokenizer::train(corpus(), 300)),
        model(config(), 21) {
    // Varied samples (different packages, lengths) so windows do not align
    // and the model cannot overfit absolute positions.
    std::vector<std::string> texts;
    const char* pkgs[] = {"nginx", "redis", "git", "curl", "vim",
                          "htop", "jq", "wget"};
    for (int rep = 0; rep < 12; ++rep) {
      for (const char* pkg : pkgs) {
        texts.push_back(std::string("- name: Install ") + pkg +
                        "\n  ansible.builtin.apt:\n    name: " + pkg +
                        "\n    state: present\n");
      }
    }
    auto set = wd::pack_samples(tokenizer, texts, 48);
    wc::TrainConfig tc;
    tc.epochs = 30;
    tc.micro_batch = 4;
    tc.grad_accum = 1;  // small set: more optimizer steps per epoch
    tc.lr = 3e-3f;
    wc::train_model(model, set, nullptr, tc);
  }

  static std::string corpus() {
    return "- name: Install nginx\n"
           "  ansible.builtin.apt:\n"
           "    name: nginx\n"
           "    state: present\n";
  }
  wm::ModelConfig config() const {
    wm::ModelConfig cfg;
    cfg.vocab = static_cast<int>(tokenizer.vocab_size());
    cfg.ctx = 48;
    cfg.d_model = 24;
    cfg.n_head = 2;
    cfg.n_layer = 2;
    cfg.d_ff = 48;
    return cfg;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

}  // namespace

TEST(Service, SuggestsTrainedCompletion) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  request.indent = 0;
  auto response = service.suggest(request);
  ASSERT_TRUE(response.ok);
  EXPECT_NE(response.snippet.find("- name: Install nginx"),
            std::string::npos);
  EXPECT_NE(response.snippet.find("ansible.builtin.apt"), std::string::npos);
  EXPECT_TRUE(response.schema_correct) << response.snippet;
  EXPECT_GT(response.latency_ms, 0.0);
  EXPECT_GT(response.generated_tokens, 0);
}

TEST(Service, EmptyPromptRejected) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.prompt = "";
  auto response = service.suggest(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(service.stats().requests, 1u);
}

TEST(Service, NegativeIndentRejected) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  request.indent = -1;
  EXPECT_FALSE(service.suggest(request).ok);
}

TEST(Service, IndentedSuggestionForPlaybookContext) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.context =
      "- hosts: web\n"
      "  tasks:\n";
  request.prompt = "Install nginx";
  request.indent = 4;
  auto response = service.suggest(request);
  EXPECT_NE(response.snippet.find("    - name: Install nginx"),
            std::string::npos);
}

TEST(Service, StatsAccumulate) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  service.suggest(request);
  service.suggest(request);
  service.record_accept();
  service.record_reject();
  service.record_accept();
  const auto& stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_NEAR(stats.acceptance_rate(), 2.0 / 3.0, 1e-9);
  EXPECT_GT(stats.mean_latency_ms(), 0.0);
}

TEST(Service, EmptyStats) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer);
  EXPECT_EQ(service.stats().acceptance_rate(), 0.0);
  EXPECT_EQ(service.stats().mean_latency_ms(), 0.0);
}

// --- lint policy matrix -------------------------------------------------------

TEST(LintPolicy, ValidSuggestionsPassEveryPolicyUnchanged) {
  auto& f = fixture();
  ws::InferenceService off(f.model, f.tokenizer);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  auto baseline = off.suggest(request);
  ASSERT_TRUE(baseline.ok);
  ASSERT_TRUE(baseline.schema_correct);
  EXPECT_TRUE(baseline.diagnostics.empty());
  EXPECT_FALSE(baseline.repaired);

  for (ws::LintPolicy policy :
       {ws::LintPolicy::Annotate, ws::LintPolicy::Repair,
        ws::LintPolicy::RejectDegraded}) {
    ws::ServiceOptions options;
    options.lint_policy = policy;
    ws::InferenceService service(f.model, f.tokenizer, options);
    auto response = service.suggest(request);
    ASSERT_TRUE(response.ok) << ws::lint_policy_name(policy);
    // Greedy decoding + an already-valid snippet: every policy returns
    // the exact same bytes (Exact Match is untouched).
    EXPECT_EQ(response.snippet, baseline.snippet)
        << ws::lint_policy_name(policy);
    EXPECT_TRUE(response.schema_correct);
    EXPECT_FALSE(response.repaired);
    EXPECT_FALSE(response.degraded);
    EXPECT_TRUE(response.diagnostics.empty());
  }
}

TEST(LintPolicy, RejectDegradedFallsBackOnGenerateFailure) {
  auto& f = fixture();
  ws::FaultInjector faults;
  ws::ServiceOptions options;
  options.lint_policy = ws::LintPolicy::RejectDegraded;
  options.faults = &faults;
  ws::InferenceService service(f.model, f.tokenizer, options);
  faults.set_fail_generate(1);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  auto response = service.suggest(request);
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.error, ws::ServiceError::GenerateFailed);
  EXPECT_TRUE(response.schema_correct);
}

TEST(LintPolicy, RejectDegradedWithoutFallbackRefuses) {
  auto& f = fixture();
  // An untrained model generates junk or nothing; under reject-degraded
  // with the fallback disabled the request is refused outright rather
  // than answered with a snippet that fails the lint gate.
  wm::Transformer untrained(f.config(), 99);
  ws::ServiceOptions options;
  options.lint_policy = ws::LintPolicy::RejectDegraded;
  options.fallback_enabled = false;
  ws::InferenceService service(untrained, f.tokenizer, options);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  auto response = service.suggest(request);
  if (!response.schema_correct) {
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error, ws::ServiceError::LintRejected);
  }
}

TEST(LintPolicy, RejectDegradedWithFallbackAlwaysServesSchemaCorrect) {
  auto& f = fixture();
  wm::Transformer untrained(f.config(), 99);
  ws::ServiceOptions options;
  options.lint_policy = ws::LintPolicy::RejectDegraded;
  ws::InferenceService service(untrained, f.tokenizer, options);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  auto response = service.suggest(request);
  // The policy's contract: whatever the model produced, the served
  // snippet is schema-correct (repaired, or replaced by the fallback).
  EXPECT_TRUE(response.ok);
  EXPECT_TRUE(response.schema_correct);
}

TEST(LintPolicy, LintCounterFamiliesPreRegistered) {
  auto& f = fixture();
  ws::ServiceOptions options;
  options.lint_policy = ws::LintPolicy::Annotate;
  ws::InferenceService service(f.model, f.tokenizer, options);
  std::string exposition = service.metrics().expose_prometheus();
  for (const char* family :
       {"wisdom_lint_diagnostics_total", "wisdom_lint_errors_total",
        "wisdom_lint_warnings_total", "wisdom_lint_repaired_total",
        "wisdom_lint_rejected_total", "wisdom_lint_rule_fqcn_total",
        "wisdom_lint_rule_duplicate_key_total",
        "wisdom_lint_rule_old_style_args_total"}) {
    EXPECT_NE(exposition.find(family), std::string::npos) << family;
  }
}
