// Seeded chaos harness for the overload-resilient serving stack.
//
// Every test derives its schedule from WISDOM_CHAOS_SEED (default 101; CI
// loops a fixed seed set in release and TSan builds), then randomizes the
// workload shape and the fault schedule — arena size, in-flight caps,
// prompt/budget mix, injected arena exhaustion, allocation failures,
// scheduler stalls, generate failures, breaker poisoning — and checks the
// invariants that must hold under ANY schedule:
//
//   * the run terminates and yields exactly one terminal result per
//     request (a response with ok=true or a typed error; at the scheduler
//     level, a retired status per sequence),
//   * the paged-KV arena is fully freed afterwards (no leaked blocks,
//     preempted-and-resumed sequences included),
//   * no sequence outlives the watchdog bound by more than the retiring
//     iteration,
//   * fault schedules that do not wedge the scheduler stay byte-identical
//     to sequential generate() — preemption, requeue, monolithic fallback
//     and finite stalls are placement decisions, never output decisions.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "model/config.hpp"
#include "model/kv_block.hpp"
#include "model/speculative.hpp"
#include "model/transformer.hpp"
#include "nn/ops.hpp"
#include "serve/fault.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"
#include "text/bpe.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nn = wisdom::nn;
namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;
using wisdom::util::Deadline;
using wisdom::util::Rng;
using wisdom::util::ThreadPool;

namespace {

std::uint64_t chaos_seed() {
  const char* env = std::getenv("WISDOM_CHAOS_SEED");
  if (env != nullptr && *env != '\0')
    return std::strtoull(env, nullptr, 10);
  return 101;
}

// Model builders and the ForceParallel guard are shared via
// test_util.hpp with the scheduler and parity suites.
using wisdom::testutil::ForceParallel;
using wisdom::testutil::random_prompt;
using wisdom::testutil::tiny_config;

struct Reference {
  std::vector<std::int32_t> tokens;
  wm::Transformer::GenerateStatus status;
};

Reference run_reference(const wm::Transformer& model,
                        const std::vector<std::int32_t>& prompt, int max_new,
                        std::int32_t stop, float temperature, int top_k,
                        std::uint64_t seed, std::int64_t deadline_checks) {
  Reference ref;
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = max_new;
  gen.stop_token = stop;
  gen.temperature = temperature;
  gen.top_k = top_k;
  gen.sample_seed = seed;
  if (deadline_checks >= 0)
    gen.deadline = Deadline::after_checks(deadline_checks);
  gen.status = &ref.status;
  ref.tokens = model.generate(prompt, gen);
  return ref;
}

}  // namespace

// --- scheduler-level chaos -------------------------------------------------

TEST(ChaosScheduler, SeededFaultSchedulesUpholdInvariants) {
  const std::uint64_t seed = chaos_seed();
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  for (std::uint64_t round = 0; round < 8; ++round) {
    Rng rng(seed * 7919 + round);
    wm::KvBlockAllocator arena(static_cast<int>(rng.uniform_int(6, 32)), 4,
                               cfg.n_layer, cfg.d_model);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
    ws::FaultInjector faults;
    // ~1 round in 5 wedges the scheduler outright; the rest draw a random
    // mix of identity-preserving faults.
    const bool wedged = rng.chance(0.2);
    if (wedged) {
      faults.set_stall_steps(-1);
    } else {
      if (rng.chance(0.5))
        faults.set_arena_exhaust_at_step(rng.uniform_int(0, 12));
      if (rng.chance(0.4)) faults.set_fail_alloc(rng.uniform_int(1, 3));
      if (rng.chance(0.4)) faults.set_stall_steps(rng.uniform_int(1, 5));
    }
    // Wedged rounds need a tight bound so the test stays fast; live rounds
    // get one no healthy sequence can reach (byte-identity below would
    // expose a spurious retirement anyway).
    const int bound = wedged ? 12 : 2000;

    std::vector<ws::SeqRequest> requests(n);
    std::vector<Reference> expected;
    std::vector<wm::Transformer::GenerateStatus> statuses(n);
    for (std::size_t i = 0; i < n; ++i) {
      ws::SeqRequest& req = requests[i];
      req.prompt = random_prompt(rng, 1, 20, cfg.vocab);
      req.max_new_tokens = static_cast<int>(rng.uniform_int(1, 10));
      req.stop_token = rng.chance(0.3) ? 7 : -1;
      req.arrival_step = static_cast<int>(rng.uniform_int(0, 12));
      req.status = &statuses[i];
      if (rng.chance(0.3)) {
        req.temperature = 0.8f;
        req.top_k = 5;
        req.sample_seed = 1000 + i;
      }
      const std::int64_t budget =
          rng.chance(0.3) ? rng.uniform_int(0, 30) : -1;
      if (budget >= 0) req.deadline = Deadline::after_checks(budget);
      expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                       req.stop_token, req.temperature,
                                       req.top_k, req.sample_seed, budget));
    }
    ws::SchedulerOptions options;
    options.max_in_flight = static_cast<int>(rng.uniform_int(1, 4));
    options.arena = &arena;
    options.faults = &faults;
    options.watchdog_iterations = bound;
    options.max_preemptions_per_seq = static_cast<int>(rng.uniform_int(1, 3));
    ws::ContinuousScheduler scheduler(model, options);

    const auto outs = scheduler.run(requests);  // must terminate
    ASSERT_EQ(outs.size(), n) << "round " << round << " seed " << seed;
    const ws::SchedulerRunStats& stats = scheduler.last_run();
    if (wedged) {
      // Nothing ever decodes; the watchdog retires every admitted
      // sequence as deadline-expired with an empty output.
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(outs[i].empty())
            << "round " << round << " request " << i << " seed " << seed;
        EXPECT_TRUE(statuses[i].deadline_expired)
            << "round " << round << " request " << i << " seed " << seed;
      }
      EXPECT_EQ(stats.watchdog_retired, static_cast<int>(n))
          << "round " << round << " seed " << seed;
    } else {
      // Every non-wedging fault is a placement decision: outputs, step
      // counts and deadline outcomes are byte-identical to sequential
      // generate().
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(outs[i], expected[i].tokens)
            << "round " << round << " request " << i << " seed " << seed;
        EXPECT_EQ(statuses[i].steps_taken, expected[i].status.steps_taken)
            << "round " << round << " request " << i << " seed " << seed;
        EXPECT_EQ(statuses[i].deadline_expired,
                  expected[i].status.deadline_expired)
            << "round " << round << " request " << i << " seed " << seed;
      }
      EXPECT_EQ(stats.watchdog_retired, 0)
          << "round " << round << " seed " << seed;
    }
    // No sequence outlived its bound by more than the retiring iteration.
    EXPECT_LE(stats.max_seq_age, bound + 1)
        << "round " << round << " seed " << seed;
    // Every block came back, preempted-and-resumed sequences included.
    EXPECT_EQ(arena.free_blocks(), arena.capacity())
        << "round " << round << " seed " << seed;
  }
}

// --- cross-thread parity under preemption pressure -------------------------

TEST(ChaosParity, FaultFreePreemptingRunsMatchSequentialAcrossThreads) {
  const std::uint64_t seed = chaos_seed();
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  ForceParallel force;

  // Greedy and sampling sequences mixed; the arena is sized between one
  // sequence's worst case (7 blocks) and the in-flight pair's (14), so
  // admission passes and preemption must fire mid-flight.
  Rng rng(seed * 104729);
  std::vector<ws::SeqRequest> requests(4);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ws::SeqRequest& req = requests[i];
    req.prompt = random_prompt(rng, 8, 8, cfg.vocab);
    req.max_new_tokens = 20;
    if (i % 2 == 1) {
      req.temperature = 0.7f;
      req.top_k = 6;
      req.sample_seed = 500 + i;
    }
  }

  std::vector<std::vector<std::vector<std::int32_t>>> per_thread_outs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool::set_global_threads(threads);
    std::vector<Reference> expected;
    for (const auto& req : requests)
      expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                       -1, req.temperature, req.top_k,
                                       req.sample_seed, -1));
    wm::KvBlockAllocator arena(10, 4, cfg.n_layer, cfg.d_model);
    ws::SchedulerOptions options;
    options.max_in_flight = 2;
    options.arena = &arena;
    ws::ContinuousScheduler scheduler(model, options);
    const auto outs = scheduler.run(requests);
    for (std::size_t i = 0; i < requests.size(); ++i)
      EXPECT_EQ(outs[i], expected[i].tokens)
          << "threads " << threads << " request " << i << " seed " << seed;
    EXPECT_GT(scheduler.last_run().preemptions, 0) << "threads " << threads;
    EXPECT_EQ(arena.free_blocks(), arena.capacity())
        << "threads " << threads;
    per_thread_outs.push_back(outs);
  }
  ThreadPool::set_global_threads(0);
  // The kernels are bit-identical at any thread count, so the scheduler's
  // outputs must agree across thread counts too.
  ASSERT_EQ(per_thread_outs.size(), 2u);
  EXPECT_EQ(per_thread_outs[0], per_thread_outs[1]);
}

// --- speculative-decoding chaos --------------------------------------------

// Seeded fuzz over the speculative scheduler path: random draft depth k,
// deliberately tiny KV and draft arenas (preemption and monolithic
// fallback fire mid-verify), check-count deadlines that expire inside
// verify rounds, and a greedy/sampled request mix (sampled sequences must
// take the non-speculative path). Invariants, for every schedule:
//
//   * on_token never sees a non-verified token: the emitted stream equals
//     the final output exactly (drafted-but-rejected tokens are invisible),
//   * outputs, step counts and deadline outcomes stay byte-identical to
//     sequential generate() — speculation is an execution strategy, never
//     an output decision,
//   * both arenas drain to empty afterwards: preempting a speculating
//     sequence releases its draft blocks along with its KV tail.
TEST(ChaosSpeculative, SeededSpeculativeSchedulesStayVerifiedAndLeakFree) {
  const std::uint64_t seed = chaos_seed();
  const wm::ModelConfig cfg = tiny_config();
  const wm::ModelConfig draft_cfg = wisdom::testutil::tiny_draft_config();
  const wm::Transformer model(cfg, 17);
  const wm::Transformer draft(draft_cfg, 29);
  std::int64_t total_proposed = 0;
  for (std::uint64_t round = 0; round < 8; ++round) {
    Rng rng(seed * 31337 + round);
    wm::KvBlockAllocator arena(static_cast<int>(rng.uniform_int(6, 24)), 4,
                               cfg.n_layer, cfg.d_model);
    wm::KvBlockAllocator draft_arena(
        static_cast<int>(rng.uniform_int(2, 12)), 4, draft_cfg.n_layer,
        draft_cfg.d_model);
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 6));
    ws::FaultInjector faults;
    if (rng.chance(0.4))
      faults.set_arena_exhaust_at_step(rng.uniform_int(0, 12));
    if (rng.chance(0.3)) faults.set_fail_alloc(rng.uniform_int(1, 3));
    if (rng.chance(0.3)) faults.set_stall_steps(rng.uniform_int(1, 4));

    std::vector<ws::SeqRequest> requests(n);
    std::vector<Reference> expected;
    std::vector<wm::Transformer::GenerateStatus> statuses(n);
    std::vector<std::vector<std::int32_t>> emitted(n);
    for (std::size_t i = 0; i < n; ++i) {
      ws::SeqRequest& req = requests[i];
      req.prompt = random_prompt(rng, 1, 20, cfg.vocab);
      req.max_new_tokens = static_cast<int>(rng.uniform_int(1, 12));
      req.stop_token = rng.chance(0.3) ? 7 : -1;
      req.arrival_step = static_cast<int>(rng.uniform_int(0, 10));
      req.status = &statuses[i];
      // Request 0 stays greedy so every round provably speculates.
      if (i > 0 && rng.chance(0.3)) {
        req.temperature = 0.8f;
        req.top_k = 5;
        req.sample_seed = 1000 + i;
      }
      req.on_token = [&emitted, i](std::int32_t t) {
        emitted[i].push_back(t);
      };
      const std::int64_t budget =
          rng.chance(0.4) ? rng.uniform_int(0, 30) : -1;
      if (budget >= 0) req.deadline = Deadline::after_checks(budget);
      expected.push_back(run_reference(model, req.prompt, req.max_new_tokens,
                                       req.stop_token, req.temperature,
                                       req.top_k, req.sample_seed, budget));
    }
    ws::SchedulerOptions options;
    options.max_in_flight = static_cast<int>(rng.uniform_int(1, 4));
    options.arena = &arena;
    options.draft = &draft;
    options.speculative_k = static_cast<int>(rng.uniform_int(1, 6));
    options.draft_arena = rng.chance(0.7) ? &draft_arena : nullptr;
    options.faults = &faults;
    options.max_preemptions_per_seq = static_cast<int>(rng.uniform_int(1, 3));
    ws::ContinuousScheduler scheduler(model, options);

    const auto outs = scheduler.run(requests);
    ASSERT_EQ(outs.size(), n) << "round " << round << " seed " << seed;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(outs[i], expected[i].tokens)
          << "round " << round << " request " << i << " seed " << seed;
      EXPECT_EQ(emitted[i], outs[i])
          << "round " << round << " request " << i << " seed " << seed
          << ": on_token saw a token the verifier never committed";
      EXPECT_EQ(statuses[i].steps_taken, expected[i].status.steps_taken)
          << "round " << round << " request " << i << " seed " << seed;
      EXPECT_EQ(statuses[i].deadline_expired,
                expected[i].status.deadline_expired)
          << "round " << round << " request " << i << " seed " << seed;
    }
    const ws::SchedulerRunStats& stats = scheduler.last_run();
    total_proposed += stats.spec_proposed;
    EXPECT_EQ(stats.spec_proposed, stats.spec_accepted + stats.spec_rejected)
        << "round " << round << " seed " << seed;
    // Leak checks: every main-arena AND draft-arena block came back.
    EXPECT_EQ(arena.free_blocks(), arena.capacity())
        << "round " << round << " seed " << seed;
    EXPECT_EQ(draft_arena.free_blocks(), draft_arena.capacity())
        << "round " << round << " seed " << seed << ": leaked draft blocks";
  }
  EXPECT_GT(total_proposed, 0) << "speculation never engaged; seed " << seed;
}

// Request-level speculative fuzz: generate_speculative() against
// generate() under random k, random deadline budgets (expiry lands inside
// draft and verify phases alike), and warm caches — the emitted stream
// must equal the returned tokens and both must match sequential decode.
TEST(ChaosSpeculative, SeededRequestLevelSpeculationMatchesSequential) {
  const std::uint64_t seed = chaos_seed();
  const wm::ModelConfig cfg = tiny_config();
  const wm::Transformer model(cfg, 17);
  const wm::Transformer draft(wisdom::testutil::tiny_draft_config(), 29);
  for (std::uint64_t round = 0; round < 24; ++round) {
    Rng rng(seed * 65537 + round);
    const auto prompt = random_prompt(rng, 1, 20, cfg.vocab);
    const int max_new = static_cast<int>(rng.uniform_int(1, 16));
    const std::int32_t stop = rng.chance(0.3) ? 7 : -1;
    const std::int64_t budget =
        rng.chance(0.5) ? rng.uniform_int(0, 40) : -1;
    const Reference ref =
        run_reference(model, prompt, max_new, stop, 0.0f, 0, 1, budget);

    wm::Transformer::GenerateOptions gen;
    gen.max_new_tokens = max_new;
    gen.stop_token = stop;
    if (budget >= 0) gen.deadline = Deadline::after_checks(budget);
    wm::Transformer::GenerateStatus status;
    gen.status = &status;
    std::vector<std::int32_t> emitted;
    gen.on_token = [&emitted](std::int32_t t) { emitted.push_back(t); };
    wm::SpeculativeOptions spec;
    spec.draft = &draft;
    spec.k = static_cast<int>(rng.uniform_int(1, 8));
    const auto out = wm::generate_speculative(model, prompt, gen, spec);
    EXPECT_EQ(out, ref.tokens) << "round " << round << " seed " << seed;
    EXPECT_EQ(emitted, out) << "round " << round << " seed " << seed;
    EXPECT_EQ(status.steps_taken, ref.status.steps_taken)
        << "round " << round << " seed " << seed;
    EXPECT_EQ(status.deadline_expired, ref.status.deadline_expired)
        << "round " << round << " seed " << seed;
  }
}

// --- service-level chaos ---------------------------------------------------

namespace {

using wisdom::testutil::serving_model;
using wisdom::testutil::serving_tokenizer;

// Terminal = the caller can act on it: a successful suggestion, or a typed
// error explaining the refusal/degradation. The storm runs under
// LintPolicy::RejectDegraded with the fallback on, where that dichotomy is
// total — an empty or rejected generation is lint-refused and served from
// the fallback instead of surfacing as an untyped ok=false.
void expect_terminal(const ws::SuggestionResponse& r, std::uint64_t round,
                     std::size_t i, std::uint64_t seed) {
  if (!r.ok) {
    EXPECT_NE(r.error, ws::ServiceError::None)
        << "round " << round << " request " << i << " seed " << seed;
  }
}

}  // namespace

TEST(ChaosService, OverloadStormYieldsOneTerminalResponsePerRequest) {
  const std::uint64_t seed = chaos_seed();
  const wt::BpeTokenizer tokenizer = serving_tokenizer();
  const wm::Transformer model = serving_model(tokenizer);
  const char* prompts[] = {"Install nginx",  "Start redis",  "Copy a file",
                           "Enable service", "Remove package"};

  for (std::uint64_t round = 0; round < 4; ++round) {
    Rng rng(seed * 31337 + round);
    ws::FaultInjector faults;
    ws::ServiceOptions options;
    options.faults = &faults;
    options.queue_capacity = static_cast<int>(rng.uniform_int(1, 4));
    options.shed_policy = rng.chance(0.5) ? ws::ShedPolicy::RejectNewest
                                          : ws::ShedPolicy::DegradeNewest;
    options.breaker_enabled = true;
    options.breaker.window = 8;
    options.breaker.min_samples = 4;
    options.breaker.failure_threshold = 0.5;
    options.breaker.cooldown = static_cast<std::size_t>(
        rng.uniform_int(1, 4));
    options.breaker.probes = 2;
    options.lint_policy = ws::LintPolicy::RejectDegraded;
    ws::InferenceService service(model, tokenizer, options);

    std::uint64_t total = 0;
    for (int wave = 0; wave < 3; ++wave) {
      // Re-arm a random fault mix between waves.
      if (rng.chance(0.5)) faults.set_fail_generate(rng.uniform_int(1, 4));
      if (rng.chance(0.4)) faults.set_poison_breaker(rng.uniform_int(1, 4));
      if (rng.chance(0.3)) faults.set_slow_decode_after_tokens(6);
      if (rng.chance(0.2)) faults.set_arena_exhaust_at_step(2);
      faults.set_force_queue_full(rng.chance(0.2));

      std::vector<ws::SuggestionRequest> batch(
          static_cast<std::size_t>(rng.uniform_int(2, 6)));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].prompt = prompts[rng.uniform_int(0, 4)];
        batch[i].indent = static_cast<int>(rng.uniform_int(0, 2));
      }
      const auto responses = service.suggest_batch(batch);
      ASSERT_EQ(responses.size(), batch.size())
          << "round " << round << " wave " << wave << " seed " << seed;
      for (std::size_t i = 0; i < responses.size(); ++i)
        expect_terminal(responses[i], round, i, seed);
      total += batch.size();

      ws::SuggestionRequest single;
      single.prompt = prompts[rng.uniform_int(0, 4)];
      expect_terminal(service.suggest(single), round, batch.size(), seed);
      ++total;
      faults.reset();
    }
    EXPECT_EQ(service.stats_snapshot().offered, total)
        << "round " << round << " seed " << seed;

    // Drain at the end of the storm: the flush must report a stopped
    // service, and post-drain arrivals get the typed refusal.
    const std::string flush = service.drain();
    EXPECT_NE(flush.find("wisdom_drain_state 2"), std::string::npos)
        << "round " << round << " seed " << seed;
    ws::SuggestionRequest late;
    late.prompt = prompts[0];
    const auto refused = service.suggest(late);
    EXPECT_FALSE(refused.ok);
    EXPECT_EQ(refused.error, ws::ServiceError::Draining);
  }
}
