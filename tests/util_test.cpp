#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "util/hashing.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace wu = wisdom::util;

// --- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  wu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  wu::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  wu::Rng parent(7);
  wu::Rng f1 = parent.fork("galaxy");
  wu::Rng f2 = parent.fork("github");
  wu::Rng f1_again = parent.fork("galaxy");
  EXPECT_NE(f1.next_u64(), f2.next_u64());
  wu::Rng f1b = parent.fork("galaxy");
  EXPECT_EQ(f1_again.next_u64(), f1b.next_u64());
}

TEST(Rng, UniformRespectsBounds) {
  wu::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double r = rng.uniform_real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Rng, UniformCoversAllValues) {
  wu::Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, WeightedFavorsHeavyIndex) {
  wu::Rng rng(5);
  std::vector<double> w = {0.05, 0.9, 0.05};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 2000; ++i) counts[rng.weighted(w)]++;
  EXPECT_GT(counts[1], counts[0]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[1], 1500);
}

TEST(Rng, ZipfIsHeadHeavy) {
  wu::Rng rng(9);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 5000; ++i) counts[rng.zipf(50)]++;
  EXPECT_GT(counts[0], counts[25] + counts[40]);
}

TEST(Rng, ShuffleIsPermutation) {
  wu::Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, NormalHasApproxZeroMean) {
  wu::Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += rng.normal();
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.05);
}

// --- strings -----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = wu::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsEmpties) {
  auto parts = wu::split_ws("  hello   world \t x ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "hello");
  EXPECT_EQ(parts[2], "x");
}

TEST(Strings, SplitLinesHandlesCrlfAndNoTrailingNewline) {
  auto lines = wu::split_lines("a\r\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(Strings, SplitLinesEmpty) {
  EXPECT_TRUE(wu::split_lines("").empty());
}

TEST(Strings, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(wu::join(parts, ", "), "x, y, z");
}

TEST(Strings, Trim) {
  EXPECT_EQ(wu::trim("  ab \t"), "ab");
  EXPECT_EQ(wu::trim(""), "");
  EXPECT_EQ(wu::trim("   "), "");
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(wu::starts_with("ansible.builtin.apt", "ansible."));
  EXPECT_FALSE(wu::starts_with("a", "ab"));
  EXPECT_TRUE(wu::ends_with("file.yml", ".yml"));
  EXPECT_FALSE(wu::ends_with("a", "ab"));
  EXPECT_TRUE(wu::contains("key: value", ": "));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(wu::replace_all("a''b''c", "''", "'"), "a'b'c");
  EXPECT_EQ(wu::replace_all("aaa", "a", "aa"), "aaaaaa");
}

TEST(Strings, IndentWidth) {
  EXPECT_EQ(wu::indent_width("    x"), 4u);
  EXPECT_EQ(wu::indent_width("x"), 0u);
  EXPECT_EQ(wu::indent_width(""), 0u);
}

TEST(Strings, FmtFixed) {
  EXPECT_EQ(wu::fmt_fixed(66.666, 2), "66.67");
  EXPECT_EQ(wu::fmt_fixed(0.0, 1), "0.0");
}

TEST(Strings, IsInteger) {
  EXPECT_TRUE(wu::is_integer("42"));
  EXPECT_TRUE(wu::is_integer("-7"));
  EXPECT_FALSE(wu::is_integer("4.2"));
  EXPECT_FALSE(wu::is_integer(""));
  EXPECT_FALSE(wu::is_integer("-"));
}

// --- hashing -----------------------------------------------------------------

TEST(Hashing, Fnv1aKnownValues) {
  // FNV-1a 64 of the empty string is the offset basis.
  EXPECT_EQ(wu::fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(wu::fnv1a64("a"), wu::fnv1a64("b"));
}

TEST(Hashing, CombineOrderSensitive) {
  auto h1 = wu::hash_combine(wu::fnv1a64("a"), wu::fnv1a64("b"));
  auto h2 = wu::hash_combine(wu::fnv1a64("b"), wu::fnv1a64("a"));
  EXPECT_NE(h1, h2);
}

// --- io ----------------------------------------------------------------------

TEST(Io, BinaryRoundTrip) {
  std::string buf;
  wu::put_u32(buf, 0xDEADBEEF);
  wu::put_u64(buf, 0x0123456789ABCDEFULL);
  wu::put_f32(buf, 3.5f);
  wu::put_string(buf, "checkpoint");
  wu::put_f32_vec(buf, {1.0f, -2.0f, 0.5f});

  wu::ByteReader reader(buf);
  EXPECT_EQ(reader.get_u32(), 0xDEADBEEF);
  EXPECT_EQ(reader.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_FLOAT_EQ(reader.get_f32(), 3.5f);
  EXPECT_EQ(reader.get_string(), "checkpoint");
  auto vec = reader.get_f32_vec();
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_FLOAT_EQ(vec[1], -2.0f);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.at_end());
}

TEST(Io, ReaderDetectsTruncation) {
  std::string buf;
  wu::put_u64(buf, 100);  // length prefix promising 100 floats
  wu::ByteReader reader(buf);
  auto vec = reader.get_f32_vec();
  EXPECT_TRUE(vec.empty());
  EXPECT_FALSE(reader.ok());
}

TEST(Io, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/wisdom_io_test.bin";
  EXPECT_TRUE(wu::write_file(path, "hello\0world"));
  auto content = wu::read_file(path);
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, std::string("hello\0world"));
  EXPECT_FALSE(wu::read_file(path + ".missing").has_value());
}

// --- table ---------------------------------------------------------------

TEST(Table, RendersHeadersAndAlignment) {
  wu::Table t({"Model", "BLEU"});
  t.add_row({"wisdom-ansible-multi", "66.67"});
  t.add_rule();
  t.add_row({"codex", "50.40"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("66.67"), std::string::npos);
  EXPECT_NE(s.find("codex"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  wu::Table t({"a", "b", "c"});
  t.add_row({"only one"});
  EXPECT_NE(t.to_string().find("only one"), std::string::npos);
}
