// Parameterized sweep over every module in the catalog: structural
// invariants that must hold for each entry (the generator, linter and
// Ansible Aware metric all assume them).
#include <gtest/gtest.h>

#include "ansible/catalog.hpp"
#include "ansible/keywords.hpp"
#include "data/ansible_gen.hpp"
#include "util/rng.hpp"
#include "yaml/emit.hpp"

namespace wa = wisdom::ansible;
namespace wd = wisdom::data;

namespace {
const wa::ModuleCatalog& catalog() { return wa::ModuleCatalog::instance(); }
}  // namespace

class ModuleSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  const wa::ModuleSpec& module() const {
    return catalog().all()[GetParam()];
  }
};

INSTANTIATE_TEST_SUITE_P(
    AllModules, ModuleSweep,
    ::testing::Range<std::size_t>(
        0, wa::ModuleCatalog::instance().all().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name =
          wa::ModuleCatalog::instance().all()[info.param].short_name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST_P(ModuleSweep, FqcnIsWellFormed) {
  const wa::ModuleSpec& m = module();
  // namespace.collection.module
  int dots = 0;
  for (char c : m.fqcn) dots += (c == '.');
  EXPECT_EQ(dots, 2) << m.fqcn;
  EXPECT_TRUE(m.fqcn.ends_with(m.short_name));
}

TEST_P(ModuleSweep, ResolvesBothSpellings) {
  const wa::ModuleSpec& m = module();
  EXPECT_EQ(catalog().by_fqcn(m.fqcn), &m);
  EXPECT_EQ(catalog().by_short_name(m.short_name), &m);
  EXPECT_EQ(catalog().resolve(m.fqcn), &m);
  EXPECT_EQ(catalog().resolve(m.short_name), &m);
  EXPECT_EQ(catalog().to_fqcn(m.short_name), m.fqcn);
}

TEST_P(ModuleSweep, ParamSpecsConsistent) {
  const wa::ModuleSpec& m = module();
  std::set<std::string> names;
  for (const wa::ParamSpec& p : m.params) {
    EXPECT_FALSE(p.name.empty()) << m.fqcn;
    EXPECT_TRUE(names.insert(p.name).second)
        << m.fqcn << " duplicate param " << p.name;
    // Choices iff Choice-typed.
    if (p.type == wa::ParamType::Choice) {
      EXPECT_FALSE(p.choices.empty()) << m.fqcn << "." << p.name;
    } else {
      EXPECT_TRUE(p.choices.empty()) << m.fqcn << "." << p.name;
    }
  }
}

TEST_P(ModuleSweep, EquivalenceIsSymmetric) {
  const wa::ModuleSpec& m = module();
  if (m.equivalence_group < 0) return;
  bool found_peer = false;
  for (const wa::ModuleSpec& other : catalog().all()) {
    if (&other == &m) continue;
    if (other.equivalence_group == m.equivalence_group) {
      found_peer = true;
      EXPECT_TRUE(catalog().near_equivalent(m.fqcn, other.fqcn));
      EXPECT_TRUE(catalog().near_equivalent(other.fqcn, m.fqcn));
    }
  }
  EXPECT_TRUE(found_peer) << m.fqcn << " is alone in its equivalence group";
}

TEST_P(ModuleSweep, ModuleNameIsNotATaskKeyword) {
  // The Task::from_node classifier treats any known keyword as a keyword
  // first; a module whose short name collides could never be invoked.
  const wa::ModuleSpec& m = module();
  EXPECT_EQ(wa::find_task_keyword(m.short_name), nullptr) << m.short_name;
  EXPECT_FALSE(wa::is_block_key(m.short_name));
}

TEST_P(ModuleSweep, GeneratorProducesValidArgsForRequiredParams) {
  // Drive the generator until it picks this module (or give up — weights
  // make rare modules rare); when it does, required params must be present.
  wd::AnsibleGenerator gen{wisdom::util::Rng{GetParam() * 31 + 7}};
  wd::TaskGenOptions opts;
  opts.old_style_prob = 0.0;
  opts.short_name_prob = 0.0;
  opts.keyword_prob = 0.0;
  const wa::ModuleSpec& m = module();
  for (int i = 0; i < 400; ++i) {
    wisdom::yaml::Node task = gen.task(opts);
    const wisdom::yaml::Node* args = task.find(m.fqcn);
    if (!args) continue;
    for (const wa::ParamSpec& p : m.params) {
      if (!p.required) continue;
      EXPECT_TRUE(args->is_map() && args->has(p.name))
          << m.fqcn << " missing required " << p.name << "\n"
          << wisdom::yaml::emit(task);
    }
    return;  // one hit is enough
  }
  GTEST_SKIP() << "generator never picked " << m.fqcn << " in 400 draws";
}
