// The diagnostics engine: span accuracy on tricky YAML, positive/negative
// cases for every new rule, fix-then-relint convergence, rule
// configuration, formatters, and the lint-gate eval-set property (repair
// strictly improves Schema Correct without touching already-valid
// predictions).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/engine.hpp"
#include "analysis/format.hpp"
#include "analysis/ir.hpp"
#include "analysis/rules.hpp"
#include "analysis/taint.hpp"
#include "ansible/linter.hpp"
#include "metrics/aggregate.hpp"
#include "metrics/schema_correct.hpp"
#include "metrics/semantic_correct.hpp"
#include "serve/lint_gate.hpp"
#include "yaml/parse.hpp"

namespace wa = wisdom::analysis;
namespace wl = wisdom::ansible;
namespace wm = wisdom::metrics;
namespace ws = wisdom::serve;

namespace {

const wa::Diagnostic* find_rule(const wa::AnalysisResult& result,
                                std::string_view rule) {
  for (const auto& d : result.diagnostics)
    if (d.rule == rule) return &d;
  return nullptr;
}

bool has_rule(const wa::AnalysisResult& result, std::string_view rule) {
  return find_rule(result, rule) != nullptr;
}

}  // namespace

// --- rule registry ------------------------------------------------------------

TEST(Rules, RegistrySortedAndLookupWorks) {
  auto rules = wa::all_rules();
  ASSERT_FALSE(rules.empty());
  EXPECT_TRUE(std::is_sorted(
      rules.begin(), rules.end(),
      [](const wa::RuleInfo& a, const wa::RuleInfo& b) { return a.id < b.id; }));
  for (const auto& rule : rules) {
    const wa::RuleInfo* found = wa::find_rule(rule.id);
    ASSERT_NE(found, nullptr) << rule.id;
    EXPECT_EQ(found->id, rule.id);
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
  }
  EXPECT_EQ(wa::find_rule("no-such-rule"), nullptr);
}

TEST(Rules, ConfigDisableAndOverride) {
  const std::string text =
      "- name: Install nginx\n"
      "  apt:\n"
      "    name: nginx\n"
      "    state: present\n";
  auto base = wa::analyze(text);
  ASSERT_TRUE(has_rule(base, "fqcn"));

  wa::RuleConfig disabled;
  disabled.disabled = {"fqcn"};
  EXPECT_FALSE(has_rule(wa::analyze(text, disabled), "fqcn"));

  wa::RuleConfig upgraded;
  upgraded.severity_overrides = {{"fqcn", wa::Severity::Error}};
  auto strict = wa::analyze(text, upgraded);
  const wa::Diagnostic* d = find_rule(strict, "fqcn");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, wa::Severity::Error);
  EXPECT_FALSE(strict.ok());

  wa::RuleConfig typo;
  typo.disabled = {"fqcn", "not-a-rule"};
  auto unknown = typo.unknown_ids();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "not-a-rule");
}

// --- span accuracy ------------------------------------------------------------

TEST(Spans, DiagnosticsSliceToTheNamedKey) {
  const std::string text =
      "- name: Install nginx\n"
      "  apt:\n"
      "    name: nginx\n"
      "    state: present\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* fqcn = find_rule(result, "fqcn");
  ASSERT_NE(fqcn, nullptr);
  ASSERT_TRUE(fqcn->span.valid());
  EXPECT_EQ(fqcn->span.slice(text), "apt");
  EXPECT_EQ(fqcn->span.line, 2u);
  EXPECT_EQ(fqcn->span.column, 3u);
}

TEST(Spans, EveryLintTextViolationOnParseableDocIsLocated) {
  // Tricky shapes: comments, a block scalar, a flow mapping, k=v args,
  // octals, duplicate keys — every violation must carry a span whose
  // bytes fall inside the input.
  const std::string text =
      "# provision\n"
      "- name: Write config\n"
      "  copy: dest=/etc/app.conf content=hi\n"
      "- name: Script\n"
      "  ansible.builtin.shell: |\n"
      "    echo one\n"
      "    echo two\n"
      "  args: {chdir: /tmp, chdir: /var}\n"
      "- ansible.builtin.file:\n"
      "    path: /etc/app.conf\n"
      "    mode: 644\n"
      "    state: touch\n"
      "    state: file\n";
  wl::LintResult lint = wl::lint_text(text);
  EXPECT_FALSE(lint.violations.empty());
  for (const auto& v : lint.violations) {
    EXPECT_TRUE(v.span.valid()) << v.rule << ": " << v.message;
    EXPECT_LE(v.span.begin, v.span.end) << v.rule;
    EXPECT_LE(v.span.end, text.size()) << v.rule;
  }
  // The engine sees the same text and locates the deeper rules too.
  auto result = wa::analyze(text);
  for (const auto& d : result.diagnostics) {
    ASSERT_TRUE(d.span.valid()) << d.rule << ": " << d.message;
    EXPECT_LE(d.span.end, text.size()) << d.rule;
  }
  const wa::Diagnostic* dup = find_rule(result, "duplicate-key");
  ASSERT_NE(dup, nullptr);
  EXPECT_TRUE(dup->span.slice(text) == "chdir" ||
              dup->span.slice(text) == "state")
      << dup->span.slice(text);
  const wa::Diagnostic* octal = find_rule(result, "octal-mode");
  ASSERT_NE(octal, nullptr);
  EXPECT_EQ(octal->span.slice(text), "644");
}

TEST(Spans, BlockScalarAndFlowMappingSpans) {
  const std::string text =
      "- name: Run script\n"
      "  ansible.builtin.shell: |\n"
      "    echo {{ missing_var }}\n"
      "  vars: {retries: 3}\n";
  auto result = wa::analyze(text);
  // The Jinja reference inside the block scalar is located on the scalar.
  for (const auto& d : result.diagnostics)
    EXPECT_TRUE(d.span.valid()) << d.rule;
}

// --- new rules: positive and negative cases -----------------------------------

TEST(NewRules, DeprecatedModule) {
  auto bad = wa::analyze(
      "- name: Install\n  ansible.builtin.yum:\n    name: vim\n"
      "    state: present\n");
  const wa::Diagnostic* d = find_rule(bad, "deprecated-module");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("ansible.builtin.dnf"), std::string::npos);
  auto good = wa::analyze(
      "- name: Install\n  ansible.builtin.dnf:\n    name: vim\n"
      "    state: present\n");
  EXPECT_FALSE(has_rule(good, "deprecated-module"));
}

TEST(NewRules, FqcnFixRewritesShortName) {
  const std::string text =
      "- name: Install\n  apt:\n    name: vim\n    state: present\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "fqcn");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->fixable());
  auto fixed = wa::apply_fixes(text, result);
  EXPECT_NE(fixed.text.find("ansible.builtin.apt:"), std::string::npos);
  EXPECT_FALSE(has_rule(wa::analyze(fixed.text), "fqcn"));
}

TEST(NewRules, DuplicateKeyDetectedAtAllDepths) {
  auto dup = wa::analyze(
      "- name: A\n  ansible.builtin.apt:\n    name: vim\n    name: git\n"
      "    state: present\n");
  EXPECT_TRUE(has_rule(dup, "duplicate-key"));
  EXPECT_FALSE(dup.ok());
  auto clean = wa::analyze(
      "- name: A\n  ansible.builtin.apt:\n    name: vim\n"
      "    state: present\n");
  EXPECT_FALSE(has_rule(clean, "duplicate-key"));
}

TEST(NewRules, OldStyleArgsExpandToMapping) {
  const std::string text =
      "- name: Install\n  ansible.builtin.apt: name=vim state=present\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "old-style-args");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->fixable());
  auto repaired = wa::repair(text);
  EXPECT_TRUE(repaired.converged);
  EXPECT_NE(repaired.text.find("    name: vim"), std::string::npos);
  EXPECT_NE(repaired.text.find("    state: present"), std::string::npos);
  EXPECT_TRUE(wa::analyze(repaired.text).ok());
  // Free-form modules keep their string form.
  auto shell = wa::analyze(
      "- name: Run\n  ansible.builtin.shell: echo hello\n");
  EXPECT_FALSE(has_rule(shell, "old-style-args"));
}

TEST(NewRules, JinjaSyntaxErrors) {
  auto bad = wa::analyze(
      "- name: Show\n  ansible.builtin.debug:\n"
      "    msg: \"{{ value\"\n");
  EXPECT_TRUE(has_rule(bad, "jinja-syntax"));
  auto good = wa::analyze(
      "- name: Show\n  ansible.builtin.debug:\n"
      "    msg: \"{{ value }}\"\n");
  EXPECT_FALSE(has_rule(good, "jinja-syntax"));
}

TEST(NewRules, UndefinedVariableItemRequiresLoop) {
  auto bad = wa::analyze(
      "- name: Install\n  ansible.builtin.apt:\n"
      "    name: \"{{ item }}\"\n    state: present\n");
  EXPECT_TRUE(has_rule(bad, "undefined-variable"));
  auto good = wa::analyze(
      "- name: Install\n  ansible.builtin.apt:\n"
      "    name: \"{{ item }}\"\n    state: present\n"
      "  loop:\n    - vim\n    - git\n");
  EXPECT_FALSE(has_rule(good, "undefined-variable"));
}

TEST(NewRules, UndefinedVariableRegisterOrdering) {
  // Used before the registering task -> diagnostic.
  auto bad = wa::analyze(
      "- name: Report\n  ansible.builtin.debug:\n"
      "    msg: \"{{ out.stdout }}\"\n"
      "- name: Run\n  ansible.builtin.command: uptime\n  register: out\n");
  EXPECT_TRUE(has_rule(bad, "undefined-variable"));
  // Registered earlier -> fine.
  auto good = wa::analyze(
      "- name: Run\n  ansible.builtin.command: uptime\n  register: out\n"
      "- name: Report\n  ansible.builtin.debug:\n"
      "    msg: \"{{ out.stdout }}\"\n");
  EXPECT_FALSE(has_rule(good, "undefined-variable"));
}

TEST(NewRules, BooleanLiteralNormalization) {
  const std::string text =
      "- name: Enable\n  ansible.builtin.service:\n    name: nginx\n"
      "    enabled: yes\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "boolean-literal");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->fixable());
  auto fixed = wa::apply_fixes(text, result);
  EXPECT_NE(fixed.text.find("enabled: true"), std::string::npos);
  EXPECT_FALSE(has_rule(wa::analyze(fixed.text), "boolean-literal"));
}

TEST(NewRules, OctalModeQuoted) {
  const std::string text =
      "- name: Perms\n  ansible.builtin.file:\n    path: /tmp/x\n"
      "    mode: 644\n    state: touch\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "octal-mode");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->fixable());
  auto fixed = wa::apply_fixes(text, result);
  EXPECT_NE(fixed.text.find("mode: '0644'"), std::string::npos);
  EXPECT_FALSE(has_rule(wa::analyze(fixed.text), "octal-mode"));
}

TEST(NewRules, NameMissing) {
  auto bad = wa::analyze(
      "- ansible.builtin.apt:\n    name: vim\n    state: present\n");
  EXPECT_TRUE(has_rule(bad, "name-missing"));
  auto good = wa::analyze(
      "- name: Install\n  ansible.builtin.apt:\n    name: vim\n"
      "    state: present\n");
  EXPECT_FALSE(has_rule(good, "name-missing"));
}

TEST(NewRules, EmptyDocumentIsAWarningNotAnError) {
  for (std::string_view text : {"", "   \n", "---\n"}) {
    wl::LintResult lint = wl::lint_text(text);
    EXPECT_TRUE(lint.ok()) << text;
    ASSERT_EQ(lint.violations.size(), 1u) << text;
    EXPECT_EQ(lint.violations[0].rule, "empty-document");
    EXPECT_EQ(lint.violations[0].severity, wl::Severity::Warning);
    // ... but an empty document is never a schema-correct *answer*.
    EXPECT_FALSE(wm::schema_correct(text));
  }
}

// --- fixing -------------------------------------------------------------------

TEST(Repair, ComposedFixesConvergeInOnePass) {
  const std::string text =
      "- name: Enable\n  service: name=nginx enabled=yes\n"
      "- name: Perms\n  file:\n    path: /tmp/x\n    mode: 600\n"
      "    state: touch\n";
  auto repaired = wa::repair(text);
  EXPECT_TRUE(repaired.changed);
  EXPECT_TRUE(repaired.converged);
  EXPECT_EQ(repaired.final_result.fixable_count(), 0u);
  EXPECT_NE(repaired.text.find("ansible.builtin.service:"),
            std::string::npos);
  EXPECT_NE(repaired.text.find("    enabled: true"), std::string::npos);
  EXPECT_NE(repaired.text.find("mode: '0600'"), std::string::npos);
  EXPECT_TRUE(wa::analyze(repaired.text).ok());
}

TEST(Repair, CleanInputIsUntouched) {
  const std::string text =
      "- name: Install\n  ansible.builtin.apt:\n    name: vim\n"
      "    state: present\n";
  auto repaired = wa::repair(text);
  EXPECT_FALSE(repaired.changed);
  EXPECT_TRUE(repaired.converged);
  EXPECT_EQ(repaired.text, text);
}

TEST(Repair, UnparseableInputIsUntouched) {
  const std::string text = "- name: [broken\n";
  auto repaired = wa::repair(text);
  EXPECT_FALSE(repaired.changed);
  EXPECT_EQ(repaired.text, text);
  EXPECT_FALSE(repaired.final_result.parsed);
}

// --- formatters ---------------------------------------------------------------

TEST(Format, TextCaretsPointAtTheKey) {
  const std::string text =
      "- name: Install\n  apt:\n    name: vim\n    state: present\n";
  auto result = wa::analyze(text);
  std::string rendered = wa::format_text(text, result, "play.yml");
  EXPECT_NE(rendered.find("play.yml:2:3: warning [fqcn]"),
            std::string::npos);
  EXPECT_NE(rendered.find("  apt:"), std::string::npos);
  EXPECT_NE(rendered.find("^~~"), std::string::npos);
  EXPECT_NE(rendered.find("0 errors, 1 warning"), std::string::npos);
}

TEST(Format, JsonCarriesSpansAndFixability) {
  const std::string text =
      "- name: Install\n  apt:\n    name: vim\n    state: present\n";
  std::string json = wa::format_json(wa::analyze(text));
  EXPECT_NE(json.find("\"rule\":\"fqcn\""), std::string::npos);
  EXPECT_NE(json.find("\"fixable\":true"), std::string::npos);
  EXPECT_NE(json.find("\"line\":2"), std::string::npos);
}

TEST(Format, LintResultToStringSortsBySourceOrder) {
  // The unknown-param violation sits on line 4, the fqcn/old-style ones on
  // line 6: source order must win regardless of emission order.
  wl::LintResult lint = wl::lint_text(
      "- name: A\n"
      "  ansible.builtin.debug:\n"
      "    msg: hi\n"
      "    bogus: 1\n"
      "- name: B\n"
      "  apt: name=vim state=present\n");
  std::string rendered = lint.to_string();
  std::size_t first = rendered.find("unknown-param");
  std::size_t second = rendered.find("fqcn");
  ASSERT_NE(first, std::string::npos) << rendered;
  ASSERT_NE(second, std::string::npos) << rendered;
  EXPECT_LT(first, second);
}

// --- the lint gate over a seeded eval set -------------------------------------

TEST(LintGateEval, RepairImprovesSchemaCorrectAndPreservesValidSnippets) {
  // A seeded eval set standing in for model predictions: some already
  // valid, some one mechanical fix away, one beyond repair.
  const std::vector<std::string> predictions = {
      "- name: Install vim\n  ansible.builtin.apt:\n    name: vim\n"
      "    state: present\n",
      "- name: Install git\n  ansible.builtin.apt:\n    name: git\n"
      "    state: present\n",
      "- name: Install curl\n  apt: name=curl state=present\n",
      "- name: Enable nginx\n  service: name=nginx enabled=yes\n",
      "- name: Broken\n  ansible.builtin.notamodule:\n    x: 1\n",
  };
  std::size_t schema_off = 0, schema_repair = 0;
  for (const std::string& prediction : predictions) {
    ws::LintOutcome off = ws::lint_gate(prediction, ws::LintPolicy::Off);
    ws::LintOutcome rep = ws::lint_gate(prediction, ws::LintPolicy::Repair);
    if (off.schema_correct) {
      ++schema_off;
      // Already-valid predictions must come back byte-identical (Exact
      // Match unchanged).
      EXPECT_EQ(rep.snippet, prediction);
      EXPECT_FALSE(rep.repaired);
    }
    if (rep.schema_correct) ++schema_repair;
  }
  EXPECT_EQ(schema_off, 2u);
  EXPECT_EQ(schema_repair, 4u);  // strictly better: both k=v forms repaired
}

TEST(LintGate, PolicyNamesRoundTrip) {
  for (ws::LintPolicy p :
       {ws::LintPolicy::Off, ws::LintPolicy::Annotate, ws::LintPolicy::Repair,
        ws::LintPolicy::RejectDegraded}) {
    ws::LintPolicy back;
    ASSERT_TRUE(ws::lint_policy_from_name(ws::lint_policy_name(p), &back));
    EXPECT_EQ(back, p);
  }
  ws::LintPolicy out;
  EXPECT_FALSE(ws::lint_policy_from_name("bogus", &out));
}

TEST(LintGate, AnnotateReportsWithoutChanging) {
  const std::string text =
      "- name: Install\n  apt: name=vim state=present\n";
  ws::LintOutcome outcome = ws::lint_gate(text, ws::LintPolicy::Annotate);
  EXPECT_TRUE(outcome.analyzed);
  EXPECT_FALSE(outcome.repaired);
  EXPECT_EQ(outcome.snippet, text);
  EXPECT_FALSE(outcome.schema_correct);
  EXPECT_FALSE(outcome.diagnostics.empty());
}

TEST(LintGate, RejectDegradedRefusesUnrepairable) {
  ws::LintOutcome outcome = ws::lint_gate(
      "- name: Broken\n  ansible.builtin.notamodule:\n    x: 1\n",
      ws::LintPolicy::RejectDegraded);
  EXPECT_TRUE(outcome.rejected);
  EXPECT_FALSE(outcome.schema_correct);
  // ... but accepts what repair can save.
  ws::LintOutcome saved = ws::lint_gate(
      "- name: Install\n  apt: name=vim state=present\n",
      ws::LintPolicy::RejectDegraded);
  EXPECT_FALSE(saved.rejected);
  EXPECT_TRUE(saved.repaired);
  EXPECT_TRUE(saved.schema_correct);
}

// --- playbook IR / CFG --------------------------------------------------------

namespace {

wa::PlaybookIr ir_of(const std::string& text) {
  wisdom::yaml::ParseError err;
  auto doc = wisdom::yaml::parse_document(text, &err);
  EXPECT_TRUE(doc.has_value()) << err.message;
  return doc ? wa::build_ir(*doc) : wa::PlaybookIr{};
}

bool has_edge(const wa::PlaybookIr& ir, std::size_t from, std::size_t to,
              wa::EdgeKind kind) {
  for (const wa::CfgEdge& e : ir.edges)
    if (e.from == from && e.to == to && e.kind == kind) return true;
  return false;
}

const wa::IrTask* task_named(const wa::PlaybookIr& ir, std::string_view name) {
  for (const wa::IrTask& t : ir.tasks)
    if (t.name == name) return &t;
  return nullptr;
}

std::vector<wa::Finding> dataflow_of(const std::string& text) {
  return wa::dataflow_pass(ir_of(text));
}

std::size_t count_findings(const std::vector<wa::Finding>& findings,
                           std::string_view rule) {
  std::size_t n = 0;
  for (const wa::Finding& f : findings)
    if (f.rule == rule) ++n;
  return n;
}

}  // namespace

TEST(Ir, SingleTaskMapBecomesSyntheticPlay) {
  wa::PlaybookIr ir = ir_of(
      "name: Install nginx\n"
      "ansible.builtin.apt:\n"
      "  name: nginx\n"
      "  state: present\n");
  EXPECT_FALSE(ir.is_playbook);
  ASSERT_EQ(ir.plays.size(), 1u);
  ASSERT_EQ(ir.tasks.size(), 1u);
  const wa::IrTask& t = ir.tasks[0];
  EXPECT_EQ(t.name, "Install nginx");
  EXPECT_EQ(t.module, "ansible.builtin.apt");
  ASSERT_NE(t.spec, nullptr);
  EXPECT_EQ(t.spec->short_name, "apt");
  EXPECT_TRUE(t.span.valid());
}

TEST(Ir, TaskListGetsSequentialEdges) {
  wa::PlaybookIr ir = ir_of(
      "- name: First\n  ansible.builtin.command: echo one\n"
      "- name: Second\n  ansible.builtin.command: echo two\n"
      "- name: Third\n  ansible.builtin.command: echo three\n");
  ASSERT_EQ(ir.tasks.size(), 3u);
  ASSERT_EQ(ir.plays.size(), 1u);
  EXPECT_TRUE(has_edge(ir, 0, 1, wa::EdgeKind::Seq));
  EXPECT_TRUE(has_edge(ir, 1, 2, wa::EdgeKind::Seq));
  EXPECT_FALSE(has_edge(ir, 0, 2, wa::EdgeKind::Seq));
  auto order = ir.execution_order(ir.plays[0]);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Ir, BlockRescueAlwaysStructureAndEdges) {
  wa::PlaybookIr ir = ir_of(
      "- name: Try install\n"
      "  block:\n"
      "    - name: Install\n"
      "      ansible.builtin.apt:\n"
      "        name: nginx\n"
      "        state: present\n"
      "  rescue:\n"
      "    - name: Report failure\n"
      "      ansible.builtin.debug:\n"
      "        msg: install failed\n"
      "  always:\n"
      "    - name: Cleanup\n"
      "      ansible.builtin.file:\n"
      "        path: /tmp/marker\n"
      "        state: absent\n");
  const wa::IrTask* root = task_named(ir, "Try install");
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->is_block);
  ASSERT_EQ(root->block.size(), 1u);
  ASSERT_EQ(root->rescue.size(), 1u);
  ASSERT_EQ(root->always.size(), 1u);
  EXPECT_TRUE(has_edge(ir, root->id, root->block[0], wa::EdgeKind::Block));
  EXPECT_TRUE(has_edge(ir, root->id, root->rescue[0], wa::EdgeKind::Rescue));
  EXPECT_TRUE(has_edge(ir, root->id, root->always[0], wa::EdgeKind::Always));
  EXPECT_EQ(ir.tasks[root->block[0]].section, wa::BlockSection::Block);
  EXPECT_EQ(ir.tasks[root->rescue[0]].section, wa::BlockSection::Rescue);
  EXPECT_EQ(ir.tasks[root->always[0]].section, wa::BlockSection::Always);
  // Pre-order execution: the block node first, then its lists in order.
  auto order = ir.execution_order(ir.plays[0]);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], root->id);
}

TEST(Ir, PlaybookWithHandlersResolvesNotify) {
  wa::PlaybookIr ir = ir_of(
      "- name: Site\n"
      "  hosts: web\n"
      "  tasks:\n"
      "    - name: Deploy config\n"
      "      ansible.builtin.copy:\n"
      "        src: nginx.conf\n"
      "        dest: /etc/nginx/nginx.conf\n"
      "      notify: restart nginx\n"
      "  handlers:\n"
      "    - name: restart nginx\n"
      "      ansible.builtin.service:\n"
      "        name: nginx\n"
      "        state: restarted\n");
  EXPECT_TRUE(ir.is_playbook);
  ASSERT_EQ(ir.plays.size(), 1u);
  ASSERT_EQ(ir.plays[0].handlers.size(), 1u);
  const wa::IrTask* deploy = task_named(ir, "Deploy config");
  const wa::IrTask* handler = task_named(ir, "restart nginx");
  ASSERT_NE(deploy, nullptr);
  ASSERT_NE(handler, nullptr);
  EXPECT_TRUE(handler->is_handler);
  EXPECT_EQ(ir.resolve_handler(ir.plays[0], "restart nginx"), handler->id);
  EXPECT_EQ(ir.resolve_handler(ir.plays[0], "no such handler"), wa::kNoTask);
  EXPECT_TRUE(has_edge(ir, deploy->id, handler->id, wa::EdgeKind::Notify));
}

TEST(Ir, HandlerListenTopicsResolve) {
  wa::PlaybookIr ir = ir_of(
      "- name: Site\n"
      "  hosts: web\n"
      "  tasks:\n"
      "    - name: Deploy\n"
      "      ansible.builtin.copy:\n"
      "        src: app.conf\n"
      "        dest: /etc/app.conf\n"
      "      notify: config changed\n"
      "  handlers:\n"
      "    - name: reload app\n"
      "      listen: config changed\n"
      "      ansible.builtin.service:\n"
      "        name: app\n"
      "        state: reloaded\n");
  const wa::IrTask* handler = task_named(ir, "reload app");
  ASSERT_NE(handler, nullptr);
  ASSERT_EQ(handler->listen.size(), 1u);
  EXPECT_EQ(handler->listen[0], "config changed");
  EXPECT_EQ(ir.resolve_handler(ir.plays[0], "config changed"), handler->id);
  // Subscribed through listen: neither undefined nor unused.
  auto findings = wa::dataflow_pass(ir);
  EXPECT_EQ(count_findings(findings, "undefined-handler"), 0u);
  EXPECT_EQ(count_findings(findings, "unused-handler"), 0u);
}

TEST(Ir, DefsAndUsesRecordKindsAndSpans) {
  wa::PlaybookIr ir = ir_of(
      "- name: Probe\n"
      "  ansible.builtin.command: uptime\n"
      "  register: probe_result\n"
      "- name: Remember\n"
      "  ansible.builtin.set_fact:\n"
      "    load_line: \"{{ probe_result.stdout }}\"\n"
      "- name: Shout\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ load_line }}\"\n"
      "  vars:\n"
      "    volume: loud\n");
  const wa::IrTask* probe = task_named(ir, "Probe");
  ASSERT_NE(probe, nullptr);
  ASSERT_EQ(probe->defs.size(), 1u);
  EXPECT_EQ(probe->defs[0].kind, wa::DefKind::Register);
  EXPECT_EQ(probe->defs[0].name, "probe_result");
  EXPECT_TRUE(probe->defs[0].span.valid());
  const wa::IrTask* remember = task_named(ir, "Remember");
  ASSERT_NE(remember, nullptr);
  ASSERT_EQ(remember->defs.size(), 1u);
  EXPECT_EQ(remember->defs[0].kind, wa::DefKind::SetFact);
  EXPECT_EQ(remember->defs[0].name, "load_line");
  ASSERT_EQ(remember->uses.size(), 1u);
  EXPECT_EQ(remember->uses[0].name, "probe_result");
  const wa::IrTask* shout = task_named(ir, "Shout");
  ASSERT_NE(shout, nullptr);
  ASSERT_EQ(shout->defs.size(), 1u);
  EXPECT_EQ(shout->defs[0].kind, wa::DefKind::TaskVars);
  EXPECT_EQ(shout->defs[0].name, "volume");
}

TEST(Ir, LoopAndWhenCollectUses) {
  wa::PlaybookIr ir = ir_of(
      "- name: Install packages\n"
      "  ansible.builtin.apt:\n"
      "    name: \"{{ item }}\"\n"
      "    state: present\n"
      "  loop: \"{{ package_list }}\"\n"
      "  when: install_enabled\n");
  const wa::IrTask& t = ir.tasks[0];
  EXPECT_TRUE(t.has_loop);
  EXPECT_EQ(t.loop_var, "item");
  EXPECT_TRUE(t.has_when);
  EXPECT_TRUE(t.when_span.valid());
  std::vector<std::string> names;
  for (const wa::VarUse& u : t.uses) names.push_back(u.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "package_list"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "install_enabled"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "item"), names.end());
}

// --- dataflow: reaching definitions -------------------------------------------

TEST(Dataflow, UseBeforeDefiningTaskIsFlagged) {
  auto findings = dataflow_of(
      "- name: Show result\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ probe_result.stdout }}\"\n"
      "- name: Probe\n"
      "  ansible.builtin.command: uptime\n"
      "  register: probe_result\n");
  ASSERT_EQ(count_findings(findings, "undefined-variable"), 1u);
  for (const wa::Finding& f : findings) {
    if (f.rule != "undefined-variable") continue;
    EXPECT_EQ(f.message,
              "variable 'probe_result' is used before the task that "
              "defines it");
    EXPECT_TRUE(f.span.valid());
  }
}

TEST(Dataflow, DefThenUseIsClean) {
  auto findings = dataflow_of(
      "- name: Probe\n"
      "  ansible.builtin.command: uptime\n"
      "  register: probe_result\n"
      "- name: Show result\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ probe_result.stdout }}\"\n");
  EXPECT_EQ(count_findings(findings, "undefined-variable"), 0u);
  EXPECT_EQ(count_findings(findings, "unused-register"), 0u);
}

TEST(Dataflow, InventoryVariablesNeverFalsePositive) {
  // ansible_hostname is defined outside the document; only names the
  // document itself defines somewhere are use-before-def candidates.
  auto findings = dataflow_of(
      "- name: Greet\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"hello from {{ ansible_hostname }}\"\n");
  EXPECT_EQ(count_findings(findings, "undefined-variable"), 0u);
}

TEST(Dataflow, SetFactDefinesForLaterTasks) {
  auto clean = dataflow_of(
      "- name: Set version\n"
      "  ansible.builtin.set_fact:\n"
      "    app_version: 1.2.3\n"
      "- name: Show version\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"deploying {{ app_version }}\"\n");
  EXPECT_EQ(count_findings(clean, "undefined-variable"), 0u);
  auto reversed = dataflow_of(
      "- name: Show version\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"deploying {{ app_version }}\"\n"
      "- name: Set version\n"
      "  ansible.builtin.set_fact:\n"
      "    app_version: 1.2.3\n");
  EXPECT_EQ(count_findings(reversed, "undefined-variable"), 1u);
}

TEST(Dataflow, ReachingDefinitionsMatchHandComputedChain) {
  // Hand-computed def-use chain over a real playbook: every use is reached
  // by an earlier def, so the pass must stay silent; dropping the play
  // vars breaks exactly one link.
  const std::string playbook =
      "- name: Deploy\n"
      "  hosts: app\n"
      "  vars:\n"
      "    app_name: web\n"
      "  tasks:\n"
      "    - name: Build\n"
      "      ansible.builtin.command: \"make {{ app_name }}\"\n"
      "      register: build_result\n"
      "    - name: Summarize\n"
      "      ansible.builtin.set_fact:\n"
      "        build_summary: \"{{ build_result.stdout }}\"\n"
      "    - name: Report\n"
      "      ansible.builtin.debug:\n"
      "        msg: \"{{ build_summary }} for {{ app_name }}\"\n";
  wa::PlaybookIr ir = ir_of(playbook);
  // def(app_name)@play, def(build_result)@0, def(build_summary)@1;
  // use(app_name)@0, use(build_result)@1, use(build_summary, app_name)@2.
  ASSERT_EQ(ir.plays.size(), 1u);
  ASSERT_EQ(ir.plays[0].vars.size(), 1u);
  EXPECT_EQ(ir.plays[0].vars[0].name, "app_name");
  const wa::IrTask* build = task_named(ir, "Build");
  const wa::IrTask* report = task_named(ir, "Report");
  ASSERT_NE(build, nullptr);
  ASSERT_NE(report, nullptr);
  ASSERT_EQ(build->uses.size(), 1u);
  EXPECT_EQ(build->uses[0].name, "app_name");
  ASSERT_EQ(report->uses.size(), 2u);
  auto findings = wa::dataflow_pass(ir);
  EXPECT_EQ(count_findings(findings, "undefined-variable"), 0u);
  EXPECT_EQ(count_findings(findings, "unused-register"), 0u);
}

TEST(Dataflow, UnusedRegisterFlaggedUnderscoreOptsOut) {
  auto findings = dataflow_of(
      "- name: Run probe\n"
      "  ansible.builtin.command: uptime\n"
      "  register: probe_result\n");
  ASSERT_EQ(count_findings(findings, "unused-register"), 1u);
  for (const wa::Finding& f : findings) {
    if (f.rule != "unused-register") continue;
    EXPECT_EQ(f.message, "registered variable 'probe_result' is never used");
  }
  auto opted_out = dataflow_of(
      "- name: Run probe\n"
      "  ansible.builtin.command: uptime\n"
      "  register: _probe_result\n");
  EXPECT_EQ(count_findings(opted_out, "unused-register"), 0u);
}

TEST(Dataflow, RegisterOverwrittenBeforeRead) {
  auto findings = dataflow_of(
      "- name: First\n"
      "  ansible.builtin.command: echo one\n"
      "  register: cmd_out\n"
      "- name: Second\n"
      "  ansible.builtin.command: echo two\n"
      "  register: cmd_out\n"
      "- name: Show\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ cmd_out.stdout }}\"\n");
  EXPECT_EQ(count_findings(findings, "register-overwritten"), 1u);
  // Reading between the writes clears the pending state...
  auto read_between = dataflow_of(
      "- name: First\n"
      "  ansible.builtin.command: echo one\n"
      "  register: cmd_out\n"
      "- name: Log\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ cmd_out.stdout }}\"\n"
      "- name: Second\n"
      "  ansible.builtin.command: echo two\n"
      "  register: cmd_out\n"
      "- name: Show\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ cmd_out.stdout }}\"\n");
  EXPECT_EQ(count_findings(read_between, "register-overwritten"), 0u);
  // ...and a conditional second write is not a certain overwrite.
  auto guarded = dataflow_of(
      "- name: First\n"
      "  ansible.builtin.command: echo one\n"
      "  register: cmd_out\n"
      "- name: Second\n"
      "  ansible.builtin.command: echo two\n"
      "  register: cmd_out\n"
      "  when: cmd_out.rc != 0\n"
      "- name: Show\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ cmd_out.stdout }}\"\n");
  EXPECT_EQ(count_findings(guarded, "register-overwritten"), 0u);
}

TEST(Dataflow, BlockVersusRescueWritesAreNotOverwrites) {
  // The same register on the try and the rescue branch is the standard
  // fallback idiom, not a dead store.
  auto findings = dataflow_of(
      "- name: Attempt\n"
      "  block:\n"
      "    - name: Try\n"
      "      ansible.builtin.command: primary-probe\n"
      "      register: probe_out\n"
      "  rescue:\n"
      "    - name: Fall back\n"
      "      ansible.builtin.command: secondary-probe\n"
      "      register: probe_out\n"
      "- name: Show\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ probe_out.stdout }}\"\n");
  EXPECT_EQ(count_findings(findings, "register-overwritten"), 0u);
}

TEST(Dataflow, UnreachableAfterUnconditionalEndPlay) {
  auto findings = dataflow_of(
      "- name: Stop early\n"
      "  ansible.builtin.meta: end_play\n"
      "- name: Never runs\n"
      "  ansible.builtin.debug:\n"
      "    msg: hello\n");
  ASSERT_EQ(count_findings(findings, "unreachable-task"), 1u);
  // A guarded end_play keeps the tail reachable.
  auto guarded = dataflow_of(
      "- name: Stop early\n"
      "  ansible.builtin.meta: end_play\n"
      "  when: skip_rest is defined\n"
      "- name: Still runs\n"
      "  ansible.builtin.debug:\n"
      "    msg: hello\n");
  EXPECT_EQ(count_findings(guarded, "unreachable-task"), 0u);
}

TEST(Dataflow, WhenConstantFalseNeverRuns) {
  auto findings = dataflow_of(
      "- name: Disabled\n"
      "  ansible.builtin.command: echo hi\n"
      "  when: false\n");
  ASSERT_EQ(count_findings(findings, "unreachable-task"), 1u);
  for (const wa::Finding& f : findings) {
    if (f.rule != "unreachable-task") continue;
    EXPECT_EQ(f.message,
              "task can never run: its 'when' condition is always false");
  }
}

TEST(Dataflow, UndefinedAndUnusedHandlers) {
  auto findings = dataflow_of(
      "- name: Site\n"
      "  hosts: web\n"
      "  tasks:\n"
      "    - name: Deploy\n"
      "      ansible.builtin.copy:\n"
      "        src: nginx.conf\n"
      "        dest: /etc/nginx/nginx.conf\n"
      "      notify: restart nginx\n"
      "  handlers:\n"
      "    - name: reload nginx\n"
      "      ansible.builtin.service:\n"
      "        name: nginx\n"
      "        state: reloaded\n");
  EXPECT_EQ(count_findings(findings, "undefined-handler"), 1u);
  EXPECT_EQ(count_findings(findings, "unused-handler"), 1u);
  for (const wa::Finding& f : findings) {
    if (f.rule == "undefined-handler") {
      EXPECT_EQ(f.message,
                "notify target 'restart nginx' matches no handler in this "
                "play");
    }
    if (f.rule == "unused-handler") {
      EXPECT_EQ(f.message, "handler 'reload nginx' is never notified");
    }
  }
}

TEST(Dataflow, BareTaskListsDoNotResolveHandlers) {
  // A task file notifies handlers that live in the including play; no
  // handler section in scope means no verdict either way.
  auto findings = dataflow_of(
      "- name: Deploy\n"
      "  ansible.builtin.copy:\n"
      "    src: app.conf\n"
      "    dest: /etc/app.conf\n"
      "  notify: restart app\n");
  EXPECT_EQ(count_findings(findings, "undefined-handler"), 0u);
}

TEST(Dataflow, LoopVariableRenamedByLoopControl) {
  auto findings = dataflow_of(
      "- name: Install packages\n"
      "  ansible.builtin.apt:\n"
      "    name: \"{{ item }}\"\n"
      "    state: present\n"
      "  loop: [vim, git]\n"
      "  loop_control:\n"
      "    loop_var: pkg\n");
  ASSERT_EQ(count_findings(findings, "undefined-variable"), 1u);
  for (const wa::Finding& f : findings) {
    if (f.rule != "undefined-variable") continue;
    EXPECT_EQ(f.message,
              "loop variable 'item' is used but loop_control renames the "
              "loop variable to 'pkg'");
  }
  auto renamed_used = dataflow_of(
      "- name: Install packages\n"
      "  ansible.builtin.apt:\n"
      "    name: \"{{ pkg }}\"\n"
      "    state: present\n"
      "  loop: [vim, git]\n"
      "  loop_control:\n"
      "    loop_var: pkg\n");
  EXPECT_EQ(count_findings(renamed_used, "undefined-variable"), 0u);
}

// --- catalog-backed type checking ---------------------------------------------

TEST(Typecheck, QuotedBoolSpellingIsAutoFixed) {
  const std::string text =
      "- name: Update cache\n"
      "  ansible.builtin.apt:\n"
      "    update_cache: \"yes\"\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "param-value");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->fixable());
  auto repaired = wa::repair(text);
  EXPECT_TRUE(repaired.converged);
  EXPECT_NE(repaired.text.find("update_cache: true"), std::string::npos);
  EXPECT_FALSE(has_rule(wa::analyze(repaired.text), "param-value"));
}

TEST(Typecheck, ChoiceCaseMismatchIsAutoFixed) {
  const std::string text =
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: Present\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "param-value");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->fixable());
  auto repaired = wa::repair(text);
  EXPECT_TRUE(repaired.converged);
  EXPECT_NE(repaired.text.find("state: present"), std::string::npos);
}

TEST(Typecheck, ChoiceTypoFixedToUniqueClosestOnly) {
  // 'presnt' is one edit from exactly one choice: fixable.
  auto close = wa::repair(
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: presnt\n");
  EXPECT_TRUE(close.converged);
  EXPECT_NE(close.text.find("state: present"), std::string::npos);
  // Garbage is not close to any choice: diagnosed but left alone.
  const std::string garbage =
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: zzzzz\n";
  const wa::Diagnostic* d = find_rule(wa::analyze(garbage), "param-value");
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->fixable());
}

TEST(Typecheck, UnknownParamTypoRenamedToCatalogName) {
  const std::string text =
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    stat: present\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "unknown-param");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->fixable());
  auto repaired = wa::repair(text);
  EXPECT_TRUE(repaired.converged);
  EXPECT_NE(repaired.text.find("state: present"), std::string::npos);
  EXPECT_TRUE(wa::analyze(repaired.text).ok());
}

TEST(Typecheck, UnknownParamRenameRefusedWhenTargetPresent) {
  // Renaming 'stat' to 'state' would duplicate the existing key; the
  // diagnostic must stay but carry no edit.
  const std::string text =
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: present\n"
      "    stat: present\n";
  const wa::Diagnostic* d = find_rule(wa::analyze(text), "unknown-param");
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->fixable());
}

TEST(Typecheck, MutuallyExclusiveParamsAreSemanticErrors) {
  const std::string text =
      "- name: Copy config\n"
      "  ansible.builtin.copy:\n"
      "    src: files/app.conf\n"
      "    content: override\n"
      "    dest: /etc/app.conf\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "param-mutually-exclusive");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, wa::Severity::Error);
  EXPECT_EQ(d->message,
            "module 'ansible.builtin.copy' parameters 'src' and 'content' "
            "are mutually exclusive");
  EXPECT_TRUE(d->span.valid());
  // The paper's Schema Correct metric must not move; the new semantic
  // axis is what tightens.
  EXPECT_TRUE(wm::schema_correct(result));
  EXPECT_FALSE(wm::semantic_correct(result));
}

TEST(Typecheck, RequiredTogetherParamsWarn) {
  const std::string text =
      "- name: Download release\n"
      "  ansible.builtin.get_url:\n"
      "    url: https://example.com/pkg.tgz\n"
      "    dest: /tmp/pkg.tgz\n"
      "    url_username: deploy\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "param-required-together");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, wa::Severity::Warning);
  EXPECT_EQ(d->message,
            "module 'ansible.builtin.get_url' parameter group requires "
            "'url_password' to be set as well");
  const std::string complete =
      "- name: Download release\n"
      "  ansible.builtin.get_url:\n"
      "    url: https://example.com/pkg.tgz\n"
      "    dest: /tmp/pkg.tgz\n"
      "    url_username: deploy\n"
      "    url_password: \"{{ vault_deploy_password }}\"\n"
      "  no_log: true\n";
  EXPECT_FALSE(has_rule(wa::analyze(complete), "param-required-together"));
}

// --- taint: secrets and no_log ------------------------------------------------

TEST(Taint, SecretParamWithoutNoLogIsFlaggedAndFixed) {
  const std::string text =
      "- name: Create db user\n"
      "  community.mysql.mysql_user:\n"
      "    name: app\n"
      "    password: \"{{ vault_db_password }}\"\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "no-log-missing");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, wa::Severity::Warning);
  EXPECT_TRUE(d->fixable());
  auto repaired = wa::repair(text);
  EXPECT_TRUE(repaired.converged);
  EXPECT_NE(repaired.text.find("no_log: true"), std::string::npos);
  EXPECT_FALSE(has_rule(wa::analyze(repaired.text), "no-log-missing"));
}

TEST(Taint, ExplicitNoLogTrueSuppresses) {
  auto result = wa::analyze(
      "- name: Create db user\n"
      "  community.mysql.mysql_user:\n"
      "    name: app\n"
      "    password: \"{{ vault_db_password }}\"\n"
      "  no_log: true\n");
  EXPECT_FALSE(has_rule(result, "no-log-missing"));
}

TEST(Taint, ExplicitNoLogFalseFlagsWithoutAutoFix) {
  // `no_log: false` is a deliberate decision: diagnose it, but never
  // splice a duplicate key next to it.
  auto result = wa::analyze(
      "- name: Create db user\n"
      "  community.mysql.mysql_user:\n"
      "    name: app\n"
      "    password: \"{{ vault_db_password }}\"\n"
      "  no_log: false\n");
  const wa::Diagnostic* d = find_rule(result, "no-log-missing");
  ASSERT_NE(d, nullptr);
  EXPECT_FALSE(d->fixable());
}

TEST(Taint, RegisteredSecretFlowsIntoDebug) {
  const std::string text =
      "- name: Read token\n"
      "  ansible.builtin.command: cat /etc/app/token\n"
      "  register: token_result\n"
      "- name: Show\n"
      "  ansible.builtin.debug:\n"
      "    var: token_result\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "secret-logging");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, wa::Severity::Warning);
  EXPECT_TRUE(d->fixable());
  auto repaired = wa::repair(text);
  EXPECT_TRUE(repaired.converged);
  EXPECT_FALSE(has_rule(wa::analyze(repaired.text), "secret-logging"));
}

TEST(Taint, SecretPropagatesThroughRegisterOfSecretParamModule) {
  // The module call handles a credential; its registered result is tainted
  // even though the register name itself is innocuous.
  auto result = wa::analyze(
      "- name: Create db user\n"
      "  community.mysql.mysql_user:\n"
      "    name: app\n"
      "    password: \"{{ vault_db_password }}\"\n"
      "  no_log: true\n"
      "  register: user_result\n"
      "- name: Show\n"
      "  ansible.builtin.debug:\n"
      "    var: user_result\n");
  EXPECT_TRUE(has_rule(result, "secret-logging"));
}

TEST(Taint, SecretLookupInLoggedMessage) {
  auto result = wa::analyze(
      "- name: Show env\n"
      "  ansible.builtin.debug:\n"
      "    msg: \"{{ lookup('env', 'DB_PASSWORD') }}\"\n");
  const wa::Diagnostic* d = find_rule(result, "secret-logging");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("lookup"), std::string::npos);
}

TEST(Taint, SecretShapedVariableInTaskName) {
  auto result = wa::analyze(
      "- name: Rotate {{ vault_db_password }}\n"
      "  ansible.builtin.debug:\n"
      "    msg: rotated\n");
  const wa::Diagnostic* d = find_rule(result, "secret-in-name");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, wa::Severity::Warning);
  // no_log cannot help: names always print.
  auto with_no_log = wa::analyze(
      "- name: Rotate {{ vault_db_password }}\n"
      "  ansible.builtin.debug:\n"
      "    msg: rotated\n"
      "  no_log: true\n");
  EXPECT_TRUE(has_rule(with_no_log, "secret-in-name"));
}

TEST(Taint, SecretShapeNamePredicate) {
  EXPECT_TRUE(wa::secret_shaped_name("vault_anything"));
  EXPECT_TRUE(wa::secret_shaped_name("db_password"));
  EXPECT_TRUE(wa::secret_shaped_name("API_KEY"));
  EXPECT_TRUE(wa::secret_shaped_name("github_token"));
  EXPECT_FALSE(wa::secret_shaped_name("package_list"));
  EXPECT_FALSE(wa::secret_shaped_name("result"));
}

// --- semantic_correct metric and gate -----------------------------------------

TEST(SemanticMetric, StrictlyStrongerThanSchemaCorrect) {
  // Clean snippet: both hold.
  const std::string clean =
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: present\n";
  EXPECT_TRUE(wm::schema_correct(clean));
  EXPECT_TRUE(wm::semantic_correct(clean));
  // Semantic error only: schema holds, semantic does not.
  const std::string exclusive =
      "- name: Copy config\n"
      "  ansible.builtin.copy:\n"
      "    src: files/app.conf\n"
      "    content: override\n"
      "    dest: /etc/app.conf\n";
  EXPECT_TRUE(wm::schema_correct(exclusive));
  EXPECT_FALSE(wm::semantic_correct(exclusive));
  // Schema error: neither holds.
  const std::string broken =
      "- name: Broken\n  ansible.builtin.notamodule:\n    x: 1\n";
  EXPECT_FALSE(wm::schema_correct(broken));
  EXPECT_FALSE(wm::semantic_correct(broken));
}

TEST(SemanticMetric, AccumulatorReportsSemanticColumn) {
  wm::MetricsAccumulator acc;
  const std::string clean =
      "- name: Install nginx\n"
      "  ansible.builtin.apt:\n"
      "    name: nginx\n"
      "    state: present\n";
  const std::string exclusive =
      "- name: Copy config\n"
      "  ansible.builtin.copy:\n"
      "    src: files/app.conf\n"
      "    content: override\n"
      "    dest: /etc/app.conf\n";
  acc.add(clean, clean);
  acc.add(exclusive, exclusive);
  wm::MetricsReport report = acc.report();
  EXPECT_EQ(report.schema_correct, 100.0);
  EXPECT_EQ(report.semantic_correct, 50.0);
  EXPECT_NE(report.to_string().find(" sem=50.00"), std::string::npos);
}

TEST(LintGate, RejectDegradedRefusesSemanticErrors) {
  // Schema-correct but semantically broken: the gate must refuse it.
  ws::LintOutcome outcome = ws::lint_gate(
      "- name: Copy config\n"
      "  ansible.builtin.copy:\n"
      "    src: files/app.conf\n"
      "    content: override\n"
      "    dest: /etc/app.conf\n",
      ws::LintPolicy::RejectDegraded);
  EXPECT_TRUE(outcome.schema_correct);
  EXPECT_FALSE(outcome.semantic_correct);
  EXPECT_TRUE(outcome.rejected);
  // Fixable semantic findings are repaired, not rejected.
  ws::LintOutcome fixed = ws::lint_gate(
      "- name: Create db user\n"
      "  community.mysql.mysql_user:\n"
      "    name: app\n"
      "    password: \"{{ vault_db_password }}\"\n",
      ws::LintPolicy::RejectDegraded);
  EXPECT_FALSE(fixed.rejected);
  EXPECT_TRUE(fixed.repaired);
  EXPECT_TRUE(fixed.semantic_correct);
  EXPECT_NE(fixed.snippet.find("no_log: true"), std::string::npos);
}

TEST(Repair, EveryNewFixableRuleConvergesToSemanticCorrect) {
  // One document per newly fixable rule; repair must reach a fixed point
  // that the semantic metric accepts.
  const std::vector<std::string> docs = {
      // param-value (bool spelling)
      "- name: Update cache\n  ansible.builtin.apt:\n"
      "    update_cache: \"yes\"\n",
      // param-value (choice typo)
      "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n"
      "    state: presnt\n",
      // unknown-param (typo rename)
      "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n"
      "    stat: present\n",
      // no-log-missing
      "- name: Create db user\n  community.mysql.mysql_user:\n"
      "    name: app\n    password: \"{{ vault_db_password }}\"\n",
      // secret-logging
      "- name: Read token\n  ansible.builtin.command: cat /etc/token\n"
      "  register: token_out\n"
      "- name: Show\n  ansible.builtin.debug:\n    var: token_out\n",
  };
  for (const std::string& doc : docs) {
    auto repaired = wa::repair(doc);
    EXPECT_TRUE(repaired.converged) << doc;
    EXPECT_EQ(repaired.final_result.fixable_count(), 0u) << doc;
    EXPECT_TRUE(wm::semantic_correct(repaired.final_result)) << doc;
  }
}

// --- SARIF output -------------------------------------------------------------

TEST(Sarif, CarriesRuleRegistryAndSpannedResults) {
  const std::string text =
      "- name: Install nginx\n"
      "  apt:\n"
      "    name: nginx\n"
      "    state: present\n";
  auto result = wa::analyze(text);
  ASSERT_TRUE(has_rule(result, "fqcn"));
  std::string sarif =
      wa::format_sarif({wa::SarifArtifact{"playbooks/site.yml", &result}});
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"wisdom_lint\""), std::string::npos);
  // Every registered rule appears in the driver metadata.
  for (const wa::RuleInfo& rule : wa::all_rules()) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(rule.id) + "\""),
              std::string::npos)
        << rule.id;
  }
  EXPECT_NE(sarif.find("\"ruleId\":\"fqcn\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"playbooks/site.yml\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":2"), std::string::npos);
}

TEST(Sarif, UnlocatedResultsOmitRegionAndOutputIsDeterministic) {
  // A diagnostic with no source location renders without a region.
  wa::AnalysisResult unlocated;
  unlocated.parsed = true;
  wa::Diagnostic d;
  d.rule = "yaml-syntax";
  d.message = "unlocated failure";
  unlocated.diagnostics.push_back(d);
  std::string sarif =
      wa::format_sarif({wa::SarifArtifact{"broken.yml", &unlocated}});
  EXPECT_NE(sarif.find("\"ruleId\":\"yaml-syntax\""), std::string::npos);
  EXPECT_EQ(sarif.find("\"region\""), std::string::npos);
  EXPECT_EQ(sarif,
            wa::format_sarif({wa::SarifArtifact{"broken.yml", &unlocated}}));
  // Multiple artifacts render in input order into one run.
  auto other = wa::analyze(
      "- name: Install nginx\n  apt:\n    name: nginx\n    state: present\n");
  std::string combined = wa::format_sarif(
      {wa::SarifArtifact{"broken.yml", &unlocated},
       wa::SarifArtifact{"site.yml", &other}});
  EXPECT_LT(combined.find("broken.yml"), combined.find("site.yml"));
}

TEST(Rules, SemanticRulesAreRegisteredWithMetadata) {
  static constexpr std::string_view kSemanticRules[] = {
      "no-log-missing",     "param-mutually-exclusive",
      "param-required-together", "register-overwritten",
      "secret-in-name",     "secret-logging",
      "undefined-handler",  "unreachable-task",
      "unused-handler",     "unused-register",
  };
  for (std::string_view id : kSemanticRules) {
    const wa::RuleInfo* info = wa::find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_TRUE(info->semantic) << id;
  }
  // The paper-era schema rules stay non-semantic.
  ASSERT_NE(wa::find_rule("unknown-module"), nullptr);
  EXPECT_FALSE(wa::find_rule("unknown-module")->semantic);
}
