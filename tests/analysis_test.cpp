// The diagnostics engine: span accuracy on tricky YAML, positive/negative
// cases for every new rule, fix-then-relint convergence, rule
// configuration, formatters, and the lint-gate eval-set property (repair
// strictly improves Schema Correct without touching already-valid
// predictions).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "analysis/format.hpp"
#include "analysis/rules.hpp"
#include "ansible/linter.hpp"
#include "metrics/schema_correct.hpp"
#include "serve/lint_gate.hpp"

namespace wa = wisdom::analysis;
namespace wl = wisdom::ansible;
namespace wm = wisdom::metrics;
namespace ws = wisdom::serve;

namespace {

const wa::Diagnostic* find_rule(const wa::AnalysisResult& result,
                                std::string_view rule) {
  for (const auto& d : result.diagnostics)
    if (d.rule == rule) return &d;
  return nullptr;
}

bool has_rule(const wa::AnalysisResult& result, std::string_view rule) {
  return find_rule(result, rule) != nullptr;
}

}  // namespace

// --- rule registry ------------------------------------------------------------

TEST(Rules, RegistrySortedAndLookupWorks) {
  auto rules = wa::all_rules();
  ASSERT_FALSE(rules.empty());
  EXPECT_TRUE(std::is_sorted(
      rules.begin(), rules.end(),
      [](const wa::RuleInfo& a, const wa::RuleInfo& b) { return a.id < b.id; }));
  for (const auto& rule : rules) {
    const wa::RuleInfo* found = wa::find_rule(rule.id);
    ASSERT_NE(found, nullptr) << rule.id;
    EXPECT_EQ(found->id, rule.id);
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
  }
  EXPECT_EQ(wa::find_rule("no-such-rule"), nullptr);
}

TEST(Rules, ConfigDisableAndOverride) {
  const std::string text =
      "- name: Install nginx\n"
      "  apt:\n"
      "    name: nginx\n"
      "    state: present\n";
  auto base = wa::analyze(text);
  ASSERT_TRUE(has_rule(base, "fqcn"));

  wa::RuleConfig disabled;
  disabled.disabled = {"fqcn"};
  EXPECT_FALSE(has_rule(wa::analyze(text, disabled), "fqcn"));

  wa::RuleConfig upgraded;
  upgraded.severity_overrides = {{"fqcn", wa::Severity::Error}};
  auto strict = wa::analyze(text, upgraded);
  const wa::Diagnostic* d = find_rule(strict, "fqcn");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, wa::Severity::Error);
  EXPECT_FALSE(strict.ok());

  wa::RuleConfig typo;
  typo.disabled = {"fqcn", "not-a-rule"};
  auto unknown = typo.unknown_ids();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "not-a-rule");
}

// --- span accuracy ------------------------------------------------------------

TEST(Spans, DiagnosticsSliceToTheNamedKey) {
  const std::string text =
      "- name: Install nginx\n"
      "  apt:\n"
      "    name: nginx\n"
      "    state: present\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* fqcn = find_rule(result, "fqcn");
  ASSERT_NE(fqcn, nullptr);
  ASSERT_TRUE(fqcn->span.valid());
  EXPECT_EQ(fqcn->span.slice(text), "apt");
  EXPECT_EQ(fqcn->span.line, 2u);
  EXPECT_EQ(fqcn->span.column, 3u);
}

TEST(Spans, EveryLintTextViolationOnParseableDocIsLocated) {
  // Tricky shapes: comments, a block scalar, a flow mapping, k=v args,
  // octals, duplicate keys — every violation must carry a span whose
  // bytes fall inside the input.
  const std::string text =
      "# provision\n"
      "- name: Write config\n"
      "  copy: dest=/etc/app.conf content=hi\n"
      "- name: Script\n"
      "  ansible.builtin.shell: |\n"
      "    echo one\n"
      "    echo two\n"
      "  args: {chdir: /tmp, chdir: /var}\n"
      "- ansible.builtin.file:\n"
      "    path: /etc/app.conf\n"
      "    mode: 644\n"
      "    state: touch\n"
      "    state: file\n";
  wl::LintResult lint = wl::lint_text(text);
  EXPECT_FALSE(lint.violations.empty());
  for (const auto& v : lint.violations) {
    EXPECT_TRUE(v.span.valid()) << v.rule << ": " << v.message;
    EXPECT_LE(v.span.begin, v.span.end) << v.rule;
    EXPECT_LE(v.span.end, text.size()) << v.rule;
  }
  // The engine sees the same text and locates the deeper rules too.
  auto result = wa::analyze(text);
  for (const auto& d : result.diagnostics) {
    ASSERT_TRUE(d.span.valid()) << d.rule << ": " << d.message;
    EXPECT_LE(d.span.end, text.size()) << d.rule;
  }
  const wa::Diagnostic* dup = find_rule(result, "duplicate-key");
  ASSERT_NE(dup, nullptr);
  EXPECT_TRUE(dup->span.slice(text) == "chdir" ||
              dup->span.slice(text) == "state")
      << dup->span.slice(text);
  const wa::Diagnostic* octal = find_rule(result, "octal-mode");
  ASSERT_NE(octal, nullptr);
  EXPECT_EQ(octal->span.slice(text), "644");
}

TEST(Spans, BlockScalarAndFlowMappingSpans) {
  const std::string text =
      "- name: Run script\n"
      "  ansible.builtin.shell: |\n"
      "    echo {{ missing_var }}\n"
      "  vars: {retries: 3}\n";
  auto result = wa::analyze(text);
  // The Jinja reference inside the block scalar is located on the scalar.
  for (const auto& d : result.diagnostics)
    EXPECT_TRUE(d.span.valid()) << d.rule;
}

// --- new rules: positive and negative cases -----------------------------------

TEST(NewRules, DeprecatedModule) {
  auto bad = wa::analyze(
      "- name: Install\n  ansible.builtin.yum:\n    name: vim\n"
      "    state: present\n");
  const wa::Diagnostic* d = find_rule(bad, "deprecated-module");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("ansible.builtin.dnf"), std::string::npos);
  auto good = wa::analyze(
      "- name: Install\n  ansible.builtin.dnf:\n    name: vim\n"
      "    state: present\n");
  EXPECT_FALSE(has_rule(good, "deprecated-module"));
}

TEST(NewRules, FqcnFixRewritesShortName) {
  const std::string text =
      "- name: Install\n  apt:\n    name: vim\n    state: present\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "fqcn");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->fixable());
  auto fixed = wa::apply_fixes(text, result);
  EXPECT_NE(fixed.text.find("ansible.builtin.apt:"), std::string::npos);
  EXPECT_FALSE(has_rule(wa::analyze(fixed.text), "fqcn"));
}

TEST(NewRules, DuplicateKeyDetectedAtAllDepths) {
  auto dup = wa::analyze(
      "- name: A\n  ansible.builtin.apt:\n    name: vim\n    name: git\n"
      "    state: present\n");
  EXPECT_TRUE(has_rule(dup, "duplicate-key"));
  EXPECT_FALSE(dup.ok());
  auto clean = wa::analyze(
      "- name: A\n  ansible.builtin.apt:\n    name: vim\n"
      "    state: present\n");
  EXPECT_FALSE(has_rule(clean, "duplicate-key"));
}

TEST(NewRules, OldStyleArgsExpandToMapping) {
  const std::string text =
      "- name: Install\n  ansible.builtin.apt: name=vim state=present\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "old-style-args");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->fixable());
  auto repaired = wa::repair(text);
  EXPECT_TRUE(repaired.converged);
  EXPECT_NE(repaired.text.find("    name: vim"), std::string::npos);
  EXPECT_NE(repaired.text.find("    state: present"), std::string::npos);
  EXPECT_TRUE(wa::analyze(repaired.text).ok());
  // Free-form modules keep their string form.
  auto shell = wa::analyze(
      "- name: Run\n  ansible.builtin.shell: echo hello\n");
  EXPECT_FALSE(has_rule(shell, "old-style-args"));
}

TEST(NewRules, JinjaSyntaxErrors) {
  auto bad = wa::analyze(
      "- name: Show\n  ansible.builtin.debug:\n"
      "    msg: \"{{ value\"\n");
  EXPECT_TRUE(has_rule(bad, "jinja-syntax"));
  auto good = wa::analyze(
      "- name: Show\n  ansible.builtin.debug:\n"
      "    msg: \"{{ value }}\"\n");
  EXPECT_FALSE(has_rule(good, "jinja-syntax"));
}

TEST(NewRules, UndefinedVariableItemRequiresLoop) {
  auto bad = wa::analyze(
      "- name: Install\n  ansible.builtin.apt:\n"
      "    name: \"{{ item }}\"\n    state: present\n");
  EXPECT_TRUE(has_rule(bad, "undefined-variable"));
  auto good = wa::analyze(
      "- name: Install\n  ansible.builtin.apt:\n"
      "    name: \"{{ item }}\"\n    state: present\n"
      "  loop:\n    - vim\n    - git\n");
  EXPECT_FALSE(has_rule(good, "undefined-variable"));
}

TEST(NewRules, UndefinedVariableRegisterOrdering) {
  // Used before the registering task -> diagnostic.
  auto bad = wa::analyze(
      "- name: Report\n  ansible.builtin.debug:\n"
      "    msg: \"{{ out.stdout }}\"\n"
      "- name: Run\n  ansible.builtin.command: uptime\n  register: out\n");
  EXPECT_TRUE(has_rule(bad, "undefined-variable"));
  // Registered earlier -> fine.
  auto good = wa::analyze(
      "- name: Run\n  ansible.builtin.command: uptime\n  register: out\n"
      "- name: Report\n  ansible.builtin.debug:\n"
      "    msg: \"{{ out.stdout }}\"\n");
  EXPECT_FALSE(has_rule(good, "undefined-variable"));
}

TEST(NewRules, BooleanLiteralNormalization) {
  const std::string text =
      "- name: Enable\n  ansible.builtin.service:\n    name: nginx\n"
      "    enabled: yes\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "boolean-literal");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->fixable());
  auto fixed = wa::apply_fixes(text, result);
  EXPECT_NE(fixed.text.find("enabled: true"), std::string::npos);
  EXPECT_FALSE(has_rule(wa::analyze(fixed.text), "boolean-literal"));
}

TEST(NewRules, OctalModeQuoted) {
  const std::string text =
      "- name: Perms\n  ansible.builtin.file:\n    path: /tmp/x\n"
      "    mode: 644\n    state: touch\n";
  auto result = wa::analyze(text);
  const wa::Diagnostic* d = find_rule(result, "octal-mode");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->fixable());
  auto fixed = wa::apply_fixes(text, result);
  EXPECT_NE(fixed.text.find("mode: '0644'"), std::string::npos);
  EXPECT_FALSE(has_rule(wa::analyze(fixed.text), "octal-mode"));
}

TEST(NewRules, NameMissing) {
  auto bad = wa::analyze(
      "- ansible.builtin.apt:\n    name: vim\n    state: present\n");
  EXPECT_TRUE(has_rule(bad, "name-missing"));
  auto good = wa::analyze(
      "- name: Install\n  ansible.builtin.apt:\n    name: vim\n"
      "    state: present\n");
  EXPECT_FALSE(has_rule(good, "name-missing"));
}

TEST(NewRules, EmptyDocumentIsAWarningNotAnError) {
  for (std::string_view text : {"", "   \n", "---\n"}) {
    wl::LintResult lint = wl::lint_text(text);
    EXPECT_TRUE(lint.ok()) << text;
    ASSERT_EQ(lint.violations.size(), 1u) << text;
    EXPECT_EQ(lint.violations[0].rule, "empty-document");
    EXPECT_EQ(lint.violations[0].severity, wl::Severity::Warning);
    // ... but an empty document is never a schema-correct *answer*.
    EXPECT_FALSE(wm::schema_correct(text));
  }
}

// --- fixing -------------------------------------------------------------------

TEST(Repair, ComposedFixesConvergeInOnePass) {
  const std::string text =
      "- name: Enable\n  service: name=nginx enabled=yes\n"
      "- name: Perms\n  file:\n    path: /tmp/x\n    mode: 600\n"
      "    state: touch\n";
  auto repaired = wa::repair(text);
  EXPECT_TRUE(repaired.changed);
  EXPECT_TRUE(repaired.converged);
  EXPECT_EQ(repaired.final_result.fixable_count(), 0u);
  EXPECT_NE(repaired.text.find("ansible.builtin.service:"),
            std::string::npos);
  EXPECT_NE(repaired.text.find("    enabled: true"), std::string::npos);
  EXPECT_NE(repaired.text.find("mode: '0600'"), std::string::npos);
  EXPECT_TRUE(wa::analyze(repaired.text).ok());
}

TEST(Repair, CleanInputIsUntouched) {
  const std::string text =
      "- name: Install\n  ansible.builtin.apt:\n    name: vim\n"
      "    state: present\n";
  auto repaired = wa::repair(text);
  EXPECT_FALSE(repaired.changed);
  EXPECT_TRUE(repaired.converged);
  EXPECT_EQ(repaired.text, text);
}

TEST(Repair, UnparseableInputIsUntouched) {
  const std::string text = "- name: [broken\n";
  auto repaired = wa::repair(text);
  EXPECT_FALSE(repaired.changed);
  EXPECT_EQ(repaired.text, text);
  EXPECT_FALSE(repaired.final_result.parsed);
}

// --- formatters ---------------------------------------------------------------

TEST(Format, TextCaretsPointAtTheKey) {
  const std::string text =
      "- name: Install\n  apt:\n    name: vim\n    state: present\n";
  auto result = wa::analyze(text);
  std::string rendered = wa::format_text(text, result, "play.yml");
  EXPECT_NE(rendered.find("play.yml:2:3: warning [fqcn]"),
            std::string::npos);
  EXPECT_NE(rendered.find("  apt:"), std::string::npos);
  EXPECT_NE(rendered.find("^~~"), std::string::npos);
  EXPECT_NE(rendered.find("0 errors, 1 warning"), std::string::npos);
}

TEST(Format, JsonCarriesSpansAndFixability) {
  const std::string text =
      "- name: Install\n  apt:\n    name: vim\n    state: present\n";
  std::string json = wa::format_json(wa::analyze(text));
  EXPECT_NE(json.find("\"rule\":\"fqcn\""), std::string::npos);
  EXPECT_NE(json.find("\"fixable\":true"), std::string::npos);
  EXPECT_NE(json.find("\"line\":2"), std::string::npos);
}

TEST(Format, LintResultToStringSortsBySourceOrder) {
  // The unknown-param violation sits on line 4, the fqcn/old-style ones on
  // line 6: source order must win regardless of emission order.
  wl::LintResult lint = wl::lint_text(
      "- name: A\n"
      "  ansible.builtin.debug:\n"
      "    msg: hi\n"
      "    bogus: 1\n"
      "- name: B\n"
      "  apt: name=vim state=present\n");
  std::string rendered = lint.to_string();
  std::size_t first = rendered.find("unknown-param");
  std::size_t second = rendered.find("fqcn");
  ASSERT_NE(first, std::string::npos) << rendered;
  ASSERT_NE(second, std::string::npos) << rendered;
  EXPECT_LT(first, second);
}

// --- the lint gate over a seeded eval set -------------------------------------

TEST(LintGateEval, RepairImprovesSchemaCorrectAndPreservesValidSnippets) {
  // A seeded eval set standing in for model predictions: some already
  // valid, some one mechanical fix away, one beyond repair.
  const std::vector<std::string> predictions = {
      "- name: Install vim\n  ansible.builtin.apt:\n    name: vim\n"
      "    state: present\n",
      "- name: Install git\n  ansible.builtin.apt:\n    name: git\n"
      "    state: present\n",
      "- name: Install curl\n  apt: name=curl state=present\n",
      "- name: Enable nginx\n  service: name=nginx enabled=yes\n",
      "- name: Broken\n  ansible.builtin.notamodule:\n    x: 1\n",
  };
  std::size_t schema_off = 0, schema_repair = 0;
  for (const std::string& prediction : predictions) {
    ws::LintOutcome off = ws::lint_gate(prediction, ws::LintPolicy::Off);
    ws::LintOutcome rep = ws::lint_gate(prediction, ws::LintPolicy::Repair);
    if (off.schema_correct) {
      ++schema_off;
      // Already-valid predictions must come back byte-identical (Exact
      // Match unchanged).
      EXPECT_EQ(rep.snippet, prediction);
      EXPECT_FALSE(rep.repaired);
    }
    if (rep.schema_correct) ++schema_repair;
  }
  EXPECT_EQ(schema_off, 2u);
  EXPECT_EQ(schema_repair, 4u);  // strictly better: both k=v forms repaired
}

TEST(LintGate, PolicyNamesRoundTrip) {
  for (ws::LintPolicy p :
       {ws::LintPolicy::Off, ws::LintPolicy::Annotate, ws::LintPolicy::Repair,
        ws::LintPolicy::RejectDegraded}) {
    ws::LintPolicy back;
    ASSERT_TRUE(ws::lint_policy_from_name(ws::lint_policy_name(p), &back));
    EXPECT_EQ(back, p);
  }
  ws::LintPolicy out;
  EXPECT_FALSE(ws::lint_policy_from_name("bogus", &out));
}

TEST(LintGate, AnnotateReportsWithoutChanging) {
  const std::string text =
      "- name: Install\n  apt: name=vim state=present\n";
  ws::LintOutcome outcome = ws::lint_gate(text, ws::LintPolicy::Annotate);
  EXPECT_TRUE(outcome.analyzed);
  EXPECT_FALSE(outcome.repaired);
  EXPECT_EQ(outcome.snippet, text);
  EXPECT_FALSE(outcome.schema_correct);
  EXPECT_FALSE(outcome.diagnostics.empty());
}

TEST(LintGate, RejectDegradedRefusesUnrepairable) {
  ws::LintOutcome outcome = ws::lint_gate(
      "- name: Broken\n  ansible.builtin.notamodule:\n    x: 1\n",
      ws::LintPolicy::RejectDegraded);
  EXPECT_TRUE(outcome.rejected);
  EXPECT_FALSE(outcome.schema_correct);
  // ... but accepts what repair can save.
  ws::LintOutcome saved = ws::lint_gate(
      "- name: Install\n  apt: name=vim state=present\n",
      ws::LintPolicy::RejectDegraded);
  EXPECT_FALSE(saved.rejected);
  EXPECT_TRUE(saved.repaired);
  EXPECT_TRUE(saved.schema_correct);
}
