#include <gtest/gtest.h>

#include "serve/wire.hpp"
#include "util/rng.hpp"

namespace ws = wisdom::serve;

TEST(Wire, RequestRoundTrip) {
  ws::SuggestionRequest request;
  request.context = "- hosts: web\n  tasks:\n";
  request.prompt = "Install nginx";
  request.indent = 4;
  auto back = ws::request_from_json(ws::to_json(request));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->context, request.context);
  EXPECT_EQ(back->prompt, request.prompt);
  EXPECT_EQ(back->indent, request.indent);
}

TEST(Wire, ResponseRoundTrip) {
  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "- name: X\n  ansible.builtin.apt:\n    name: nginx\n";
  response.schema_correct = true;
  response.latency_ms = 12.5;
  response.generated_tokens = 40;
  auto back = ws::response_from_json(ws::to_json(response));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ok, response.ok);
  EXPECT_EQ(back->snippet, response.snippet);
  EXPECT_TRUE(back->schema_correct);
  EXPECT_NEAR(back->latency_ms, 12.5, 1e-6);
  EXPECT_EQ(back->generated_tokens, 40);
}

TEST(Wire, EscapingSpecialCharacters) {
  EXPECT_EQ(ws::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(ws::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(ws::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(ws::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(ws::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Wire, RoundTripWithControlCharacters) {
  ws::SuggestionRequest request;
  request.prompt = "with \"quotes\" and\nnewlines\tand tabs \\ slashes";
  auto back = ws::request_from_json(ws::to_json(request));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->prompt, request.prompt);
}

TEST(Wire, ParsesHandWrittenJson) {
  auto request = ws::request_from_json(
      R"({"prompt": "Start nginx", "indent": 2, "context": ""})");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->prompt, "Start nginx");
  EXPECT_EQ(request->indent, 2);
}

TEST(Wire, OptionalFieldsDefault) {
  auto request = ws::request_from_json(R"({"prompt": "x"})");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->context, "");
  EXPECT_EQ(request->indent, 0);
}

TEST(Wire, RejectsMalformedJson) {
  EXPECT_FALSE(ws::request_from_json("").has_value());
  EXPECT_FALSE(ws::request_from_json("not json").has_value());
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": }").has_value());
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"x\"").has_value());
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"x\"} extra").has_value());
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": 42}").has_value());
  EXPECT_FALSE(ws::request_from_json("{}").has_value());  // prompt required
  EXPECT_FALSE(
      ws::request_from_json("{\"prompt\": \"x\", \"indent\": \"four\"}")
          .has_value());
}

TEST(Wire, RejectsMalformedResponse) {
  EXPECT_FALSE(ws::response_from_json("{\"ok\": \"yes\"}").has_value());
  EXPECT_FALSE(ws::response_from_json("{\"snippet\": \"x\"}").has_value());
}

TEST(Wire, FuzzNoiseNeverCrashes) {
  wisdom::util::Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    std::string noise;
    std::size_t len = rng.uniform(60);
    for (std::size_t j = 0; j < len; ++j) {
      // Bias toward JSON punctuation to reach deeper parser states.
      const char* pool = "{}[]\",:0123456789.eE+-truefalsn \\\"\n";
      noise += pool[rng.uniform(34)];
    }
    ws::request_from_json(noise);   // must not crash
    ws::response_from_json(noise);  // must not crash
  }
  SUCCEED();
}

TEST(Wire, TraceIdRoundTrips) {
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  request.trace_id = "editor-4217";
  auto parsed = ws::request_from_json(ws::to_json(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, "editor-4217");

  // Empty trace_id is omitted from the wire entirely.
  request.trace_id.clear();
  EXPECT_EQ(ws::to_json(request).find("trace_id"), std::string::npos);
}

TEST(Wire, ServerTimingRoundTripsSortedAndExact) {
  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "- name: x\n";
  response.trace_id = "00ff00ff00ff00ff";
  response.server_timing_ms = {
      {"decode", 9.125}, {"prefill", 1.5}, {"tokenize", 0.25}};
  std::string json = ws::to_json(response);
  // std::map ordering makes the nested object deterministic.
  EXPECT_NE(json.find("\"server_timing_ms\": {\"decode\": 9.125, "
                      "\"prefill\": 1.500, \"tokenize\": 0.250}"),
            std::string::npos)
      << json;
  auto parsed = ws::response_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, "00ff00ff00ff00ff");
  ASSERT_EQ(parsed->server_timing_ms.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed->server_timing_ms.at("decode"), 9.125);
  EXPECT_DOUBLE_EQ(parsed->server_timing_ms.at("prefill"), 1.5);
  EXPECT_DOUBLE_EQ(parsed->server_timing_ms.at("tokenize"), 0.25);

  // Empty map: field omitted.
  response.server_timing_ms.clear();
  EXPECT_EQ(ws::to_json(response).find("server_timing_ms"),
            std::string::npos);
}

TEST(Wire, UnknownNestedObjectFieldsAreTolerated) {
  // Forward compatibility: a newer server may attach object-valued fields
  // this client does not know; they parse and are ignored.
  auto request = ws::request_from_json(
      R"({"prompt": "x", "future": {"a": 1, "b": {"c": "deep"}}})");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->prompt, "x");

  auto response = ws::response_from_json(
      R"({"ok": true, "snippet": "s", "ext": {"nested": {"k": true}}})");
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok);
}

TEST(Wire, RejectsHostileNesting) {
  // Unknown stage names are fine but values must be non-negative numbers.
  EXPECT_FALSE(ws::response_from_json(
                   R"({"ok": true, "snippet": "s",)"
                   R"( "server_timing_ms": {"decode": "fast"}})")
                   .has_value());
  EXPECT_FALSE(ws::response_from_json(
                   R"({"ok": true, "snippet": "s",)"
                   R"( "server_timing_ms": {"decode": -1}})")
                   .has_value());
  EXPECT_FALSE(ws::response_from_json(
                   R"({"ok": true, "snippet": "s", "server_timing_ms": 3})")
                   .has_value());
  // Nesting depth is bounded: 16 open braces overflows the cap of 8.
  std::string deep = R"({"prompt": "x", "a": )";
  for (int i = 0; i < 15; ++i) deep += "{\"a\": ";
  deep += "1";
  for (int i = 0; i < 15; ++i) deep += "}";
  deep += "}";
  EXPECT_FALSE(ws::request_from_json(deep).has_value());
  // ...while depth within the cap parses.
  EXPECT_TRUE(
      ws::request_from_json(R"({"prompt": "x", "a": {"b": {"c": 1}}})")
          .has_value());
}

// --- diagnostics / repaired fields --------------------------------------------

TEST(Wire, DiagnosticsRoundTrip) {
  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "- name: X\n  apt:\n    name: nginx\n";
  response.repaired = true;
  wisdom::analysis::Diagnostic d;
  d.rule = "fqcn";
  d.message = "module 'apt' should use its FQCN 'ansible.builtin.apt'";
  d.severity = wisdom::analysis::Severity::Warning;
  d.span = {16, 19, 2, 3};
  response.diagnostics.push_back(d);
  wisdom::analysis::Diagnostic e;
  e.rule = "duplicate-key";
  e.message = "mapping repeats key \"name\"";
  e.severity = wisdom::analysis::Severity::Error;
  e.span = {30, 34, 3, 5};
  response.diagnostics.push_back(e);

  std::string json = ws::to_json(response);
  EXPECT_NE(json.find("\"repaired\": true"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\": ["), std::string::npos);
  auto back = ws::response_from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->repaired);
  ASSERT_EQ(back->diagnostics.size(), 2u);
  EXPECT_EQ(back->diagnostics[0].rule, "fqcn");
  EXPECT_EQ(back->diagnostics[0].message, d.message);
  EXPECT_EQ(back->diagnostics[0].severity, wisdom::analysis::Severity::Warning);
  EXPECT_EQ(back->diagnostics[0].span.begin, 16u);
  EXPECT_EQ(back->diagnostics[0].span.end, 19u);
  EXPECT_EQ(back->diagnostics[0].span.line, 2u);
  EXPECT_EQ(back->diagnostics[0].span.column, 3u);
  EXPECT_EQ(back->diagnostics[1].rule, "duplicate-key");
  EXPECT_EQ(back->diagnostics[1].severity, wisdom::analysis::Severity::Error);
}

TEST(Wire, EmptyDiagnosticsOmitted) {
  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "x";
  std::string json = ws::to_json(response);
  EXPECT_EQ(json.find("\"diagnostics\""), std::string::npos);
  auto back = ws::response_from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->diagnostics.empty());
  EXPECT_FALSE(back->repaired);
}

TEST(Wire, RejectsMalformedDiagnostics) {
  // Not an array.
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "diagnostics": {}})"));
  // Element not an object.
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "diagnostics": [3]})"));
  // Missing required fields.
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "diagnostics": [{"rule": "x"}]})"));
  // Unknown severity.
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "diagnostics":)"
      R"( [{"rule": "x", "severity": "fatal", "message": "m"}]})"));
  // Negative span field.
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "diagnostics":)"
      R"( [{"rule": "x", "severity": "error", "message": "m", "line": -1}]})"));
  // Unterminated array.
  EXPECT_FALSE(ws::response_from_json(
      R"({"ok": true, "snippet": "s", "diagnostics": [})"));
  // lint-rejected error name round-trips.
  ws::ServiceError error;
  ASSERT_TRUE(ws::service_error_from_name("lint-rejected", &error));
  EXPECT_EQ(error, ws::ServiceError::LintRejected);
}
