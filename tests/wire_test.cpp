#include <gtest/gtest.h>

#include "serve/wire.hpp"
#include "util/rng.hpp"

namespace ws = wisdom::serve;

TEST(Wire, RequestRoundTrip) {
  ws::SuggestionRequest request;
  request.context = "- hosts: web\n  tasks:\n";
  request.prompt = "Install nginx";
  request.indent = 4;
  auto back = ws::request_from_json(ws::to_json(request));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->context, request.context);
  EXPECT_EQ(back->prompt, request.prompt);
  EXPECT_EQ(back->indent, request.indent);
}

TEST(Wire, ResponseRoundTrip) {
  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "- name: X\n  ansible.builtin.apt:\n    name: nginx\n";
  response.schema_correct = true;
  response.latency_ms = 12.5;
  response.generated_tokens = 40;
  auto back = ws::response_from_json(ws::to_json(response));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ok, response.ok);
  EXPECT_EQ(back->snippet, response.snippet);
  EXPECT_TRUE(back->schema_correct);
  EXPECT_NEAR(back->latency_ms, 12.5, 1e-6);
  EXPECT_EQ(back->generated_tokens, 40);
}

TEST(Wire, EscapingSpecialCharacters) {
  EXPECT_EQ(ws::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(ws::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(ws::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(ws::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(ws::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Wire, RoundTripWithControlCharacters) {
  ws::SuggestionRequest request;
  request.prompt = "with \"quotes\" and\nnewlines\tand tabs \\ slashes";
  auto back = ws::request_from_json(ws::to_json(request));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->prompt, request.prompt);
}

TEST(Wire, ParsesHandWrittenJson) {
  auto request = ws::request_from_json(
      R"({"prompt": "Start nginx", "indent": 2, "context": ""})");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->prompt, "Start nginx");
  EXPECT_EQ(request->indent, 2);
}

TEST(Wire, OptionalFieldsDefault) {
  auto request = ws::request_from_json(R"({"prompt": "x"})");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->context, "");
  EXPECT_EQ(request->indent, 0);
}

TEST(Wire, RejectsMalformedJson) {
  EXPECT_FALSE(ws::request_from_json("").has_value());
  EXPECT_FALSE(ws::request_from_json("not json").has_value());
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": }").has_value());
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"x\"").has_value());
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": \"x\"} extra").has_value());
  EXPECT_FALSE(ws::request_from_json("{\"prompt\": 42}").has_value());
  EXPECT_FALSE(ws::request_from_json("{}").has_value());  // prompt required
  EXPECT_FALSE(
      ws::request_from_json("{\"prompt\": \"x\", \"indent\": \"four\"}")
          .has_value());
}

TEST(Wire, RejectsMalformedResponse) {
  EXPECT_FALSE(ws::response_from_json("{\"ok\": \"yes\"}").has_value());
  EXPECT_FALSE(ws::response_from_json("{\"snippet\": \"x\"}").has_value());
}

TEST(Wire, FuzzNoiseNeverCrashes) {
  wisdom::util::Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    std::string noise;
    std::size_t len = rng.uniform(60);
    for (std::size_t j = 0; j < len; ++j) {
      // Bias toward JSON punctuation to reach deeper parser states.
      const char* pool = "{}[]\",:0123456789.eE+-truefalsn \\\"\n";
      noise += pool[rng.uniform(34)];
    }
    ws::request_from_json(noise);   // must not crash
    ws::response_from_json(noise);  // must not crash
  }
  SUCCEED();
}
