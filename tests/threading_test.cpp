// Thread pool and parallel-kernel tests: pool lifecycle and exception
// safety, bit-exact sequential/parallel parity for the sharded matmul
// kernels (including shapes not divisible by the thread count), whole-model
// determinism across thread counts, batched serving parity, and the
// ServiceStats percentile math.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "model/config.hpp"
#include "model/transformer.hpp"
#include "nn/ops.hpp"
#include "serve/service.hpp"
#include "text/bpe.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nn = wisdom::nn;
namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;
using wisdom::util::Rng;
using wisdom::util::ThreadPool;

namespace {

// Forces every matmul through the pool (threshold 0) while the body runs,
// then restores the sequential-friendly default.
struct ForceParallel {
  std::size_t saved = nn::parallel_threshold();
  ForceParallel() { nn::set_parallel_threshold(0); }
  ~ForceParallel() { nn::set_parallel_threshold(saved); }
};

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v)
    x = static_cast<float>(rng.normal());
  return v;
}

}  // namespace

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(103);
  pool.parallel_for(0, 103, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i)
      hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleRanges) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(b, 7);
    EXPECT_EQ(e, 8);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_calls{0};
  std::atomic<int> worker_chunks_seen{0};
  pool.parallel_for(0, 4, [&](std::int64_t, std::int64_t) {
    if (ThreadPool::in_worker()) {
      // From a worker the nested call must run inline as one full-range
      // chunk (a fixed-size pool would otherwise deadlock on itself).
      int chunks = 0;
      std::int64_t lo = -1, hi = -1;
      pool.parallel_for(0, 8, [&](std::int64_t ib, std::int64_t ie) {
        ++chunks;
        lo = ib;
        hi = ie;
        inner_calls += static_cast<int>(ie - ib);
      });
      EXPECT_EQ(chunks, 1);
      EXPECT_EQ(lo, 0);
      EXPECT_EQ(hi, 8);
      ++worker_chunks_seen;
    } else {
      // The caller's own chunk may fan the nested call out again; it just
      // must cover the range and come back.
      pool.parallel_for(0, 8, [&](std::int64_t ib, std::int64_t ie) {
        inner_calls += static_cast<int>(ie - ib);
      });
    }
  });
  EXPECT_EQ(inner_calls.load(), 4 * 8);
  EXPECT_GE(worker_chunks_seen.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 16,
                        [](std::int64_t b, std::int64_t) {
                          if (b >= 0) throw std::runtime_error("chunk");
                        }),
      std::runtime_error);
  // Pool is still usable after an exception.
  std::atomic<int> total{0};
  pool.parallel_for(0, 16, [&](std::int64_t b, std::int64_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, CleanShutdownWithoutWork) {
  for (int i = 0; i < 8; ++i) {
    ThreadPool pool(3);
    (void)pool;
  }
  SUCCEED();
}

TEST(ThreadPool, EnvThreadsParsing) {
  ASSERT_EQ(setenv("WISDOM_THREADS", "5", 1), 0);
  EXPECT_EQ(ThreadPool::env_threads(), 5);
  ASSERT_EQ(setenv("WISDOM_THREADS", "junk", 1), 0);
  EXPECT_GE(ThreadPool::env_threads(), 1);
  ASSERT_EQ(setenv("WISDOM_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::env_threads(), 1);
  ASSERT_EQ(unsetenv("WISDOM_THREADS"), 0);
  EXPECT_GE(ThreadPool::env_threads(), 1);
}

// --- sequential vs parallel kernel parity ---------------------------------

TEST(ParallelOps, MatmulBitIdenticalAcrossThreadCounts) {
  ForceParallel force;
  // Odd shapes: m and n not divisible by any pool size under test; m == 1
  // exercises the column-sharded decode path.
  const int shapes[][3] = {{7, 5, 9}, {1, 48, 65}, {13, 24, 7}, {3, 1, 11}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    auto a = random_vec(static_cast<std::size_t>(m) * k, 11);
    auto b = random_vec(static_cast<std::size_t>(k) * n, 12);
    std::vector<float> seq(static_cast<std::size_t>(m) * n);
    ThreadPool::set_global_threads(1);
    nn::matmul(a.data(), b.data(), seq.data(), m, k, n);
    for (int threads : {2, 3, 4, 8}) {
      ThreadPool::set_global_threads(threads);
      std::vector<float> par(seq.size(), -1.0f);
      nn::matmul(a.data(), b.data(), par.data(), m, k, n);
      EXPECT_EQ(0, std::memcmp(seq.data(), par.data(),
                               seq.size() * sizeof(float)))
          << "matmul " << m << "x" << k << "x" << n << " @" << threads;
    }
  }
  ThreadPool::set_global_threads(0);
}

TEST(ParallelOps, MatmulBtBitIdenticalAcrossThreadCounts) {
  ForceParallel force;
  const int shapes[][3] = {{7, 5, 9}, {1, 32, 33}, {9, 16, 5}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    auto a = random_vec(static_cast<std::size_t>(m) * k, 21);
    auto b = random_vec(static_cast<std::size_t>(n) * k, 22);
    std::vector<float> seq(static_cast<std::size_t>(m) * n);
    ThreadPool::set_global_threads(1);
    nn::matmul_bt(a.data(), b.data(), seq.data(), m, k, n);
    for (int threads : {2, 4, 8}) {
      ThreadPool::set_global_threads(threads);
      std::vector<float> par(seq.size(), -1.0f);
      nn::matmul_bt(a.data(), b.data(), par.data(), m, k, n);
      EXPECT_EQ(0, std::memcmp(seq.data(), par.data(),
                               seq.size() * sizeof(float)))
          << "matmul_bt " << m << "x" << k << "x" << n << " @" << threads;
    }
  }
  ThreadPool::set_global_threads(0);
}

TEST(ParallelOps, MatmulBackwardBitIdenticalAcrossThreadCounts) {
  ForceParallel force;
  const int shapes[][3] = {{7, 5, 9}, {1, 48, 13}, {11, 6, 3}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    auto a = random_vec(static_cast<std::size_t>(m) * k, 31);
    auto b = random_vec(static_cast<std::size_t>(k) * n, 32);
    auto dc = random_vec(static_cast<std::size_t>(m) * n, 33);
    // Non-zero seeds verify the += accumulation semantics survive sharding.
    auto da0 = random_vec(static_cast<std::size_t>(m) * k, 34);
    auto db0 = random_vec(static_cast<std::size_t>(k) * n, 35);

    std::vector<float> da_seq = da0, db_seq = db0;
    ThreadPool::set_global_threads(1);
    nn::matmul_backward(a.data(), b.data(), dc.data(), da_seq.data(),
                        db_seq.data(), m, k, n);
    for (int threads : {2, 4, 8}) {
      ThreadPool::set_global_threads(threads);
      std::vector<float> da_par = da0, db_par = db0;
      nn::matmul_backward(a.data(), b.data(), dc.data(), da_par.data(),
                          db_par.data(), m, k, n);
      EXPECT_EQ(0, std::memcmp(da_seq.data(), da_par.data(),
                               da_seq.size() * sizeof(float)))
          << "dA " << m << "x" << k << "x" << n << " @" << threads;
      EXPECT_EQ(0, std::memcmp(db_seq.data(), db_par.data(),
                               db_seq.size() * sizeof(float)))
          << "dB " << m << "x" << k << "x" << n << " @" << threads;
    }
  }
  ThreadPool::set_global_threads(0);
}

// --- whole-model determinism ----------------------------------------------

TEST(ParallelModel, LossAndGenerationIdenticalAcrossThreadCounts) {
  ForceParallel force;
  wm::ModelConfig cfg = wm::config_for(wm::SizeClass::S350M, 128, 32);
  wm::Transformer model(cfg, 5);
  Rng rng(9);
  const int batch = 3;  // odd slot count (batch * n_head = 12) still shards
  std::vector<std::int32_t> x(static_cast<std::size_t>(batch) * cfg.ctx);
  std::vector<std::int32_t> y(x.size());
  for (auto& v : x) v = static_cast<std::int32_t>(rng.uniform(cfg.vocab));
  for (auto& v : y) v = static_cast<std::int32_t>(rng.uniform(cfg.vocab));
  std::vector<std::int32_t> prompt = {3, 1, 4, 1, 5, 9, 2, 6};
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 12;

  ThreadPool::set_global_threads(1);
  const float loss_seq = model.evaluate(x, y, batch, cfg.ctx);
  const auto out_seq = model.generate(prompt, gen);

  for (int threads : {2, 4, 8}) {
    ThreadPool::set_global_threads(threads);
    EXPECT_EQ(loss_seq, model.evaluate(x, y, batch, cfg.ctx))
        << "evaluate @" << threads;
    EXPECT_EQ(out_seq, model.generate(prompt, gen))
        << "generate @" << threads;
  }
  ThreadPool::set_global_threads(0);
}

// --- batched serving ------------------------------------------------------

TEST(BatchedServe, MatchesSequentialSuggest) {
  ForceParallel force;
  ThreadPool::set_global_threads(4);
  wt::BpeTokenizer tokenizer = wt::BpeTokenizer::train(
      "- name: Install nginx\n  ansible.builtin.apt:\n"
      "    name: nginx\n    state: present\n",
      280);
  wm::ModelConfig cfg;
  cfg.vocab = static_cast<std::int32_t>(tokenizer.vocab_size());
  cfg.ctx = 48;
  cfg.d_model = 24;
  cfg.n_head = 2;
  cfg.n_layer = 2;
  cfg.d_ff = 48;
  wm::Transformer model(cfg, 17);  // untrained: output is arbitrary but
                                   // deterministic under greedy decoding
  std::vector<ws::SuggestionRequest> requests(5);
  const char* prompts[] = {"Install nginx", "Start redis", "Copy a file",
                           "Install nginx", "Enable service"};
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].prompt = prompts[i];
    requests[i].indent = static_cast<int>(i % 3);
  }

  ws::InferenceService sequential(model, tokenizer);
  std::vector<ws::SuggestionResponse> expected;
  for (const auto& r : requests) expected.push_back(sequential.suggest(r));

  ws::InferenceService batched(model, tokenizer);
  auto responses = batched.suggest_batch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(responses[i].snippet, expected[i].snippet) << "request " << i;
    EXPECT_EQ(responses[i].ok, expected[i].ok);
    EXPECT_EQ(responses[i].schema_correct, expected[i].schema_correct);
    EXPECT_EQ(responses[i].generated_tokens, expected[i].generated_tokens);
  }

  const ws::ServiceStats stats = batched.stats_snapshot();
  EXPECT_EQ(stats.requests, requests.size());
  EXPECT_EQ(stats.latencies_ms.size(), requests.size());
  EXPECT_GT(stats.tokens_per_sec(), 0.0);
  // A batch books its wall time exactly once.
  EXPECT_GT(stats.total_wall_ms, 0.0);
  ThreadPool::set_global_threads(0);
}

// --- stats percentile math ------------------------------------------------

TEST(ServiceStats, PercentilesNearestRank) {
  ws::ServiceStats stats;
  // 1..100 shuffled: percentile p must be exactly p.
  Rng rng(4);
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  rng.shuffle(values);
  for (double v : values) {
    stats.latencies_ms.push_back(v);
    ++stats.requests;
    stats.total_latency_ms += v;
  }
  EXPECT_DOUBLE_EQ(stats.p50_latency_ms(), 50.0);
  EXPECT_DOUBLE_EQ(stats.p95_latency_ms(), 95.0);
  EXPECT_DOUBLE_EQ(stats.p99_latency_ms(), 99.0);
  EXPECT_DOUBLE_EQ(stats.percentile_latency_ms(100.0), 100.0);
  EXPECT_DOUBLE_EQ(stats.percentile_latency_ms(1.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_latency_ms(), 50.5);
}

TEST(ServiceStats, PercentileEdgeCases) {
  ws::ServiceStats stats;
  EXPECT_EQ(stats.p50_latency_ms(), 0.0);
  EXPECT_EQ(stats.tokens_per_sec(), 0.0);
  stats.latencies_ms = {42.0};
  EXPECT_DOUBLE_EQ(stats.p50_latency_ms(), 42.0);
  EXPECT_DOUBLE_EQ(stats.p99_latency_ms(), 42.0);
  stats.generated_tokens = 100;
  stats.total_wall_ms = 500.0;
  EXPECT_DOUBLE_EQ(stats.tokens_per_sec(), 200.0);
}
