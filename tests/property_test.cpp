// Property-based suites: invariants that must hold across randomized
// inputs, parameterized over seeds (TEST_P).
#include <gtest/gtest.h>

#include "ansible/catalog.hpp"
#include "ansible/linter.hpp"
#include "ansible/model.hpp"
#include "data/ansible_gen.hpp"
#include "data/dataset.hpp"
#include "data/generic_yaml.hpp"
#include "metrics/ansible_aware.hpp"
#include "metrics/bleu.hpp"
#include "metrics/exact_match.hpp"
#include "metrics/schema_correct.hpp"
#include "analysis/engine.hpp"
#include "text/bpe.hpp"
#include "util/rng.hpp"
#include "yaml/emit.hpp"
#include "yaml/parse.hpp"

namespace wa = wisdom::ansible;
namespace wd = wisdom::data;
namespace wm = wisdom::metrics;
namespace wt = wisdom::text;
namespace wy = wisdom::yaml;
using wisdom::util::Rng;

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 7, 42, 99, 1234, 777777));

// --- YAML round trip over generated documents ---------------------------------

TEST_P(SeededProperty, AnsibleYamlRoundTripsExactly) {
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  for (int i = 0; i < 25; ++i) {
    wy::Node doc = i % 2 ? gen.playbook(2) : gen.role_tasks(3);
    std::string text = wy::emit(doc);
    wy::ParseError err;
    auto back = wy::parse_document(text, &err);
    ASSERT_TRUE(back.has_value()) << err.to_string() << "\n" << text;
    EXPECT_TRUE(*back == doc) << text;
  }
}

TEST_P(SeededProperty, GenericYamlRoundTripsExactly) {
  wd::GenericYamlGenerator gen{Rng{GetParam()}};
  for (int i = 0; i < 25; ++i) {
    wy::Node doc;
    switch (i % 3) {
      case 0: doc = gen.kubernetes_manifest(); break;
      case 1: doc = gen.ci_pipeline(); break;
      default: doc = gen.compose_file(); break;
    }
    std::string text = wy::emit(doc);
    auto back = wy::parse_document(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_TRUE(*back == doc) << text;
  }
}

TEST_P(SeededProperty, NormalizeIsIdempotentOnGeneratedFiles) {
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  for (int i = 0; i < 10; ++i) {
    std::string text = gen.playbook_text(3);
    auto once = wy::normalize(text);
    ASSERT_TRUE(once.has_value());
    auto twice = wy::normalize(*once);
    ASSERT_TRUE(twice.has_value());
    EXPECT_EQ(*once, *twice);
  }
}

// --- Ansible Aware invariants ----------------------------------------------------

TEST_P(SeededProperty, AwareSelfScoreIsOne) {
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  for (int i = 0; i < 25; ++i) {
    std::string text = wy::emit(gen.role_tasks(2));
    EXPECT_NEAR(wm::ansible_aware_text(text, text), 1.0, 1e-9) << text;
  }
}

TEST_P(SeededProperty, AwareIsBoundedForArbitraryPairs) {
  wd::AnsibleGenerator a{Rng{GetParam()}};
  wd::AnsibleGenerator b{Rng{GetParam() ^ 0xBEEF}};
  for (int i = 0; i < 25; ++i) {
    std::string pred = wy::emit(a.role_tasks(2));
    std::string target = wy::emit(b.role_tasks(2));
    double s = wm::ansible_aware_text(pred, target);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_P(SeededProperty, AwareInvariantUnderFqcnSpelling) {
  // Rewriting a module key between short and fully-qualified spelling must
  // not change the score ("they are first replaced by their FQCN").
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  const auto& catalog = wa::ModuleCatalog::instance();
  for (int i = 0; i < 30; ++i) {
    wy::Node task = gen.task();
    wa::Task parsed = wa::Task::from_node(task);
    const wa::ModuleSpec* spec = catalog.resolve(parsed.module);
    if (!spec) continue;
    wy::Node renamed = wy::Node::map();
    for (const auto& [key, value] : task.entries()) {
      if (key == parsed.module) {
        // Flip spelling.
        std::string other =
            key == spec->fqcn ? spec->short_name : spec->fqcn;
        renamed.set(other, value);
      } else {
        renamed.set(key, value);
      }
    }
    std::string target = wy::emit(wy::Node::seq({task}));
    std::string flipped = wy::emit(wy::Node::seq({renamed}));
    EXPECT_NEAR(wm::ansible_aware_text(flipped, target), 1.0, 1e-9)
        << target << "\nvs\n" << flipped;
  }
}

TEST_P(SeededProperty, AwareDropsWhenDeletingModuleArgs) {
  // Deleting a module parameter from the prediction must never raise the
  // score, and must strictly lower it when the target has that parameter.
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  for (int i = 0; i < 30; ++i) {
    wy::Node task = gen.task();
    wa::Task parsed = wa::Task::from_node(task);
    if (!parsed.args.is_map() || parsed.args.size() == 0) continue;
    wy::Node pruned_task = wy::Node::map();
    for (const auto& [key, value] : task.entries()) {
      if (key == parsed.module) {
        wy::Node args = value;
        args.entries().pop_back();
        pruned_task.set(key, args);
      } else {
        pruned_task.set(key, value);
      }
    }
    std::string target = wy::emit(wy::Node::seq({task}));
    std::string pruned = wy::emit(wy::Node::seq({pruned_task}));
    double self_score = wm::ansible_aware_text(target, target);
    double pruned_score = wm::ansible_aware_text(pruned, target);
    EXPECT_LT(pruned_score, self_score);
  }
}

TEST_P(SeededProperty, AwareIgnoresInsertedKeywords) {
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  wd::TaskGenOptions opts;
  opts.keyword_prob = 0.0;
  for (int i = 0; i < 20; ++i) {
    wy::Node task = gen.task(opts);
    wy::Node augmented = task;
    augmented.set("register", wy::Node::str("result"));
    augmented.set("become", wy::Node::boolean(true));
    std::string target = wy::emit(wy::Node::seq({task}));
    std::string pred = wy::emit(wy::Node::seq({augmented}));
    EXPECT_NEAR(wm::ansible_aware_text(pred, target), 1.0, 1e-9);
  }
}

// --- exact match / BLEU invariants ---------------------------------------------

TEST_P(SeededProperty, ExactMatchReflexiveOnGeneratedFiles) {
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  for (int i = 0; i < 20; ++i) {
    std::string text = gen.playbook_text(2);
    EXPECT_TRUE(wm::exact_match(text, text));
    EXPECT_NEAR(wm::sentence_bleu(text, text), 1.0, 1e-9);
  }
}

TEST_P(SeededProperty, BleuBoundedAndCorruptionLowersIt) {
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  Rng rng{GetParam() ^ 0x5555};
  for (int i = 0; i < 15; ++i) {
    std::string target = gen.role_tasks_text(3);
    // Corrupt: drop the last quarter of the text.
    std::string corrupted = target.substr(0, target.size() * 3 / 4);
    double full = wm::sentence_bleu(target, target);
    double cut = wm::sentence_bleu(corrupted, target);
    EXPECT_GE(cut, 0.0);
    EXPECT_LE(cut, 1.0);
    EXPECT_LT(cut, full);
  }
}

// --- tokenizer round trip ----------------------------------------------------------

TEST_P(SeededProperty, BpeRoundTripsGeneratedYaml) {
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  std::string corpus;
  for (int i = 0; i < 10; ++i) corpus += gen.role_tasks_text(3);
  auto tok = wt::BpeTokenizer::train(corpus, 400);
  wd::AnsibleGenerator unseen{Rng{GetParam() ^ 0xD00D}};
  for (int i = 0; i < 10; ++i) {
    std::string text = unseen.playbook_text(2);
    EXPECT_EQ(tok.decode(tok.encode(text)), text);
  }
}

// --- linter invariants ----------------------------------------------------------------

TEST_P(SeededProperty, CleanGeneratedFilesAlwaysLint) {
  // With FQCN spelling and no legacy args, the generator must emit files
  // the strict schema accepts — this pins generator and linter together.
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  wd::TaskGenOptions opts;
  opts.short_name_prob = 0.0;
  opts.old_style_prob = 0.0;
  for (int i = 0; i < 30; ++i) {
    std::string text =
        i % 2 ? gen.playbook_text(2, opts) : gen.role_tasks_text(3, opts);
    auto result = wa::lint_text(text);
    EXPECT_TRUE(result.ok()) << text << result.to_string();
  }
}

TEST_P(SeededProperty, FtSamplesAreInternallyConsistent) {
  // Reconstructing context + input + body must parse, and the target task
  // must score 1.0 against itself through the whole extraction path.
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  for (int i = 0; i < 10; ++i) {
    std::string file = i % 2 ? gen.playbook_text(3) : gen.role_tasks_text(4);
    for (const auto& sample : wd::extract_samples(file)) {
      EXPECT_TRUE(wy::is_valid_yaml(sample.full_target()))
          << sample.full_target();
      std::string full = sample.context + sample.input_line +
                         sample.target_body;
      EXPECT_TRUE(wy::is_valid_yaml(full)) << full;
      EXPECT_NEAR(wm::ansible_aware_text(sample.full_target(),
                                         sample.full_target()),
                  1.0, 1e-9);
    }
  }
}

// --- auto-fix safety ----------------------------------------------------------

// Repair must never turn a schema-correct generated document
// schema-incorrect: on clean input the fix engine finds nothing to apply
// and returns the text byte-identical; on any input it converges.
TEST_P(SeededProperty, RepairNeverBreaksSchemaCorrectDocuments) {
  wd::AnsibleGenerator gen{Rng{GetParam()}};
  for (int i = 0; i < 20; ++i) {
    wy::Node doc = i % 2 ? gen.playbook(2) : gen.role_tasks(3);
    std::string text = wy::emit(doc);
    const bool correct_before = wm::schema_correct(text);
    wisdom::analysis::RepairResult repaired = wisdom::analysis::repair(text);
    EXPECT_TRUE(repaired.converged) << text;
    if (correct_before) {
      EXPECT_TRUE(wm::schema_correct(repaired.text))
          << "repair broke:\n" << text << "\n-- into --\n" << repaired.text;
      if (repaired.changed) {
        // Fixes applied to a correct doc may only touch warnings
        // (e.g. literal normalization) — never the error count.
        EXPECT_EQ(repaired.final_result.error_count(), 0u) << repaired.text;
      }
    }
  }
}
