// HTTP front-end tests: parser robustness (torn reads, pipelining, caps),
// the /v1 status table over the wire via the FaultInjector, and the
// streaming contract — applying the SSE append/reset deltas in order must
// reproduce the single-shot snippet byte-for-byte, greedy and beam, at
// compute-pool widths 1 and 4.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/packing.hpp"
#include "net/http.hpp"
#include "net/server.hpp"
#include "serve/api.hpp"
#include "serve/fault.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "test_util.hpp"
#include "text/bpe.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace wisdom;
using net::HttpParser;

std::string request_bytes(std::string_view method, std::string_view target,
                          std::string_view body,
                          std::string_view extra_headers = "") {
  std::string out = std::string(method) + " " + std::string(target) +
                    " HTTP/1.1\r\nHost: test\r\n";
  out += extra_headers;
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return out;
}

// --- parser unit tests -----------------------------------------------------

TEST(HttpParser, ParsesCompleteRequest) {
  HttpParser parser;
  std::string bytes = request_bytes("POST", "/v1/suggest", "{\"a\": 1}",
                                    "Content-Type: application/json\r\n");
  std::size_t consumed = 0;
  ASSERT_EQ(parser.feed(bytes, &consumed), HttpParser::Status::Complete);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().target, "/v1/suggest");
  EXPECT_EQ(parser.request().body, "{\"a\": 1}");
  // Header names are lowercased on parse.
  ASSERT_NE(parser.request().header("content-type"), nullptr);
  EXPECT_EQ(*parser.request().header("content-type"), "application/json");
  EXPECT_TRUE(parser.request().keep_alive);
}

TEST(HttpParser, TornReadsByteByByte) {
  std::string bytes =
      request_bytes("POST", "/v1/suggest", "{\"prompt\": \"x\"}");
  HttpParser parser;
  HttpParser::Status result = HttpParser::Status::NeedMore;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::size_t consumed = 0;
    result = parser.feed(std::string_view(&bytes[i], 1), &consumed);
    if (i + 1 < bytes.size()) {
      ASSERT_EQ(result, HttpParser::Status::NeedMore) << "at byte " << i;
      ASSERT_EQ(consumed, 1u);
    }
  }
  ASSERT_EQ(result, HttpParser::Status::Complete);
  EXPECT_EQ(parser.request().body, "{\"prompt\": \"x\"}");
}

TEST(HttpParser, PipelinedRequestsParseInTurn) {
  std::string first = request_bytes("POST", "/a", "one");
  std::string second = request_bytes("POST", "/b", "two");
  std::string bytes = first + second;
  HttpParser parser;
  std::size_t consumed = 0;
  ASSERT_EQ(parser.feed(bytes, &consumed), HttpParser::Status::Complete);
  EXPECT_EQ(consumed, first.size());
  EXPECT_EQ(parser.request().target, "/a");
  EXPECT_EQ(parser.request().body, "one");
  parser.reset();
  std::string_view rest = std::string_view(bytes).substr(consumed);
  ASSERT_EQ(parser.feed(rest, &consumed), HttpParser::Status::Complete);
  EXPECT_EQ(consumed, second.size());
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_EQ(parser.request().body, "two");
}

TEST(HttpParser, OversizedBodyIs413BeforeBuffering) {
  net::HttpParserLimits limits;
  limits.max_body_bytes = 64;
  HttpParser parser(limits);
  // The declared length alone must trip the refusal — no body bytes sent.
  std::string head =
      "POST /v1/suggest HTTP/1.1\r\nContent-Length: 65\r\n\r\n";
  std::size_t consumed = 0;
  ASSERT_EQ(parser.feed(head, &consumed), HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, PostWithoutLengthIs411) {
  HttpParser parser;
  std::size_t consumed = 0;
  ASSERT_EQ(parser.feed("POST /v1/x HTTP/1.1\r\nHost: t\r\n\r\n", &consumed),
            HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 411);
}

TEST(HttpParser, HeaderOverflowIs431) {
  net::HttpParserLimits limits;
  limits.max_header_bytes = 128;
  HttpParser parser(limits);
  std::string bytes = "GET / HTTP/1.1\r\nX-Filler: " +
                      std::string(256, 'a');  // never terminated
  std::size_t consumed = 0;
  ASSERT_EQ(parser.feed(bytes, &consumed), HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, UnsupportedVersionIs505) {
  HttpParser parser;
  std::size_t consumed = 0;
  ASSERT_EQ(parser.feed("GET / HTTP/2.0\r\n\r\n", &consumed),
            HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(HttpParser, MalformedRequestLineIs400) {
  HttpParser parser;
  std::size_t consumed = 0;
  ASSERT_EQ(parser.feed("NOT-HTTP\r\n\r\n", &consumed),
            HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, TransferEncodingRequestIs400) {
  HttpParser parser;
  std::size_t consumed = 0;
  ASSERT_EQ(parser.feed("POST /v1/x HTTP/1.1\r\nTransfer-Encoding: "
                        "chunked\r\n\r\n",
                        &consumed),
            HttpParser::Status::Error);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, KeepAliveDefaultsPerVersion) {
  {
    HttpParser parser;
    std::size_t consumed = 0;
    ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\n\r\n", &consumed),
              HttpParser::Status::Complete);
    EXPECT_TRUE(parser.request().keep_alive);
  }
  {
    HttpParser parser;
    std::size_t consumed = 0;
    ASSERT_EQ(parser.feed("GET / HTTP/1.0\r\n\r\n", &consumed),
              HttpParser::Status::Complete);
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpParser parser;
    std::size_t consumed = 0;
    ASSERT_EQ(
        parser.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", &consumed),
        HttpParser::Status::Complete);
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    HttpParser parser;
    std::size_t consumed = 0;
    ASSERT_EQ(parser.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
                          &consumed),
              HttpParser::Status::Complete);
    EXPECT_TRUE(parser.request().keep_alive);
  }
}

// --- status table ----------------------------------------------------------

TEST(ApiTable, ServiceErrorToHttpStatus) {
  using serve::ServiceError;
  EXPECT_EQ(serve::http_status(ServiceError::None), 200);
  EXPECT_EQ(serve::http_status(ServiceError::InvalidRequest), 400);
  EXPECT_EQ(serve::http_status(ServiceError::DeadlineExceeded), 408);
  EXPECT_EQ(serve::http_status(ServiceError::LintRejected), 422);
  EXPECT_EQ(serve::http_status(ServiceError::Overloaded), 429);
  EXPECT_EQ(serve::http_status(ServiceError::GenerateFailed), 500);
  EXPECT_EQ(serve::http_status(ServiceError::CircuitOpen), 503);
  EXPECT_EQ(serve::http_status(ServiceError::Draining), 503);
  // A degraded-but-served response is still a 200.
  serve::SuggestionResponse response;
  response.ok = true;
  response.degraded = true;
  response.error = ServiceError::DeadlineExceeded;
  EXPECT_EQ(serve::http_status(response), 200);
  EXPECT_EQ(serve::api_version_prefix(serve::ApiVersion::V1), "/v1");
}

// --- end-to-end over loopback ----------------------------------------------

// The tests' micro model: seconds to train, deterministic, schema-shaped
// output. Shared across every e2e test; built by test_util.hpp.
using TinyModel = wisdom::testutil::TrainedTinyModel;

TinyModel& tiny() { return wisdom::testutil::trained_tiny(); }

// Minimal blocking client for tests: one connection, full-response reads
// (Content-Length or chunked).
class BlockingClient {
 public:
  struct Response {
    int status = 0;
    std::string head;
    std::string body;  // chunked responses: concatenated chunk payloads
    bool chunked = false;
  };

  explicit BlockingClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
    int one = 1;
    if (fd_ >= 0)
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~BlockingClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return fd_ >= 0; }

  void send_all(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  // Blocks until one complete response (or EOF) is available.
  std::optional<Response> read_response() {
    while (true) {
      std::optional<Response> parsed = try_parse();
      if (parsed) return parsed;
      char buffer[8192];
      ssize_t n = ::read(fd_, buffer, sizeof(buffer));
      if (n <= 0) return std::nullopt;
      buf_.append(buffer, static_cast<std::size_t>(n));
    }
  }

  // True when the peer closed the connection (EOF on a blocking read).
  bool at_eof() {
    char byte;
    return ::read(fd_, &byte, 1) == 0;
  }

 private:
  std::optional<Response> try_parse() {
    std::size_t head_end = buf_.find("\r\n\r\n");
    if (head_end == std::string::npos) return std::nullopt;
    Response response;
    response.head = buf_.substr(0, head_end);
    if (std::sscanf(buf_.c_str() + 9, "%d", &response.status) != 1)
      return std::nullopt;
    response.chunked =
        response.head.find("Transfer-Encoding: chunked") != std::string::npos;
    std::size_t consumed = head_end + 4;
    if (response.chunked) {
      std::size_t at = consumed;
      while (true) {
        std::size_t line_end = buf_.find("\r\n", at);
        if (line_end == std::string::npos) return std::nullopt;
        std::size_t size = std::strtoull(buf_.c_str() + at, nullptr, 16);
        std::size_t payload_at = line_end + 2;
        if (buf_.size() < payload_at + size + 2) return std::nullopt;
        if (size == 0) {
          consumed = payload_at + 2;
          break;
        }
        response.body.append(buf_, payload_at, size);
        at = payload_at + size + 2;
      }
    } else {
      std::size_t body_len = 0;
      std::size_t at = response.head.find("Content-Length: ");
      if (at != std::string::npos)
        body_len = std::strtoull(buf_.c_str() + at + 16, nullptr, 10);
      if (buf_.size() < consumed + body_len) return std::nullopt;
      response.body = buf_.substr(consumed, body_len);
      consumed += body_len;
    }
    buf_.erase(0, consumed);
    return response;
  }

  int fd_ = -1;
  std::string buf_;
};

// Undoes serve::json_escape for the SSE delta payloads.
std::string json_unescape(std::string_view text) {
  std::string out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out += text[i];
      continue;
    }
    char next = text[++i];
    switch (next) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u':
        if (i + 4 < text.size()) {
          out += static_cast<char>(
              std::strtoul(std::string(text.substr(i + 1, 4)).c_str(),
                           nullptr, 16));
          i += 4;
        }
        break;
      default: out += next; break;
    }
  }
  return out;
}

// Applies the SSE append/reset deltas in order; returns the reconstructed
// snippet and fills the final `done` response.
std::string apply_sse(const std::string& body,
                      std::optional<serve::SuggestionResponse>* done) {
  std::string accumulated;
  std::size_t at = 0;
  while (at < body.size()) {
    std::size_t end = body.find("\n\n", at);
    if (end == std::string::npos) end = body.size();
    std::string_view event = std::string_view(body).substr(at, end - at);
    at = end + 2;
    if (event.rfind("event: done\ndata: ", 0) == 0) {
      *done = serve::response_from_json(
          event.substr(std::strlen("event: done\ndata: ")));
    } else if (event.rfind("data: {\"text\": \"", 0) == 0) {
      std::size_t text_at = std::strlen("data: {\"text\": \"");
      std::size_t text_end = event.find("\", \"reset\":", text_at);
      if (text_end == std::string_view::npos) { ADD_FAILURE(); continue; }
      bool reset =
          event.find("\"reset\": true", text_end) != std::string_view::npos;
      std::string delta =
          json_unescape(event.substr(text_at, text_end - text_at));
      if (reset)
        accumulated = delta;
      else
        accumulated += delta;
    } else if (!event.empty()) {
      ADD_FAILURE() << "unrecognized SSE event: " << event;
    }
  }
  return accumulated;
}

std::string suggest_json(std::string_view prompt) {
  serve::SuggestionRequest request;
  request.prompt = std::string(prompt);
  return serve::to_json(request);
}

// Server harness: a service and HTTP server on an ephemeral port.
struct Harness {
  serve::InferenceService service;
  net::HttpServer server;

  explicit Harness(serve::ServiceOptions service_options = {},
                   net::ServerOptions server_options = {})
      : service(tiny().model, tiny().tokenizer, service_options),
        server(service, server_options) {
    EXPECT_TRUE(server.start());
  }
  ~Harness() { server.stop(); }

  BlockingClient client() { return BlockingClient(server.port()); }
};

TEST(HttpE2E, SingleShotMatchesInProcessSuggest) {
  Harness harness;
  serve::SuggestionRequest request;
  request.prompt = "Install redis";
  serve::SuggestionResponse expected = harness.service.suggest(request);

  BlockingClient client = harness.client();
  ASSERT_TRUE(client.connected());
  client.send_all(
      request_bytes("POST", "/v1/suggest", suggest_json("Install redis")));
  auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  auto wire = serve::response_from_json(response->body);
  ASSERT_TRUE(wire.has_value());
  EXPECT_TRUE(wire->ok);
  EXPECT_EQ(wire->snippet, expected.snippet);
}

// The core streaming contract: concatenating the append/reset deltas
// reproduces the single-shot snippet byte-for-byte — greedy and beam, at
// compute-pool widths 1 and 4.
void check_stream_identity(int beam_width) {
  for (int threads : {1, 4}) {
    util::ThreadPool::set_global_threads(threads);
    serve::ServiceOptions service_options;
    service_options.beam_width = beam_width;
    Harness harness(service_options);
    for (const char* prompt :
         {"Install nginx", "Install redis", "Install htop and jq"}) {
      BlockingClient single = harness.client();
      single.send_all(
          request_bytes("POST", "/v1/suggest", suggest_json(prompt)));
      auto single_response = single.read_response();
      ASSERT_TRUE(single_response.has_value());
      ASSERT_EQ(single_response->status, 200);
      auto single_wire = serve::response_from_json(single_response->body);
      ASSERT_TRUE(single_wire.has_value());

      BlockingClient stream = harness.client();
      stream.send_all(
          request_bytes("POST", "/v1/suggest/stream", suggest_json(prompt)));
      auto stream_response = stream.read_response();
      ASSERT_TRUE(stream_response.has_value());
      ASSERT_EQ(stream_response->status, 200);
      ASSERT_TRUE(stream_response->chunked);
      std::optional<serve::SuggestionResponse> done;
      std::string accumulated = apply_sse(stream_response->body, &done);
      ASSERT_TRUE(done.has_value());
      EXPECT_TRUE(done->ok);
      // Stream-internal consistency and stream-vs-single-shot identity.
      EXPECT_EQ(accumulated, done->snippet)
          << "threads=" << threads << " prompt=" << prompt;
      EXPECT_EQ(accumulated, single_wire->snippet)
          << "threads=" << threads << " prompt=" << prompt;
    }
  }
  util::ThreadPool::set_global_threads(0);
}

TEST(HttpE2E, StreamMatchesSingleShotGreedy) { check_stream_identity(1); }
TEST(HttpE2E, StreamMatchesSingleShotBeam) { check_stream_identity(2); }

TEST(HttpE2E, PipelinedKeepAliveRequests) {
  Harness harness;
  BlockingClient client = harness.client();
  ASSERT_TRUE(client.connected());
  // Both requests in one write; responses must come back in order on the
  // same connection.
  client.send_all(
      request_bytes("POST", "/v1/suggest", suggest_json("Install git")) +
      request_bytes("GET", "/v1/healthz", ""));
  auto first = client.read_response();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->status, 200);
  EXPECT_TRUE(serve::response_from_json(first->body).has_value());
  auto second = client.read_response();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, 200);
  EXPECT_NE(second->body.find("accepting"), std::string::npos);
}

TEST(HttpE2E, OversizedBodyRefusedWith413) {
  net::ServerOptions server_options;
  server_options.max_body_bytes = 256;
  Harness harness({}, server_options);
  BlockingClient client = harness.client();
  ASSERT_TRUE(client.connected());
  client.send_all("POST /v1/suggest HTTP/1.1\r\nHost: t\r\n"
                  "Content-Length: 100000\r\n\r\n");
  auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 413);
  // Protocol-level refusals close the connection.
  EXPECT_TRUE(client.at_eof());
}

TEST(HttpE2E, ErrorStatusTableOverTheWire) {
  serve::FaultInjector faults;
  serve::ServiceOptions service_options;
  service_options.faults = &faults;
  service_options.fallback_enabled = false;
  service_options.queue_capacity = 4;
  Harness harness(service_options);

  auto post = [&](std::string_view target, std::string_view body) {
    BlockingClient client = harness.client();
    client.send_all(request_bytes("POST", target, body));
    auto response = client.read_response();
    EXPECT_TRUE(response.has_value());
    return response ? response->status : -1;
  };

  EXPECT_EQ(post("/v1/suggest", "this is not json"), 400);
  EXPECT_EQ(post("/suggest", suggest_json("x")), 404);      // unversioned
  EXPECT_EQ(post("/v1/nope", suggest_json("x")), 404);
  EXPECT_EQ(post("/v1/healthz", ""), 405);                  // POST on GET-only

  faults.set_force_queue_full(true);
  EXPECT_EQ(post("/v1/suggest", suggest_json("Install vim")), 429);
  faults.set_force_queue_full(false);

  faults.set_fail_generate(1);
  EXPECT_EQ(post("/v1/suggest", suggest_json("Install vim")), 500);
  faults.reset();

  faults.set_slow_decode_after_tokens(0);
  EXPECT_EQ(post("/v1/suggest", suggest_json("Install vim")), 408);
  faults.reset();

  // Drain: admin endpoint flips healthz to 503 and refuses new work.
  BlockingClient admin = harness.client();
  admin.send_all(request_bytes("POST", "/v1/admin/drain", ""));
  auto drain_response = admin.read_response();
  ASSERT_TRUE(drain_response.has_value());
  EXPECT_EQ(drain_response->status, 200);

  BlockingClient health = harness.client();
  health.send_all("GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  auto health_response = health.read_response();
  ASSERT_TRUE(health_response.has_value());
  EXPECT_EQ(health_response->status, 503);
  EXPECT_EQ(post("/v1/suggest", suggest_json("Install vim")), 503);
}

TEST(HttpE2E, MetricsExposeHttpFamilies) {
  Harness harness;
  BlockingClient client = harness.client();
  client.send_all(
      request_bytes("POST", "/v1/suggest", suggest_json("Install jq")));
  ASSERT_TRUE(client.read_response().has_value());
  client.send_all("GET /v1/metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  auto metrics = client.read_response();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  for (const char* family :
       {"wisdom_http_connections_opened_total", "wisdom_http_requests_total",
        "wisdom_http_responses_total", "wisdom_http_status_2xx_total"}) {
    EXPECT_NE(metrics->body.find(family), std::string::npos) << family;
  }
}

// A drain issued while a stream is in flight must let the stream finish
// (valid done event, deltas == snippet) before the drain completes.
TEST(HttpE2E, DrainMidStreamCompletesInFlightStreams) {
  net::ServerOptions server_options;
  server_options.worker_threads = 3;
  Harness harness({}, server_options);

  BlockingClient stream = harness.client();
  stream.send_all(request_bytes("POST", "/v1/suggest/stream",
                                suggest_json("Install wget")));
  BlockingClient admin = harness.client();
  admin.send_all(request_bytes("POST", "/v1/admin/drain", ""));

  auto stream_response = stream.read_response();
  ASSERT_TRUE(stream_response.has_value());
  ASSERT_EQ(stream_response->status, 200);
  std::optional<serve::SuggestionResponse> done;
  std::string accumulated = apply_sse(stream_response->body, &done);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(accumulated, done->snippet);
  // The stream either completed before the drain began (ok) or ran to
  // completion under it (ok); a drain must never truncate it.
  if (done->ok) {
    EXPECT_FALSE(accumulated.empty());
  }

  auto drain_response = admin.read_response();
  ASSERT_TRUE(drain_response.has_value());
  EXPECT_EQ(drain_response->status, 200);
  EXPECT_EQ(harness.service.state(),
            serve::InferenceService::State::Stopped);
}

}  // namespace
