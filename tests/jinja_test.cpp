#include <gtest/gtest.h>

#include "ansible/jinja.hpp"
#include "yaml/parse.hpp"

namespace wa = wisdom::ansible;

namespace {
bool expr_ok(std::string_view e) { return wa::validate_jinja_expression(e); }
bool tmpl_ok(std::string_view t) { return wa::validate_template_string(t); }
}  // namespace

// --- bare expressions (when: / until: values) -----------------------------------

TEST(JinjaExpr, SimpleComparisons) {
  EXPECT_TRUE(expr_ok("ansible_os_family == 'Debian'"));
  EXPECT_TRUE(expr_ok("result.rc != 0"));
  EXPECT_TRUE(expr_ok("ansible_memtotal_mb >= 1024"));
  EXPECT_TRUE(expr_ok("retries < max_retries"));
}

TEST(JinjaExpr, BooleanLogic) {
  EXPECT_TRUE(expr_ok("a and b or not c"));
  EXPECT_TRUE(expr_ok("not (x == 1 and y == 2)"));
  EXPECT_TRUE(
      expr_ok("ansible_os_family == 'Debian' or ansible_os_family == "
              "'RedHat'"));
}

TEST(JinjaExpr, MembershipAndTests) {
  EXPECT_TRUE(expr_ok("'web' in group_names"));
  EXPECT_TRUE(expr_ok("item not in excluded_items"));
  EXPECT_TRUE(expr_ok("result is defined"));
  EXPECT_TRUE(expr_ok("value is not none"));
  EXPECT_TRUE(expr_ok("name is match('^web-')"));
}

TEST(JinjaExpr, FiltersAndCalls) {
  EXPECT_TRUE(expr_ok("run_it | bool"));
  EXPECT_TRUE(expr_ok("items | length > 0"));
  EXPECT_TRUE(expr_ok("lookup('file', 'files/id_rsa.pub')"));
  EXPECT_TRUE(expr_ok("packages | default([]) | unique"));
  EXPECT_TRUE(expr_ok("value | round(2)"));
  EXPECT_TRUE(expr_ok("hostvars[inventory_hostname].ip"));
}

TEST(JinjaExpr, ArithmeticAndLiterals) {
  EXPECT_TRUE(expr_ok("port + 1"));
  EXPECT_TRUE(expr_ok("size * 2 - overhead"));
  EXPECT_TRUE(expr_ok("'prefix-' ~ name"));
  EXPECT_TRUE(expr_ok("[1, 2, 3]"));
  EXPECT_TRUE(expr_ok("{'k': 1, 'j': 2}"));
  EXPECT_TRUE(expr_ok("true"));
  EXPECT_TRUE(expr_ok("-3.5"));
}

TEST(JinjaExpr, RejectsMalformed) {
  EXPECT_FALSE(expr_ok(""));
  EXPECT_FALSE(expr_ok("a =="));
  EXPECT_FALSE(expr_ok("== b"));
  EXPECT_FALSE(expr_ok("a ('unterminated"));
  EXPECT_FALSE(expr_ok("x | "));
  EXPECT_FALSE(expr_ok("f(a,"));
  EXPECT_FALSE(expr_ok("(a"));
  EXPECT_FALSE(expr_ok("a.b."));
  EXPECT_FALSE(expr_ok("items['key'"));
  EXPECT_FALSE(expr_ok("a b"));  // two values with no operator
  EXPECT_FALSE(expr_ok("x is"));
  EXPECT_FALSE(expr_ok("@@@"));
}

TEST(JinjaExpr, ErrorCarriesPosition) {
  wa::JinjaError error;
  EXPECT_FALSE(wa::validate_jinja_expression("abc ==", &error));
  EXPECT_FALSE(error.message.empty());
}

// --- template strings ---------------------------------------------------------------

TEST(JinjaTemplate, PlainStringsAlwaysValid) {
  EXPECT_TRUE(tmpl_ok("no templating at all"));
  EXPECT_TRUE(tmpl_ok(""));
  EXPECT_TRUE(tmpl_ok("/etc/nginx/nginx.conf"));
}

TEST(JinjaTemplate, ValidInterpolations) {
  EXPECT_TRUE(tmpl_ok("{{ base_dir }}/conf"));
  EXPECT_TRUE(tmpl_ok("port {{ app_port }} on {{ inventory_hostname }}"));
  EXPECT_TRUE(tmpl_ok("{{ lookup('env', 'HOME') }}/bin"));
  EXPECT_TRUE(tmpl_ok("{{ packages | join(',') }}"));
}

TEST(JinjaTemplate, StatementBlocksAcceptedWhenBalanced) {
  EXPECT_TRUE(tmpl_ok("{% if debug %}verbose{% endif %}"));
  EXPECT_FALSE(tmpl_ok("{% if debug"));
}

TEST(JinjaTemplate, RejectsUnbalanced) {
  EXPECT_FALSE(tmpl_ok("{{ unclosed"));
  EXPECT_FALSE(tmpl_ok("closed }} without open"));
  EXPECT_FALSE(tmpl_ok("{{ }}"));        // empty expression
  EXPECT_FALSE(tmpl_ok("{{ a == }}"));   // bad inner expression
}

// --- deep lint over tasks -------------------------------------------------------------

namespace {
wa::LintResult lint_jinja(std::string_view yaml_text) {
  auto doc = wisdom::yaml::parse_document(yaml_text);
  EXPECT_TRUE(doc.has_value());
  return wa::lint_task_jinja(*doc);
}
}  // namespace

TEST(JinjaLint, CleanTaskPasses) {
  auto result = lint_jinja(
      "name: Render config\n"
      "ansible.builtin.template:\n"
      "  src: templates/nginx.conf.j2\n"
      "  dest: '{{ conf_dir }}/nginx.conf'\n"
      "when: ansible_os_family == 'Debian'\n");
  EXPECT_TRUE(result.ok()) << result.to_string();
}

TEST(JinjaLint, BadWhenExpression) {
  auto result = lint_jinja(
      "ansible.builtin.ping:\n"
      "when: ansible_os_family ==\n");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.violations[0].rule, "jinja-syntax");
}

TEST(JinjaLint, WhenListChecksEveryItem) {
  auto result = lint_jinja(
      "ansible.builtin.ping:\n"
      "when:\n"
      "  - a == 1\n"
      "  - b ==\n");
  EXPECT_FALSE(result.ok());
}

TEST(JinjaLint, BadInterpolationInsideParams) {
  auto result = lint_jinja(
      "ansible.builtin.copy:\n"
      "  src: files/app.conf\n"
      "  dest: '{{ broken'\n");
  EXPECT_FALSE(result.ok());
}

TEST(JinjaLint, BooleanWhenIsFine) {
  auto result = lint_jinja(
      "ansible.builtin.ping:\n"
      "when: true\n");
  EXPECT_TRUE(result.ok()) << result.to_string();
}
