// Tests for the paper's flagged extensions: sampling decoding ("we would
// expect some improvement by using random sampling or beam search") and
// Ansible blocks ("something we hope to expand to in the future").
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ansible/linter.hpp"
#include "ansible/model.hpp"
#include "core/trainer.hpp"
#include "data/ansible_gen.hpp"
#include "data/packing.hpp"
#include "metrics/ansible_aware.hpp"
#include "model/transformer.hpp"
#include "text/bpe.hpp"
#include "util/rng.hpp"
#include "yaml/emit.hpp"
#include "yaml/parse.hpp"

namespace wa = wisdom::ansible;
namespace wc = wisdom::core;
namespace wd = wisdom::data;
namespace wm = wisdom::model;
namespace wmet = wisdom::metrics;
namespace wt = wisdom::text;
namespace wy = wisdom::yaml;
using wisdom::util::Rng;

// --- sampling decoding --------------------------------------------------------

namespace {

struct TrainedModel {
  wt::BpeTokenizer tokenizer;
  wm::Transformer model;

  TrainedModel()
      : tokenizer(wt::BpeTokenizer::train(corpus(), 320)),
        model(config(), 33) {
    wd::AnsibleGenerator gen{Rng{5}};
    std::vector<std::string> texts;
    for (int i = 0; i < 60; ++i) texts.push_back(gen.role_tasks_text(2));
    auto set = wd::pack_samples(tokenizer, texts, 64);
    wc::TrainConfig tc;
    tc.epochs = 4;
    tc.micro_batch = 4;
    tc.grad_accum = 1;
    tc.lr = 3e-3f;
    wc::train_model(model, set, nullptr, tc);
  }

  static std::string corpus() {
    wd::AnsibleGenerator gen{Rng{4}};
    std::string out;
    for (int i = 0; i < 30; ++i) out += gen.role_tasks_text(3);
    return out;
  }
  wm::ModelConfig config() const {
    wm::ModelConfig cfg;
    cfg.vocab = static_cast<int>(tokenizer.vocab_size());
    cfg.ctx = 64;
    cfg.d_model = 24;
    cfg.n_head = 2;
    cfg.n_layer = 2;
    cfg.d_ff = 48;
    return cfg;
  }
};

TrainedModel& trained() {
  static TrainedModel t;
  return t;
}

}  // namespace

TEST(Sampling, GreedyIsDeterministic) {
  auto& t = trained();
  auto prompt = t.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 20;
  EXPECT_EQ(t.model.generate(prompt, gen), t.model.generate(prompt, gen));
}

TEST(Sampling, SeededSamplingIsReproducible) {
  auto& t = trained();
  auto prompt = t.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 20;
  gen.temperature = 0.8f;
  gen.top_k = 8;
  gen.sample_seed = 123;
  EXPECT_EQ(t.model.generate(prompt, gen), t.model.generate(prompt, gen));
  gen.sample_seed = 456;
  // Different seeds usually diverge; assert at least the API accepts it.
  auto other = t.model.generate(prompt, gen);
  EXPECT_FALSE(other.empty());
}

TEST(Sampling, HighTemperatureProducesDiversity) {
  auto& t = trained();
  auto prompt = t.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::GenerateOptions gen;
  gen.max_new_tokens = 16;
  gen.temperature = 1.5f;
  std::set<std::vector<std::int32_t>> outputs;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    gen.sample_seed = seed;
    outputs.insert(t.model.generate(prompt, gen));
  }
  EXPECT_GT(outputs.size(), 1u);
}

TEST(Sampling, TopKOneEqualsGreedy) {
  auto& t = trained();
  auto prompt = t.tokenizer.encode("- name: Start nginx\n");
  wm::Transformer::GenerateOptions greedy;
  greedy.max_new_tokens = 16;
  wm::Transformer::GenerateOptions topk1 = greedy;
  topk1.temperature = 0.7f;
  topk1.top_k = 1;
  EXPECT_EQ(t.model.generate(prompt, greedy),
            t.model.generate(prompt, topk1));
}

TEST(Sampling, ColdSampleTokenPicksClearArgmax) {
  auto& t = trained();
  // Direct unit test of the sampler: with a clear logit margin, near-zero
  // temperature always picks the argmax.
  std::vector<float> logits(t.model.config().vocab, 0.0f);
  logits[7] = 6.0f;
  logits[3] = 1.0f;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(t.model.sample_token(logits, 0.05f, 0, rng), 7);
  }
  EXPECT_EQ(t.model.argmax_token(logits), 7);
}

TEST(Sampling, HotSampleTokenSpreadsOverTopK) {
  auto& t = trained();
  std::vector<float> logits(t.model.config().vocab, -10.0f);
  logits[2] = 1.0f;
  logits[5] = 0.8f;
  logits[9] = 0.6f;
  Rng rng(13);
  std::set<std::int32_t> seen;
  for (int i = 0; i < 200; ++i)
    seen.insert(t.model.sample_token(logits, 1.0f, 3, rng));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count(2) && seen.count(5) && seen.count(9));
}

// --- beam search -----------------------------------------------------------------

TEST(BeamSearch, WidthOneMatchesGreedyWithoutPenalty) {
  auto& t = trained();
  auto prompt = t.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::GenerateOptions greedy;
  greedy.max_new_tokens = 16;
  wm::Transformer::BeamOptions beam;
  beam.beam_width = 1;
  beam.max_new_tokens = 16;
  beam.length_penalty = 0.0f;
  EXPECT_EQ(t.model.generate(prompt, greedy),
            t.model.generate_beam(prompt, beam));
}

TEST(BeamSearch, Deterministic) {
  auto& t = trained();
  auto prompt = t.tokenizer.encode("- name: Start nginx\n");
  wm::Transformer::BeamOptions beam;
  beam.beam_width = 4;
  beam.max_new_tokens = 20;
  EXPECT_EQ(t.model.generate_beam(prompt, beam),
            t.model.generate_beam(prompt, beam));
}

TEST(BeamSearch, ScoreAtLeastGreedy) {
  // The beam result's summed log-probability must be >= the greedy path's
  // (beam explores a superset); verified by rescoring both continuations.
  auto& t = trained();
  auto prompt = t.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::GenerateOptions gopts;
  gopts.max_new_tokens = 12;
  auto greedy = t.model.generate(prompt, gopts);
  wm::Transformer::BeamOptions bopts;
  bopts.beam_width = 4;
  bopts.max_new_tokens = 12;
  bopts.length_penalty = 0.0f;
  auto beam = t.model.generate_beam(prompt, bopts);

  auto rescore = [&](const std::vector<std::int32_t>& continuation) {
    wm::Transformer::KvCache cache = t.model.make_cache();
    std::span<const float> logits;
    for (auto tok_id : prompt) logits = t.model.decode_step(cache, tok_id);
    double total = 0.0;
    for (auto tok_id : continuation) {
      // log softmax of the chosen token
      float mx = logits[0];
      for (float v : logits) mx = std::max(mx, v);
      double z = 0.0;
      for (float v : logits) z += std::exp(static_cast<double>(v - mx));
      total += logits[static_cast<std::size_t>(tok_id)] - mx - std::log(z);
      logits = t.model.decode_step(cache, tok_id);
    }
    return total;
  };
  // Compare over the shorter common horizon.
  std::size_t n = std::min(greedy.size(), beam.size());
  if (n == 0) GTEST_SKIP() << "model stopped immediately";
  greedy.resize(n);
  beam.resize(n);
  EXPECT_GE(rescore(beam), rescore(greedy) - 1e-4);
}

TEST(BeamSearch, RespectsContextWindow) {
  auto& t = trained();
  std::vector<std::int32_t> prompt(200, 300 % t.model.config().vocab);
  wm::Transformer::BeamOptions beam;
  beam.beam_width = 3;
  beam.max_new_tokens = 100;
  auto out = t.model.generate_beam(prompt, beam);
  EXPECT_LE(static_cast<int>(out.size()), t.model.config().ctx);
}

TEST(BeamSearch, EmptyPromptReturnsEmpty) {
  auto& t = trained();
  wm::Transformer::BeamOptions beam;
  EXPECT_TRUE(t.model.generate_beam({}, beam).empty());
}

// --- blocks ---------------------------------------------------------------------

TEST(Blocks, GeneratedBlocksAreValidAndLintClean) {
  wd::AnsibleGenerator gen{Rng{17}};
  wd::TaskGenOptions opts;
  opts.block_prob = 1.0;
  opts.short_name_prob = 0.0;
  opts.old_style_prob = 0.0;
  for (int i = 0; i < 30; ++i) {
    wy::Node tasks = gen.role_tasks(2, opts);
    std::string text = wy::emit(tasks);
    ASSERT_TRUE(wy::is_valid_yaml(text)) << text;
    auto result = wa::lint_text(text);
    EXPECT_TRUE(result.ok()) << text << result.to_string();
  }
}

TEST(Blocks, BlockDetectedAndClassified) {
  wd::AnsibleGenerator gen{Rng{19}};
  wd::TaskGenOptions opts;
  opts.block_prob = 1.0;
  wy::Node b = gen.block(opts);
  EXPECT_TRUE(wa::is_block(b));
  ASSERT_TRUE(b.has("block"));
  EXPECT_TRUE(b.find("block")->is_seq());
}

TEST(Blocks, AwareScoresBlocksRecursively) {
  wd::AnsibleGenerator gen{Rng{23}};
  wd::TaskGenOptions opts;
  opts.block_prob = 1.0;
  opts.keyword_prob = 0.0;
  for (int i = 0; i < 10; ++i) {
    wy::Node b = gen.block(opts);
    std::string text = wy::emit(wy::Node::seq({b}));
    EXPECT_NEAR(wmet::ansible_aware_text(text, text), 1.0, 1e-9) << text;
    // Emptying the inner block tasks must drop the score.
    wy::Node crippled = b;
    crippled.set("block",
                 wy::Node::seq({wy::Node::map({{"ansible.builtin.ping",
                                                wy::Node::null()}})}));
    std::string bad = wy::emit(wy::Node::seq({crippled}));
    EXPECT_LT(wmet::ansible_aware_text(bad, text), 1.0) << text;
  }
}

TEST(Blocks, DefaultCorpusHasNoBlocks) {
  // The paper's models are not trained on blocks; the default generator
  // profile must reproduce that.
  wd::AnsibleGenerator gen{Rng{29}};
  for (int i = 0; i < 50; ++i) {
    wy::Node tasks = gen.role_tasks(3);
    for (const auto& task : tasks.items()) EXPECT_FALSE(wa::is_block(task));
  }
}
