#include <gtest/gtest.h>

#include "yaml/emit.hpp"
#include "yaml/parse.hpp"

namespace wy = wisdom::yaml;

namespace {
wy::Node must_parse(std::string_view text) {
  wy::ParseError err;
  auto doc = wy::parse_document(text, &err);
  EXPECT_TRUE(doc.has_value()) << err.to_string();
  return doc ? *doc : wy::Node::null();
}
}  // namespace

TEST(YamlEmit, ScalarDocument) {
  EXPECT_EQ(wy::emit(wy::Node::integer(42)), "42\n");
  EXPECT_EQ(wy::emit(wy::Node::boolean(true)), "true\n");
  EXPECT_EQ(wy::emit(wy::Node::null()), "null\n");
}

TEST(YamlEmit, DocumentStartMarker) {
  wy::EmitOptions opts;
  opts.document_start = true;
  EXPECT_EQ(wy::emit(wy::Node::str("x"), opts), "---\nx\n");
}

TEST(YamlEmit, SimpleMapping) {
  wy::Node n = wy::Node::map();
  n.set("name", wy::Node::str("Install nginx"));
  n.set("state", wy::Node::str("present"));
  EXPECT_EQ(wy::emit(n), "name: Install nginx\nstate: present\n");
}

TEST(YamlEmit, CompactSequenceOfMappings) {
  wy::Node task = wy::Node::map();
  task.set("name", wy::Node::str("Install nginx"));
  wy::Node mod = wy::Node::map();
  mod.set("name", wy::Node::str("nginx"));
  mod.set("state", wy::Node::str("present"));
  task.set("ansible.builtin.apt", mod);
  wy::Node doc = wy::Node::seq();
  doc.push_back(task);

  EXPECT_EQ(wy::emit(doc),
            "- name: Install nginx\n"
            "  ansible.builtin.apt:\n"
            "    name: nginx\n"
            "    state: present\n");
}

TEST(YamlEmit, QuotingPolicy) {
  EXPECT_TRUE(wy::scalar_needs_quotes(""));
  EXPECT_TRUE(wy::scalar_needs_quotes("yes"));
  EXPECT_TRUE(wy::scalar_needs_quotes("42"));
  EXPECT_TRUE(wy::scalar_needs_quotes("3.5"));
  EXPECT_TRUE(wy::scalar_needs_quotes("null"));
  EXPECT_TRUE(wy::scalar_needs_quotes("{{ var }}"));
  EXPECT_TRUE(wy::scalar_needs_quotes("key: value"));
  EXPECT_TRUE(wy::scalar_needs_quotes("trailing colon:"));
  EXPECT_TRUE(wy::scalar_needs_quotes(" leading space"));
  EXPECT_TRUE(wy::scalar_needs_quotes("- dash item"));
  EXPECT_TRUE(wy::scalar_needs_quotes("#comment"));
  EXPECT_FALSE(wy::scalar_needs_quotes("plain text"));
  EXPECT_FALSE(wy::scalar_needs_quotes("openssh-server"));
  EXPECT_FALSE(wy::scalar_needs_quotes("/etc/httpd.conf"));
  EXPECT_FALSE(wy::scalar_needs_quotes("set system host-name vyos"));
}

TEST(YamlEmit, QuoteScalarEscapes) {
  EXPECT_EQ(wy::quote_scalar("it's"), "'it''s'");
  EXPECT_EQ(wy::quote_scalar("a\nb"), "\"a\\nb\"");
}

TEST(YamlEmit, MultilineStringBecomesLiteralBlock) {
  wy::Node n = wy::Node::map();
  n.set("script", wy::Node::str("echo one\necho two\n"));
  EXPECT_EQ(wy::emit(n), "script: |\n  echo one\n  echo two\n");
  wy::Node n2 = wy::Node::map();
  n2.set("script", wy::Node::str("echo one\necho two"));
  EXPECT_EQ(wy::emit(n2), "script: |-\n  echo one\n  echo two\n");
}

TEST(YamlEmit, EmptyCollections) {
  wy::Node n = wy::Node::map();
  n.set("vars", wy::Node::map());
  n.set("items", wy::Node::seq());
  EXPECT_EQ(wy::emit(n), "vars: {}\nitems: []\n");
}

TEST(YamlEmit, JinjaExpressionsQuoted) {
  wy::Node n = wy::Node::map();
  n.set("path", wy::Node::str("{{ base_dir }}/conf"));
  EXPECT_EQ(wy::emit(n), "path: '{{ base_dir }}/conf'\n");
}

// --- round-trip properties ---------------------------------------------------

namespace {
// parse(emit(node)) == node must hold for every node the library builds.
void expect_round_trip(const wy::Node& node) {
  std::string text = wy::emit(node);
  wy::ParseError err;
  auto back = wy::parse_document(text, &err);
  ASSERT_TRUE(back.has_value()) << err.to_string() << "\nemitted:\n" << text;
  EXPECT_TRUE(*back == node) << "emitted:\n" << text;
}
}  // namespace

TEST(YamlRoundTrip, PaperPlaybook) {
  wy::Node doc = must_parse(
      "- hosts: servers\n"
      "  tasks:\n"
      "    - name: Install SSH server\n"
      "      ansible.builtin.apt:\n"
      "        name: openssh-server\n"
      "        state: present\n"
      "    - name: Start SSH server\n"
      "      ansible.builtin.service:\n"
      "        name: ssh\n"
      "        state: started\n");
  expect_round_trip(doc);
}

TEST(YamlRoundTrip, TrickyScalars) {
  wy::Node n = wy::Node::map();
  n.set("a", wy::Node::str("yes"));
  n.set("b", wy::Node::str("123"));
  n.set("c", wy::Node::str("0644"));
  n.set("d", wy::Node::str("http://h:80/p#frag"));
  n.set("e", wy::Node::str("key: value"));
  n.set("f", wy::Node::str("it's got 'quotes'"));
  n.set("g", wy::Node::str("multi\nline\ntext"));
  n.set("h", wy::Node::boolean(false));
  n.set("i", wy::Node::integer(-3));
  n.set("j", wy::Node::floating(2.25));
  n.set("k", wy::Node::null());
  expect_round_trip(n);
}

TEST(YamlRoundTrip, DeepNesting) {
  wy::Node inner = wy::Node::map();
  inner.set("list", wy::Node::seq({wy::Node::integer(1),
                                   wy::Node::str("two"),
                                   wy::Node::seq({wy::Node::str("x")})}));
  wy::Node mid = wy::Node::map();
  mid.set("inner", inner);
  mid.set("empty_map", wy::Node::map());
  wy::Node outer = wy::Node::seq();
  outer.push_back(mid);
  outer.push_back(wy::Node::str("tail"));
  expect_round_trip(outer);
}

TEST(YamlRoundTrip, NormalizeIsIdempotent) {
  std::string messy =
      "---\n"
      "- name:    Install   thing\n"
      "  apt: {name: nginx, state: present}\n"
      "  when: ansible_os_family == 'Debian'\n";
  auto once = wy::normalize(messy);
  ASSERT_TRUE(once.has_value());
  auto twice = wy::normalize(*once);
  ASSERT_TRUE(twice.has_value());
  EXPECT_EQ(*once, *twice);
}

TEST(YamlRoundTrip, NormalizeRejectsInvalid) {
  EXPECT_FALSE(wy::normalize("key: 'broken\n").has_value());
}
