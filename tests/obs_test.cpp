// Observability layer: metrics registry exactness under concurrency,
// histogram percentiles vs the legacy nearest-rank definition, golden
// exposition output, deterministic request tracing (fault-injected, no
// sleeps), the ServiceStats-from-registry rebacking, and the runtime kill
// switch.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "serve/fault.hpp"
#include "serve/service.hpp"
#include "text/bpe.hpp"
#include "util/thread_pool.hpp"

namespace obs = wisdom::obs;
namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;

namespace {

// Untrained micro-model: tracing and metrics tests exercise the serving
// path's structure, not suggestion quality, so skipping training keeps the
// suite fast.
struct Fixture {
  wt::BpeTokenizer tokenizer;
  wm::Transformer model;

  Fixture()
      : tokenizer(wt::BpeTokenizer::train(
            "- name: Install nginx\n  ansible.builtin.apt:\n"
            "    name: nginx\n    state: present\n",
            300)),
        model(config(), 7) {}

  wm::ModelConfig config() const {
    wm::ModelConfig cfg;
    cfg.vocab = static_cast<int>(tokenizer.vocab_size());
    cfg.ctx = 48;
    cfg.d_model = 24;
    cfg.n_head = 2;
    cfg.n_layer = 2;
    cfg.d_ff = 48;
    return cfg;
  }

  ws::ServiceOptions options() const {
    ws::ServiceOptions o;
    o.max_new_tokens = 8;
    return o;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::vector<std::pair<std::string, int>> span_shape(const obs::Trace& t) {
  std::vector<std::pair<std::string, int>> shape;
  for (const obs::Span& s : t.spans) shape.emplace_back(s.name, s.depth);
  return shape;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry

TEST(Metrics, CounterConcurrentIncrementsAreExact) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("t_hits_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Metrics, HistogramConcurrentObservesAreExact) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("t_lat_ms", {1.0, 10.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      // 1.0 is exactly representable: kThreads*kPerThread of them sum
      // exactly even under concurrent CAS adds.
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(h.bucket_value(0), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.bucket_value(1), 0u);
  EXPECT_EQ(h.bucket_value(2), 0u);  // +Inf overflow
}

TEST(Metrics, HistogramBucketUpperBoundSemantics) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("t_le_ms", {1.0, 5.0});
  h.observe(1.0);   // on the bound -> le="1"
  h.observe(1.001); // above -> le="5"
  h.observe(7.0);   // overflow -> +Inf
  EXPECT_EQ(h.bucket_value(0), 1u);
  EXPECT_EQ(h.bucket_value(1), 1u);
  EXPECT_EQ(h.bucket_value(2), 1u);
}

TEST(Metrics, HistogramPercentileMatchesLegacyNearestRankOnBucketBounds) {
  // Samples placed exactly on bucket bounds: the histogram's
  // bucket-upper-bound percentile and the legacy exact nearest-rank over
  // raw samples are the same number.
  const std::vector<double> bounds = {1.0, 2.0, 5.0, 10.0};
  const std::vector<double> samples = {1.0, 2.0, 2.0, 5.0, 10.0};

  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("t_pct_ms", bounds);
  ws::ServiceStats legacy;
  for (double s : samples) {
    h.observe(s);
    legacy.latencies_ms.push_back(s);
  }
  for (double p : {10.0, 50.0, 80.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), legacy.percentile_latency_ms(p))
        << "p=" << p;
  }
}

TEST(Metrics, KindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.counter("t_name");
  EXPECT_THROW(registry.gauge("t_name"), std::logic_error);
  EXPECT_THROW(registry.histogram("t_name"), std::logic_error);
  EXPECT_EQ(registry.find_gauge("t_name"), nullptr);
  EXPECT_NE(registry.find_counter("t_name"), nullptr);
}

TEST(Metrics, ResetZeroesButKeepsReferences) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("t_total");
  obs::Histogram& h = registry.histogram("t_ms", {1.0});
  c.inc(5);
  h.observe(0.5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  c.inc();  // cached reference still live
  EXPECT_EQ(registry.find_counter("t_total")->value(), 1u);
}

TEST(Metrics, PrometheusExpositionIsGoldenStable) {
  obs::MetricsRegistry registry;
  registry.counter("t_requests_total", "Total requests.").inc(3);
  registry.gauge("t_depth").set(2.0);
  obs::Histogram& h = registry.histogram("t_latency_ms", {1.0, 5.0}, "Latency.");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(7.0);

  const std::string expected =
      "# TYPE t_depth gauge\n"
      "t_depth 2\n"
      "# HELP t_latency_ms Latency.\n"
      "# TYPE t_latency_ms histogram\n"
      "t_latency_ms_bucket{le=\"1\"} 1\n"
      "t_latency_ms_bucket{le=\"5\"} 2\n"
      "t_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "t_latency_ms_sum 10.5\n"
      "t_latency_ms_count 3\n"
      "# HELP t_requests_total Total requests.\n"
      "# TYPE t_requests_total counter\n"
      "t_requests_total 3\n";
  EXPECT_EQ(registry.expose_prometheus(), expected);
  // Exposing twice without updates is bit-identical.
  EXPECT_EQ(registry.expose_prometheus(), expected);
}

TEST(Metrics, JsonExpositionCarriesSameValues) {
  obs::MetricsRegistry registry;
  registry.counter("t_requests_total", "Total requests.").inc(3);
  registry.gauge("t_depth").set(2.0);
  obs::Histogram& h = registry.histogram("t_latency_ms", {1.0, 5.0}, "Latency.");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(7.0);

  EXPECT_EQ(registry.expose_json(),
            "{\"counters\": {\"t_requests_total\": 3}, "
            "\"gauges\": {\"t_depth\": 2}, "
            "\"histograms\": {\"t_latency_ms\": "
            "{\"buckets\": [[1, 1], [5, 2], [\"+Inf\", 3]], "
            "\"sum\": 10.5, \"count\": 3}}}");
}

// ---------------------------------------------------------------------------
// Tracing

TEST(Trace, DeterministicIds) {
  EXPECT_EQ(obs::trace_id(0, "Install nginx"),
            obs::trace_id(0, "Install nginx"));
  EXPECT_NE(obs::trace_id(0, "Install nginx"),
            obs::trace_id(1, "Install nginx"));
  EXPECT_NE(obs::trace_id(0, "Install nginx"),
            obs::trace_id(0, "Install redis"));
  std::string hex = obs::trace_id_hex(obs::trace_id(0, "x"));
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(Trace, InertContextRecordsNothing) {
  obs::TraceContext inert;
  EXPECT_FALSE(inert.active());
  {
    auto s = inert.span("anything");
  }
  obs::Trace sink;
  obs::TraceContext null_sink(nullptr, 1);
  EXPECT_FALSE(null_sink.active());
  EXPECT_TRUE(sink.empty());
}

TEST(Trace, SpanNestingIsDeterministicUnderInjectedSlowDecode) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with WISDOM_OBS=OFF";
  obs::set_enabled(true);
  auto& f = fixture();
  // Deadline expires on the first cooperative check — inside prefill,
  // before any decode step — so the span sequence is exactly the same on
  // every machine, with no sleeps.
  ws::FaultInjector faults;
  faults.set_slow_decode_after_tokens(0);
  ws::ServiceOptions options = f.options();
  options.faults = &faults;

  auto serve_once = [&] {
    ws::InferenceService service(f.model, f.tokenizer, options);
    ws::SuggestionRequest request;
    request.prompt = "Install nginx";
    obs::Trace trace;
    request.trace = &trace;
    ws::SuggestionResponse response = service.suggest(request);
    return std::make_pair(trace, response);
  };

  auto [trace, response] = serve_once();
  EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
  EXPECT_TRUE(response.degraded);

  const std::vector<std::pair<std::string, int>> expected = {
      {"request", 0},  {"admission", 1},   {"tokenize", 1}, {"generate", 1},
      {"prefill", 2},  {"postprocess", 1}, {"fallback", 1},
  };
  EXPECT_EQ(span_shape(trace), expected);

  // A fresh service serving the same request produces the identical span
  // shape and the identical (sequence, prompt)-derived trace id.
  auto [trace2, response2] = serve_once();
  EXPECT_EQ(span_shape(trace2), expected);
  EXPECT_EQ(trace.id, trace2.id);
  EXPECT_EQ(response.trace_id, response2.trace_id);
  EXPECT_EQ(response.trace_id, obs::trace_id_hex(trace.id));
}

TEST(Trace, FullDecodeRecordsPerTokenSpansAndTimings) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with WISDOM_OBS=OFF";
  obs::set_enabled(true);
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, f.options());
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  obs::Trace trace;
  request.trace = &trace;
  ws::SuggestionResponse response = service.suggest(request);

  ASSERT_FALSE(trace.spans.empty());
  EXPECT_EQ(trace.spans[0].name, "request");
  EXPECT_EQ(trace.spans[0].depth, 0);

  int decode_spans = 0;
  double child_ms = 0.0;
  for (const obs::Span& s : trace.spans) {
    if (s.name == "decode") {
      EXPECT_EQ(s.depth, 2);
      ++decode_spans;
    }
    if (s.depth == 1) child_ms += s.duration_ms;
    EXPECT_GE(s.duration_ms, 0.0);
    EXPECT_GE(s.start_ms, 0.0);
  }
  EXPECT_EQ(decode_spans, response.generated_tokens);
  // Depth-1 stages cannot exceed the root span they nest under.
  EXPECT_LE(child_ms, trace.total_ms() + 1e-6);

  // Wire-facing per-stage totals mirror the trace.
  EXPECT_EQ(response.trace_id, obs::trace_id_hex(trace.id));
  for (const char* stage :
       {"request", "admission", "tokenize", "generate", "prefill",
        "postprocess"}) {
    EXPECT_TRUE(response.server_timing_ms.count(stage)) << stage;
  }
  EXPECT_DOUBLE_EQ(response.server_timing_ms.at("decode"),
                   trace.stage_ms("decode"));
  EXPECT_FALSE(trace.timeline().empty());

  // Per-stage histograms saw the request: one decode sample per token.
  const obs::Histogram* decode_ms =
      service.metrics().find_histogram("wisdom_serve_stage_decode_ms");
  ASSERT_NE(decode_ms, nullptr);
  EXPECT_EQ(decode_ms->count(),
            static_cast<std::uint64_t>(response.generated_tokens));
}

TEST(Trace, ClientTraceIdIsEchoed) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with WISDOM_OBS=OFF";
  obs::set_enabled(true);
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, f.options());
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  request.trace_id = "editor-4217";
  EXPECT_EQ(service.suggest(request).trace_id, "editor-4217");
}

// ---------------------------------------------------------------------------
// Service rebacking + kill switch

TEST(ServiceObs, StatsMirrorRegistryCounters) {
  obs::set_enabled(true);
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, f.options());
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  service.suggest(request);
  service.suggest(request);
  service.record_accept();
  service.record_reject();

  const ws::ServiceStats stats = service.stats_snapshot();
  const obs::MetricsRegistry& registry = service.metrics();
  EXPECT_EQ(stats.offered,
            registry.find_counter("wisdom_serve_offered_total")->value());
  EXPECT_EQ(stats.requests,
            registry.find_counter("wisdom_serve_requests_total")->value());
  EXPECT_EQ(stats.accepted,
            registry.find_counter("wisdom_serve_accepted_total")->value());
  EXPECT_EQ(stats.rejected,
            registry.find_counter("wisdom_serve_rejected_total")->value());
  EXPECT_EQ(
      stats.generated_tokens,
      registry.find_counter("wisdom_serve_generated_tokens_total")->value());
  const obs::Histogram* request_ms =
      registry.find_histogram("wisdom_serve_request_ms");
  ASSERT_NE(request_ms, nullptr);
  EXPECT_EQ(request_ms->count(), stats.requests);
  EXPECT_DOUBLE_EQ(request_ms->sum(), stats.total_latency_ms);
  EXPECT_EQ(stats.latencies_ms.size(), 2u);

  // The exposition names the serve families.
  std::string text = registry.expose_prometheus();
  EXPECT_NE(text.find("wisdom_serve_requests_total 2"), std::string::npos);
  EXPECT_NE(text.find("wisdom_serve_request_ms_count 2"), std::string::npos);
}

TEST(ServiceObs, RuntimeKillSwitchDisablesTracingButNotStats) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with WISDOM_OBS=OFF";
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, f.options());
  obs::set_enabled(false);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  obs::Trace trace;
  request.trace = &trace;
  ws::SuggestionResponse response = service.suggest(request);
  obs::set_enabled(true);

  // Disabled: no spans, no trace id, no Server-Timing on the wire.
  EXPECT_TRUE(trace.empty());
  EXPECT_TRUE(response.trace_id.empty());
  EXPECT_TRUE(response.server_timing_ms.empty());
  // The stats data model still counts: it is not instrumentation.
  EXPECT_EQ(service.stats_snapshot().requests, 1u);
  EXPECT_EQ(service.stats_snapshot().offered, 1u);
}

TEST(ServiceObs, ThreadPoolFamiliesRegisteredEagerly) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with WISDOM_OBS=OFF";
  obs::set_enabled(true);
  // Touching the pool (ctor) registers the families even before any task
  // runs, so exposition always shows them.
  std::atomic<int> sum{0};
  wisdom::util::ThreadPool::global().parallel_for(
      0, 64, [&](std::int64_t b, std::int64_t e) {
        sum.fetch_add(static_cast<int>(e - b));
      });
  EXPECT_EQ(sum.load(), 64);
  auto& global = obs::MetricsRegistry::global();
  EXPECT_NE(global.find_counter("wisdom_pool_tasks_total"), nullptr);
  EXPECT_NE(global.find_gauge("wisdom_pool_queue_depth"), nullptr);
  EXPECT_NE(global.find_histogram("wisdom_pool_task_ms"), nullptr);
}
