// Golden end-to-end regression test: a committed model checkpoint plus a
// fixed prompt set must produce byte-exact wire responses, run after run.
// Any intentional behaviour change (decoding, postprocessing, lint gate,
// wire format, caching) regenerates the goldens explicitly:
//
//   ./build/tests/golden_test --update-golden        (or
//   WISDOM_UPDATE_GOLDEN=1 ./build/tests/golden_test)
//
// which re-trains the micro model, rewrites tests/golden/model.ckpt and
// every case_*.json, and leaves the diff for review. Serving goes through
// the fully cached configuration, so the goldens also pin the `cached`
// wire field and the memo-replay path.
//
// Determinism caveat: decoding is float-exact per build configuration;
// goldens are generated under the portable flag set CI uses. A mismatch
// prints a line diff of expected vs actual.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/packing.hpp"
#include "model/checkpoint.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "text/bpe.hpp"

namespace wc = wisdom::core;
namespace wd = wisdom::data;
namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;

namespace {

bool g_update_golden = false;

std::filesystem::path golden_dir() {
  if (const char* env = std::getenv("WISDOM_GOLDEN_DIR")) return env;
  return WISDOM_GOLDEN_DIR;  // compile definition: <source>/tests/golden
}

struct GoldenCase {
  const char* name;
  const char* context;
  const char* prompt;
  int indent;
};

// Fixed forever (append new cases; never reorder). The final case repeats
// the first so the goldens pin the response-memo replay path, `cached`
// wire field included.
const GoldenCase kCases[] = {
    {"install_nginx", "", "Install nginx", 0},
    {"install_redis_with_context",
     "- name: Install nginx\n  ansible.builtin.apt:\n    name: nginx\n"
     "    state: present\n",
     "Install redis", 0},
    {"install_git_indented", "", "Install git", 2},
    {"repeat_install_nginx", "", "Install nginx", 0},
};

// Strips the fields that legitimately vary between byte-identical runs
// (wall-clock latency, trace identity); everything else must be stable.
std::string canonical_json(ws::SuggestionResponse response) {
  response.latency_ms = 0.0;
  response.trace_id.clear();
  response.server_timing_ms.clear();
  return ws::to_json(response);
}

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::filesystem::path& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << "cannot write " << path;
  out << data;
}

// First-divergence line diff, so a golden failure reads like a review.
std::string line_diff(const std::string& expected, const std::string& actual) {
  std::istringstream e(expected), a(actual);
  std::string el, al;
  std::ostringstream out;
  int line = 1;
  while (true) {
    bool more_e = static_cast<bool>(std::getline(e, el));
    bool more_a = static_cast<bool>(std::getline(a, al));
    if (!more_e && !more_a) break;
    if (!more_e) el.clear();
    if (!more_a) al.clear();
    if (el != al) {
      out << "line " << line << ":\n  - " << el << "\n  + " << al << "\n";
    }
    ++line;
  }
  return out.str();
}

wm::ModelConfig micro_config(const wt::BpeTokenizer& tokenizer) {
  wm::ModelConfig cfg;
  cfg.vocab = static_cast<int>(tokenizer.vocab_size());
  cfg.ctx = 48;
  cfg.d_model = 24;
  cfg.n_head = 2;
  cfg.n_layer = 2;
  cfg.d_ff = 48;
  return cfg;
}

// Trains the golden micro model from scratch (update mode only); normal
// runs always decode from the committed checkpoint, which is what makes
// the goldens reproducible without re-training drift.
void retrain_and_save(const std::filesystem::path& ckpt) {
  wt::BpeTokenizer tokenizer = wt::BpeTokenizer::train(
      "- name: Install nginx\n  ansible.builtin.apt:\n"
      "    name: nginx\n    state: present\n",
      300);
  wm::Transformer model(micro_config(tokenizer), 21);
  std::vector<std::string> texts;
  const char* pkgs[] = {"nginx", "redis", "git", "curl", "vim",
                        "htop", "jq", "wget"};
  for (int rep = 0; rep < 12; ++rep)
    for (const char* pkg : pkgs)
      texts.push_back(std::string("- name: Install ") + pkg +
                      "\n  ansible.builtin.apt:\n    name: " + pkg +
                      "\n    state: present\n");
  auto set = wd::pack_samples(tokenizer, texts, 48);
  wc::TrainConfig tc;
  tc.epochs = 30;
  tc.micro_batch = 4;
  tc.grad_accum = 1;
  tc.lr = 3e-3f;
  wc::train_model(model, set, nullptr, tc);
  ASSERT_TRUE(wm::save_checkpoint_file(ckpt.string(), model,
                                       tokenizer.serialize()));
}

ws::ServiceOptions golden_service_options() {
  ws::ServiceOptions options;
  options.max_new_tokens = 24;
  options.prefix_cache_enabled = true;
  options.response_cache_enabled = true;
  return options;
}

std::vector<std::string> serve_cases(const wm::Transformer& model,
                                     const wt::BpeTokenizer& tokenizer) {
  ws::InferenceService service(model, tokenizer, golden_service_options());
  std::vector<std::string> out;
  for (const GoldenCase& c : kCases) {
    ws::SuggestionRequest request;
    request.context = c.context;
    request.prompt = c.prompt;
    request.indent = c.indent;
    out.push_back(canonical_json(service.suggest(request)));
  }
  return out;
}

}  // namespace

TEST(Golden, ServedResponsesMatchCommittedBytes) {
  const auto dir = golden_dir();
  const auto ckpt = dir / "model.ckpt";
  if (g_update_golden) {
    std::filesystem::create_directories(dir);
    retrain_and_save(ckpt);
  }
  auto loaded = wm::load_checkpoint_file_ex(ckpt.string());
  ASSERT_TRUE(loaded.ok()) << "golden checkpoint unreadable ("
                           << loaded.message
                           << ") — run with --update-golden";
  auto tokenizer = wt::BpeTokenizer::deserialize(loaded.tokenizer);
  ASSERT_TRUE(tokenizer.has_value());

  auto actual = serve_cases(*loaded.model, *tokenizer);
  ASSERT_EQ(actual.size(), std::size(kCases));
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const auto path = dir / (std::string("case_") + kCases[i].name + ".json");
    if (g_update_golden) {
      write_file(path, actual[i] + "\n");
      continue;
    }
    auto expected = read_file(path);
    ASSERT_TRUE(expected.has_value())
        << path << " missing — run with --update-golden";
    EXPECT_EQ(*expected, actual[i] + "\n")
        << "golden mismatch for " << kCases[i].name << "\n"
        << line_diff(*expected, actual[i] + "\n")
        << "intentional change? regenerate with --update-golden";
  }
}

// Speculative decoding is an execution strategy, never an output decision:
// serving the golden cases with a draft model and speculative_k > 0 must
// reproduce the committed speculative-off goldens byte for byte. The draft
// is deliberately an untrained fixed-seed model — agreement quality only
// moves the accept/reject mix (exercising the mismatch-resync path hard),
// and the bytes must not care either way.
TEST(Golden, SpeculativeServingMatchesCommittedBytes) {
  const auto dir = golden_dir();
  auto loaded = wm::load_checkpoint_file_ex((dir / "model.ckpt").string());
  ASSERT_TRUE(loaded.ok()) << loaded.message;
  auto tokenizer = wt::BpeTokenizer::deserialize(loaded.tokenizer);
  ASSERT_TRUE(tokenizer.has_value());

  wm::ModelConfig draft_cfg = micro_config(*tokenizer);
  draft_cfg.d_model = 16;
  draft_cfg.n_layer = 1;
  draft_cfg.d_ff = 32;
  const wm::Transformer draft(draft_cfg, 33);

  ws::ServiceOptions options = golden_service_options();
  options.speculative_k = 3;
  options.draft_model = &draft;
  ws::InferenceService service(*loaded.model, *tokenizer, options);
  ASSERT_EQ(service.options().speculative_k, 3);

  for (const GoldenCase& c : kCases) {
    ws::SuggestionRequest request;
    request.context = c.context;
    request.prompt = c.prompt;
    request.indent = c.indent;
    const std::string actual = canonical_json(service.suggest(request));
    const auto path = dir / (std::string("case_") + c.name + ".json");
    auto expected = read_file(path);
    ASSERT_TRUE(expected.has_value())
        << path << " missing — run with --update-golden";
    EXPECT_EQ(*expected, actual + "\n")
        << "speculative serving diverged from committed goldens for "
        << c.name << "\n" << line_diff(*expected, actual + "\n");
  }
  // The identity must hold because speculation ran, not because the gate
  // silently disabled it.
  const auto* proposed =
      service.metrics().find_counter("wisdom_spec_proposed_total");
  ASSERT_NE(proposed, nullptr);
  EXPECT_GT(proposed->value(), 0u);
}

// The checkpoint round-trip is part of the regression surface: a model
// saved and reloaded must serve the exact same golden bytes, and
// invalidate_caches() (mandatory on reload) must not change them.
TEST(Golden, CheckpointRoundTripServesSameBytes) {
  const auto ckpt = golden_dir() / "model.ckpt";
  auto first = wm::load_checkpoint_file_ex(ckpt.string());
  ASSERT_TRUE(first.ok()) << first.message;
  auto tokenizer = wt::BpeTokenizer::deserialize(first.tokenizer);
  ASSERT_TRUE(tokenizer.has_value());
  auto baseline = serve_cases(*first.model, *tokenizer);

  // Save → reload → serve again, with a cache invalidation where a real
  // deployment would put it (right after swapping the model in).
  std::string bytes = wm::save_checkpoint(*first.model, first.tokenizer);
  auto second = wm::load_checkpoint_ex(bytes);
  ASSERT_TRUE(second.ok()) << second.message;
  ws::InferenceService service(*second.model, *tokenizer,
                               golden_service_options());
  ws::SuggestionRequest warm;
  warm.prompt = "Install nginx";
  service.suggest(warm);  // populate caches
  service.invalidate_caches();
  EXPECT_EQ(service.prefix_cache_stats().entries, 0u);

  std::vector<std::string> replayed;
  for (const GoldenCase& c : kCases) {
    ws::SuggestionRequest request;
    request.context = c.context;
    request.prompt = c.prompt;
    request.indent = c.indent;
    replayed.push_back(canonical_json(service.suggest(request)));
  }
  // The pre-invalidation warm-up made "install_nginx" a memo hit in the
  // replay only if invalidation failed; equal bytes prove it worked and
  // the round-tripped model decodes identically.
  EXPECT_EQ(replayed, baseline);
}

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-golden") g_update_golden = true;
  }
  if (const char* env = std::getenv("WISDOM_UPDATE_GOLDEN")) {
    if (std::string_view(env) == "1") g_update_golden = true;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
