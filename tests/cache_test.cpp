// Prefix KV cache + response memo: unit tests for the cache structures,
// byte-identity property tests (cache-on serving must equal cache-off
// serving bit for bit, across thread counts, beam search and
// deadline-salvaged partials), and a multi-threaded eviction stress test
// whose counters must reconcile exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "data/packing.hpp"
#include "serve/prefix_cache.hpp"
#include "serve/response_cache.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"
#include "text/bpe.hpp"
#include "util/thread_pool.hpp"

namespace wc = wisdom::core;
namespace wd = wisdom::data;
namespace wm = wisdom::model;
namespace ws = wisdom::serve;
namespace wt = wisdom::text;
namespace wu = wisdom::util;

namespace {

// One trained micro-model shared by the suite (training takes ~2s);
// the builder lives in test_util.hpp, shared with the other suites.
wisdom::testutil::TrainedTinyModel& fixture() {
  return wisdom::testutil::trained_tiny();
}

// Synthetic snapshot for structure-level tests: 2 layers, 8-wide rows.
// byte_size() = (2 * L*8 + 2 * L*8) * 4 + 16 * 4 = 128 * L + 64.
wm::Transformer::KvCache fake_snapshot(int length) {
  wm::Transformer::KvCache cache;
  cache.row_width = 8;
  cache.capacity = 64;
  cache.length = length;
  cache.keys.assign(2, std::vector<float>(
                           static_cast<std::size_t>(length) * 8, 1.0f));
  cache.values.assign(2, std::vector<float>(
                             static_cast<std::size_t>(length) * 8, 2.0f));
  cache.logits.assign(16, 0.25f);
  return cache;
}

std::vector<std::int32_t> seq(std::initializer_list<std::int32_t> tokens) {
  return tokens;
}

// Fields that must be identical between cached and uncached serving. The
// explicitly excluded fields are per-request bookkeeping: latency_ms,
// trace_id, server_timing_ms, and the `cached` flag itself.
void expect_same_payload(const ws::SuggestionResponse& a,
                         const ws::SuggestionResponse& b,
                         const std::string& label) {
  EXPECT_EQ(a.ok, b.ok) << label;
  EXPECT_EQ(a.snippet, b.snippet) << label;
  EXPECT_EQ(a.schema_correct, b.schema_correct) << label;
  EXPECT_EQ(a.generated_tokens, b.generated_tokens) << label;
  EXPECT_EQ(a.degraded, b.degraded) << label;
  EXPECT_EQ(a.repaired, b.repaired) << label;
  EXPECT_EQ(a.error, b.error) << label;
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size()) << label;
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].rule, b.diagnostics[i].rule) << label;
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message) << label;
  }
}

// A playbook-editing session: growing shared context, varied prompts, and
// exact repeats of earlier requests (the memo's bread and butter).
std::vector<ws::SuggestionRequest> workload() {
  const char* pkgs[] = {"nginx", "redis", "git", "curl"};
  std::vector<ws::SuggestionRequest> requests;
  std::string context;
  for (const char* pkg : pkgs) {
    ws::SuggestionRequest request;
    request.context = context;
    request.prompt = std::string("Install ") + pkg;
    request.indent = 0;
    requests.push_back(request);
    context += std::string("- name: Install ") + pkg +
               "\n  ansible.builtin.apt:\n    name: " + pkg +
               "\n    state: present\n";
  }
  // Exact repeats, out of order.
  requests.push_back(requests[2]);
  requests.push_back(requests[0]);
  requests.push_back(requests[3]);
  requests.push_back(requests[1]);
  requests.push_back(requests[2]);
  return requests;
}

ws::ServiceOptions cached_options() {
  ws::ServiceOptions options;
  options.max_new_tokens = 24;
  options.prefix_cache_enabled = true;
  options.response_cache_enabled = true;
  return options;
}

}  // namespace

// --- KvCache clone/truncate ------------------------------------------------

TEST(KvCache, CloneCompactsAndKeepsLogitsOnlyAtFullLength) {
  wm::Transformer::KvCache cache = fake_snapshot(10);
  wm::Transformer::KvCache full = cache.clone();
  EXPECT_EQ(full.length, 10);
  EXPECT_EQ(full.keys[0].size(), 80u);  // compact: exactly length * width
  EXPECT_EQ(full.logits.size(), 16u);
  EXPECT_EQ(full.byte_size(), cache.byte_size());

  wm::Transformer::KvCache half = cache.clone(5);
  EXPECT_EQ(half.length, 5);
  EXPECT_EQ(half.keys[0].size(), 40u);
  EXPECT_TRUE(half.logits.empty()) << "partial clone must drop logits";
  EXPECT_LT(half.byte_size(), cache.byte_size());
}

TEST(KvCache, TruncateDropsTailAndLogits) {
  wm::Transformer::KvCache cache = fake_snapshot(10);
  cache.truncate(3);
  EXPECT_EQ(cache.length, 3);
  EXPECT_TRUE(cache.logits.empty());
  cache.truncate(7);  // growing is a no-op
  EXPECT_EQ(cache.length, 3);
}

// --- PrefixKvCache structure ------------------------------------------------

TEST(PrefixCache, ExactHitCarriesLogits) {
  ws::PrefixKvCache cache;
  auto tokens = seq({1, 2, 3});
  EXPECT_EQ(cache.insert(tokens, fake_snapshot(3)),
            ws::PrefixKvCache::InsertOutcome::Stored);
  auto hit = cache.lookup(tokens);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->exact);
  EXPECT_EQ(hit->reused_tokens, 3);
  EXPECT_EQ(hit->cache.length, 3);
  EXPECT_FALSE(hit->cache.logits.empty());
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.tokens_reused, 3u);
}

TEST(PrefixCache, DivergentRequestReusesSharedSpan) {
  ws::PrefixKvCache cache;
  cache.insert(seq({1, 2, 3, 4, 5}), fake_snapshot(5));

  // Diverges after 3 tokens: the snapshot's first 3 rows are reusable.
  auto hit = cache.lookup(seq({1, 2, 3, 9}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->exact);
  EXPECT_EQ(hit->reused_tokens, 3);
  EXPECT_EQ(hit->cache.length, 3);
  EXPECT_TRUE(hit->cache.logits.empty())
      << "truncated reuse must drop the stale logits";

  // A strict prefix of the cached sequence: the walk covers the whole
  // request, so one row is held back to re-decode the last prompt token.
  auto prefix_hit = cache.lookup(seq({1, 2}));
  ASSERT_TRUE(prefix_hit.has_value());
  EXPECT_EQ(prefix_hit->reused_tokens, 1);
  EXPECT_FALSE(prefix_hit->exact);

  // Longer request: the on-path snapshot covers its first 5 tokens.
  auto longer = cache.lookup(seq({1, 2, 3, 4, 5, 6, 7}));
  ASSERT_TRUE(longer.has_value());
  EXPECT_EQ(longer->reused_tokens, 5);
  EXPECT_FALSE(longer->exact);

  EXPECT_FALSE(cache.lookup(seq({9, 9, 9})).has_value());
}

TEST(PrefixCache, InsertOutcomes) {
  ws::PrefixCacheOptions options;
  options.byte_budget = 4096;
  ws::PrefixKvCache cache(options);
  EXPECT_EQ(cache.insert(seq({1, 2}), fake_snapshot(2)),
            ws::PrefixKvCache::InsertOutcome::Stored);
  EXPECT_EQ(cache.insert(seq({1, 2}), fake_snapshot(2)),
            ws::PrefixKvCache::InsertOutcome::Refreshed);
  // A snapshot larger than the whole budget can never fit.
  EXPECT_EQ(cache.insert(std::vector<std::int32_t>(30, 7),
                         fake_snapshot(30)),
            ws::PrefixKvCache::InsertOutcome::Rejected);
  EXPECT_EQ(cache.insert({}, fake_snapshot(0)),
            ws::PrefixKvCache::InsertOutcome::Rejected);
  auto stats = cache.stats();
  EXPECT_EQ(stats.stored, 1u);
  EXPECT_EQ(stats.refreshed, 1u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PrefixCache, LruEvictionHonorsByteBudget) {
  // fake_snapshot(8) is 128 * 8 + 64 = 1088 bytes + ~288 path overhead:
  // budget 3000 fits two entries, never three.
  ws::PrefixCacheOptions options;
  options.byte_budget = 3000;
  ws::PrefixKvCache cache(options);
  std::vector<std::int32_t> a(8, 1), b(8, 2), c(8, 3);
  cache.insert(a, fake_snapshot(8));
  cache.insert(b, fake_snapshot(8));
  EXPECT_LE(cache.bytes_held(), options.byte_budget);
  EXPECT_EQ(cache.stats().entries, 2u);

  cache.lookup(a);  // A is now most recently used
  cache.insert(c, fake_snapshot(8));
  EXPECT_LE(cache.bytes_held(), options.byte_budget);
  auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_TRUE(cache.lookup(a).has_value()) << "recently used survives";
  EXPECT_FALSE(cache.lookup(b).has_value()) << "LRU entry was evicted";
  EXPECT_TRUE(cache.lookup(c).has_value());
}

TEST(PrefixCache, TtlExpiresUntouchedEntries) {
  ws::PrefixCacheOptions options;
  options.ttl_lookups = 3;
  ws::PrefixKvCache cache(options);
  cache.insert(seq({1, 2}), fake_snapshot(2));
  for (int i = 0; i < 4; ++i) cache.lookup(seq({9}));
  EXPECT_FALSE(cache.lookup(seq({1, 2})).has_value());
  auto stats = cache.stats();
  EXPECT_EQ(stats.expirations, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(PrefixCache, ClearAndCounterIdentities) {
  ws::PrefixKvCache cache;
  cache.insert(seq({1}), fake_snapshot(1));
  cache.insert(seq({1, 2}), fake_snapshot(2));
  cache.lookup(seq({1, 2}));
  cache.lookup(seq({5}));
  cache.clear();
  auto stats = cache.stats();
  EXPECT_EQ(stats.cleared, 2u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(cache.bytes_held(), 0u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.entries,
            stats.stored - stats.evictions - stats.expirations -
                stats.cleared);
  // Cleared trie state is really gone, not just uncounted.
  EXPECT_FALSE(cache.lookup(seq({1, 2})).has_value());
}

// --- ResponseCache structure ------------------------------------------------

TEST(ResponseCache, HitReplaysSanitizedResponse) {
  ws::ResponseCache cache;
  ws::ResponseCache::Key key{"ctx", "prompt", 0, 24, 0};
  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "- name: prompt\n  ansible.builtin.apt:\n";
  response.schema_correct = true;
  response.generated_tokens = 7;
  response.latency_ms = 12.5;
  response.trace_id = "f00d";
  response.server_timing_ms["decode"] = 9.0;
  cache.insert(key, response);

  auto memo = cache.lookup(key);
  ASSERT_TRUE(memo.has_value());
  EXPECT_TRUE(memo->cached);
  EXPECT_EQ(memo->snippet, response.snippet);
  EXPECT_EQ(memo->generated_tokens, 7);
  EXPECT_EQ(memo->latency_ms, 0.0) << "per-request fields are re-stamped";
  EXPECT_TRUE(memo->trace_id.empty());
  EXPECT_TRUE(memo->server_timing_ms.empty());

  ws::ResponseCache::Key other = key;
  other.max_new_tokens = 48;
  EXPECT_FALSE(cache.lookup(other).has_value())
      << "generation options are part of the key";
}

TEST(ResponseCache, NeverMemoizesDegradedResponses) {
  ws::ResponseCache cache;
  ws::ResponseCache::Key key{"", "p", 0, 24, 0};
  ws::SuggestionResponse degraded;
  degraded.ok = true;
  degraded.degraded = true;
  degraded.snippet = "fallback";
  cache.insert(key, degraded);
  ws::SuggestionResponse failed;
  failed.ok = false;
  failed.error = ws::ServiceError::GenerateFailed;
  cache.insert(key, failed);
  EXPECT_EQ(cache.stats().stored, 0u);
  // lookup() above the two rejected inserts: still a miss.
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(ResponseCache, EntryCapEvictsLru) {
  ws::ResponseCacheOptions options;
  options.max_entries = 2;
  ws::ResponseCache cache(options);
  ws::SuggestionResponse response;
  response.ok = true;
  response.snippet = "s";
  for (int i = 0; i < 3; ++i)
    cache.insert({"", "p" + std::to_string(i), 0, 24, 0}, response);
  auto stats = cache.stats();
  EXPECT_EQ(stats.stored, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_FALSE(cache.lookup({"", "p0", 0, 24, 0}).has_value());
  EXPECT_TRUE(cache.lookup({"", "p2", 0, 24, 0}).has_value());
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

// --- byte-identity properties ----------------------------------------------

// The tentpole invariant: serving with both cache levels enabled produces
// byte-identical responses to serving with them disabled, at 1 and 4
// threads, over single and batched paths.
TEST(CacheIdentity, CachedServingMatchesUncachedAcrossThreads) {
  auto& f = fixture();
  auto requests = workload();
  for (int threads : {1, 4}) {
    wu::ThreadPool::set_global_threads(threads);
    ws::ServiceOptions off;
    off.max_new_tokens = 24;
    ws::InferenceService cold(f.model, f.tokenizer, off);
    ws::InferenceService warm(f.model, f.tokenizer, cached_options());

    for (std::size_t i = 0; i < requests.size(); ++i) {
      auto a = cold.suggest(requests[i]);
      auto b = warm.suggest(requests[i]);
      expect_same_payload(a, b,
                          "suggest threads=" + std::to_string(threads) +
                              " request=" + std::to_string(i));
    }
    // The identity must hold because the caches were exercised, not
    // because they sat idle.
    EXPECT_GT(warm.prefix_cache_stats().hits, 0u);
    EXPECT_GT(warm.response_cache_stats().hits, 0u);

    // Batched path, fresh services: concurrent requests race on the
    // caches; bytes must not depend on who wins.
    ws::InferenceService cold_batch(f.model, f.tokenizer, off);
    ws::InferenceService warm_batch(f.model, f.tokenizer, cached_options());
    auto a = cold_batch.suggest_batch(requests);
    auto b = warm_batch.suggest_batch(requests);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      expect_same_payload(a[i], b[i],
                          "batch threads=" + std::to_string(threads) +
                              " request=" + std::to_string(i));
  }
  wu::ThreadPool::set_global_threads(0);
}

// Beam search under a warm cache (full and partial prefix) returns the
// same hypothesis as a cold run.
TEST(CacheIdentity, BeamSearchWarmMatchesCold) {
  auto& f = fixture();
  auto ids = f.tokenizer.encode("- name: Install nginx\n");
  wm::Transformer::BeamOptions options;
  options.beam_width = 3;
  options.max_new_tokens = 16;
  options.stop_token = wt::BpeTokenizer::kEndOfText;
  wm::Transformer::KvCache snapshot;
  options.prompt_snapshot = &snapshot;
  auto cold = f.model.generate_beam(ids, options);
  ASSERT_GT(snapshot.length, 0);

  wm::Transformer::BeamOptions warm_options = options;
  warm_options.prompt_snapshot = nullptr;
  warm_options.warm_cache = &snapshot;
  EXPECT_EQ(f.model.generate_beam(ids, warm_options), cold);

  wm::Transformer::KvCache partial = snapshot.clone(snapshot.length / 2);
  warm_options.warm_cache = &partial;
  EXPECT_EQ(f.model.generate_beam(ids, warm_options), cold);
}

// Greedy generation warmed with another prompt's shared prefix matches a
// cold run on the target prompt.
TEST(CacheIdentity, GreedyPartialPrefixWarmMatchesCold) {
  auto& f = fixture();
  // Short prompts: both must survive left-truncation whole, or the kept
  // spans start at different offsets and share nothing.
  auto ids_a = f.tokenizer.encode("- name: Install nginx\n");
  auto ids_b = f.tokenizer.encode("- name: Install redis\n");

  wm::Transformer::GenerateOptions options;
  options.max_new_tokens = 16;
  options.stop_token = wt::BpeTokenizer::kEndOfText;
  wm::Transformer::KvCache snapshot;
  wm::Transformer::GenerateOptions snap_options = options;
  snap_options.prompt_snapshot = &snapshot;
  f.model.generate(ids_a, snap_options);
  ASSERT_GT(snapshot.length, 0);

  auto cold = f.model.generate(ids_b, options);

  auto kept_a = f.model.kept_prompt(ids_a, options.max_new_tokens);
  auto kept_b = f.model.kept_prompt(ids_b, options.max_new_tokens);
  std::size_t shared = 0;
  while (shared < kept_a.size() && shared < kept_b.size() &&
         kept_a[shared] == kept_b[shared])
    ++shared;
  ASSERT_GT(shared, 0u);
  ASSERT_LT(shared, kept_b.size());

  wm::Transformer::KvCache warm = snapshot.clone(static_cast<int>(shared));
  wm::Transformer::GenerateOptions warm_options = options;
  warm_options.warm_cache = &warm;
  wm::Transformer::GenerateStatus status;
  warm_options.status = &status;
  EXPECT_EQ(f.model.generate(ids_b, warm_options), cold);
  EXPECT_EQ(status.prefill_tokens_reused, static_cast<int>(shared));
}

// Deadline-salvaged partials: with check-count deadlines budgeted so the
// cut lands on the same generated-token index, the warm run's salvaged
// (or fallback) response is byte-identical to the cold run's.
TEST(CacheIdentity, DeadlineSalvagedPartialMatches) {
  auto& f = fixture();
  ws::ServiceOptions base;
  base.max_new_tokens = 24;

  ws::SuggestionRequest first;
  first.prompt = "Install nginx";
  ws::SuggestionRequest second;
  second.prompt = "Install redis";

  // Kept-prompt lengths and the shared token span decide the per-run
  // check budgets: cold prefill costs |kept| checks, warm prefill costs
  // |kept| - shared.
  auto encode_kept = [&](const ws::SuggestionRequest& r) {
    auto ids = f.tokenizer.encode(r.context + "- name: " + r.prompt + "\n");
    auto kept = f.model.kept_prompt(ids, base.max_new_tokens);
    return std::vector<std::int32_t>(kept.begin(), kept.end());
  };
  auto kept_first = encode_kept(first);
  auto kept_second = encode_kept(second);
  std::size_t shared = 0;
  while (shared < kept_first.size() && shared < kept_second.size() &&
         kept_first[shared] == kept_second[shared])
    ++shared;
  ASSERT_GT(shared, 0u);
  const std::int64_t cut_after = 4;  // generated tokens before the cut

  auto run = [&](bool cached) {
    ws::FaultInjector faults;
    ws::ServiceOptions options = base;
    options.faults = &faults;
    if (cached) {
      options.prefix_cache_enabled = true;  // memo off: isolate level 1
    }
    ws::InferenceService service(f.model, f.tokenizer, options);
    // Request 1 runs deadline-free and (when caching) seeds the cache.
    auto warmup = service.suggest(first);
    EXPECT_TRUE(warmup.ok);
    const std::int64_t prefill_checks =
        static_cast<std::int64_t>(kept_second.size()) -
        (cached ? static_cast<std::int64_t>(shared) : 0);
    faults.set_slow_decode_after_tokens(prefill_checks + cut_after);
    auto response = service.suggest(second);
    EXPECT_EQ(response.error, ws::ServiceError::DeadlineExceeded);
    EXPECT_TRUE(response.degraded);
    if (cached) EXPECT_GT(service.prefix_cache_stats().hits, 0u);
    return response;
  };

  auto cold = run(false);
  auto warm = run(true);
  expect_same_payload(cold, warm, "deadline salvage");
}

// --- service integration ----------------------------------------------------

TEST(CacheService, ExactRepeatIsServedFromMemoWithCachedFlag) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, cached_options());
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  auto miss = service.suggest(request);
  ASSERT_TRUE(miss.ok);
  EXPECT_FALSE(miss.cached);
  auto hit = service.suggest(request);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.snippet, miss.snippet);
  EXPECT_EQ(service.response_cache_stats().hits, 1u);
  // The memo answered before the model ran: no new prefill, no decode.
  EXPECT_EQ(service.prefix_cache_stats().lookups, 1u);
}

TEST(CacheService, PrefixHitMarksResponseCached) {
  auto& f = fixture();
  ws::ServiceOptions options = cached_options();
  options.response_cache_enabled = false;
  ws::InferenceService service(f.model, f.tokenizer, options);
  ws::SuggestionRequest request;
  request.prompt = "Install nginx";
  auto first = service.suggest(request);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.cached);
  auto second = service.suggest(request);
  EXPECT_TRUE(second.cached) << "prefill was served from the prefix cache";
  EXPECT_EQ(second.snippet, first.snippet);
  EXPECT_GT(service.prefix_cache_stats().tokens_reused, 0u);
}

TEST(CacheService, InvalidateCachesDropsBothLevels) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, cached_options());
  ws::SuggestionRequest request;
  request.prompt = "Install redis";
  service.suggest(request);
  EXPECT_GT(service.prefix_cache_stats().entries, 0u);
  EXPECT_GT(service.response_cache_stats().entries, 0u);
  service.invalidate_caches();
  EXPECT_EQ(service.prefix_cache_stats().entries, 0u);
  EXPECT_EQ(service.response_cache_stats().entries, 0u);
  auto after = service.suggest(request);
  EXPECT_FALSE(after.cached) << "cleared caches cannot serve the repeat";
}

TEST(CacheService, TraceRecordsCacheStage) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, cached_options());
  ws::SuggestionRequest request;
  request.prompt = "Install git";
  auto response = service.suggest(request);
  if (!response.server_timing_ms.empty())
    EXPECT_TRUE(response.server_timing_ms.count("cache"))
        << "cache stage missing from server timing";
}

TEST(CacheService, MetricFamiliesExposedEvenWhenDisabled) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, {});
  std::string text = service.metrics().expose_prometheus();
  for (const char* family :
       {"wisdom_cache_prefix_hits_total", "wisdom_cache_prefix_misses_total",
        "wisdom_cache_prefix_inserts_total",
        "wisdom_cache_prefix_evictions_total",
        "wisdom_cache_prefix_expired_total", "wisdom_cache_prefix_bytes",
        "wisdom_cache_prefix_entries",
        "wisdom_cache_prefill_tokens_saved_total",
        "wisdom_cache_prefix_hit_tokens", "wisdom_cache_response_hits_total",
        "wisdom_cache_response_misses_total",
        "wisdom_cache_response_inserts_total",
        "wisdom_cache_response_evictions_total",
        "wisdom_cache_response_expired_total",
        "wisdom_cache_response_entries", "wisdom_serve_stage_cache_ms"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
}

TEST(CacheService, MetricsMirrorCacheActivity) {
  auto& f = fixture();
  ws::InferenceService service(f.model, f.tokenizer, cached_options());
  ws::SuggestionRequest request;
  request.prompt = "Install curl";
  service.suggest(request);
  service.suggest(request);
  std::string text = service.metrics().expose_prometheus();
  EXPECT_NE(text.find("wisdom_cache_response_hits_total 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wisdom_cache_prefix_inserts_total 1"),
            std::string::npos)
      << text;
}

// --- eviction stress --------------------------------------------------------

// Drives the prefix cache far past its byte budget from multiple threads.
// The budget must hold at every observation point and the monotone
// counters must reconcile exactly afterwards. Run under TSan in CI.
TEST(CacheStress, ConcurrentInsertsNeverExceedBudget) {
  ws::PrefixCacheOptions options;
  options.byte_budget = 16 * 1024;  // a handful of entries
  ws::PrefixKvCache cache(options);
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::atomic<bool> budget_violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Distinct per-(thread, iteration mod 29) sequences with shared
        // short prefixes, lengths 4..11: plenty of budget pressure and
        // trie sharing.
        int length = 4 + (t + i) % 8;
        std::vector<std::int32_t> tokens;
        tokens.reserve(static_cast<std::size_t>(length));
        for (int k = 0; k < length; ++k)
          tokens.push_back((t * 1000 + (i % 29) * 31 + k) % 97);
        if (i % 3 == 0) {
          cache.lookup(tokens);
        } else {
          cache.insert(tokens, fake_snapshot(length));
        }
        if (cache.bytes_held() > options.byte_budget)
          budget_violated.store(true);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(budget_violated.load());

  auto stats = cache.stats();
  EXPECT_LE(stats.bytes, options.byte_budget);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.entries,
            stats.stored - stats.evictions - stats.expirations -
                stats.cleared);
  EXPECT_GT(stats.evictions, 0u) << "the stress never exceeded the budget";

  cache.clear();
  auto cleared = cache.stats();
  EXPECT_EQ(cleared.entries, 0u);
  EXPECT_EQ(cleared.entries,
            cleared.stored - cleared.evictions - cleared.expirations -
                cleared.cleared);
}
