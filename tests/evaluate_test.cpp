#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "core/trainer.hpp"
#include "data/ansible_gen.hpp"
#include "data/packing.hpp"
#include "model/transformer.hpp"
#include "text/bpe.hpp"
#include "util/rng.hpp"

namespace wc = wisdom::core;
namespace wd = wisdom::data;
namespace wm = wisdom::model;
namespace wt = wisdom::text;
using wisdom::util::Rng;

namespace {

// Shared micro-fixture: a model trained on generated role tasks.
struct Fixture {
  wt::BpeTokenizer tokenizer;
  wm::Transformer model;

  Fixture()
      : tokenizer(wt::BpeTokenizer::train(corpus(), 360)),
        model(config(), 3) {
    wd::AnsibleGenerator gen{Rng{8}};
    std::vector<std::string> texts;
    for (int i = 0; i < 80; ++i) texts.push_back(gen.role_tasks_text(2));
    auto set = wd::pack_samples(tokenizer, texts, 72);
    wc::TrainConfig tc;
    tc.epochs = 3;
    tc.micro_batch = 4;
    tc.grad_accum = 1;
    tc.lr = 3e-3f;
    wc::train_model(model, set, nullptr, tc);
  }

  static std::string corpus() {
    wd::AnsibleGenerator gen{Rng{6}};
    std::string out;
    for (int i = 0; i < 40; ++i) out += gen.role_tasks_text(3);
    return out;
  }
  wm::ModelConfig config() const {
    wm::ModelConfig cfg;
    cfg.vocab = static_cast<int>(tokenizer.vocab_size());
    cfg.ctx = 72;
    cfg.d_model = 24;
    cfg.n_head = 2;
    cfg.n_layer = 2;
    cfg.d_ff = 48;
    return cfg;
  }

  wd::FtSample task_sample() const {
    wd::FtSample s;
    s.type = wd::GenerationType::NlToTask;
    s.prompt = "Install nginx";
    s.input_line = "- name: Install nginx\n";
    s.target_body =
        "  ansible.builtin.apt:\n    name: nginx\n    state: present\n";
    return s;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

}  // namespace

TEST(Evaluate, PredictionStartsWithInputLine) {
  auto& f = fixture();
  wc::EvalOptions eval;
  std::string pred =
      wc::predict_snippet(f.model, f.tokenizer, f.task_sample(), eval);
  EXPECT_TRUE(pred.starts_with("- name: Install nginx\n")) << pred;
}

TEST(Evaluate, PredictionIsSingleTaskForTaskTypes) {
  auto& f = fixture();
  wc::EvalOptions eval;
  eval.max_new_tokens = 72;  // enough budget for the model to overrun
  std::string pred =
      wc::predict_snippet(f.model, f.tokenizer, f.task_sample(), eval);
  // Truncation to the first task: no second "- name:" item at indent 0.
  std::size_t second = pred.find("\n- ", 1);
  EXPECT_EQ(second, std::string::npos) << pred;
}

TEST(Evaluate, DeterministicPredictions) {
  auto& f = fixture();
  wc::EvalOptions eval;
  auto a = wc::predict_snippet(f.model, f.tokenizer, f.task_sample(), eval);
  auto b = wc::predict_snippet(f.model, f.tokenizer, f.task_sample(), eval);
  EXPECT_EQ(a, b);
}

TEST(Evaluate, EmptySampleSpanYieldsEmptyReport) {
  auto& f = fixture();
  wc::EvalOptions eval;
  auto report = wc::evaluate_model(f.model, f.tokenizer, {}, eval);
  EXPECT_EQ(report.count, 0u);
}

TEST(Evaluate, MaxSamplesLimits) {
  auto& f = fixture();
  std::vector<wd::FtSample> samples(5, f.task_sample());
  wc::EvalOptions eval;
  eval.max_samples = 2;
  auto report = wc::evaluate_model(f.model, f.tokenizer, samples, eval);
  EXPECT_EQ(report.count, 2u);
}

TEST(Evaluate, ByTypePartitionsCounts) {
  auto& f = fixture();
  std::vector<wd::FtSample> samples;
  for (int i = 0; i < 3; ++i) samples.push_back(f.task_sample());
  wd::FtSample ctx = f.task_sample();
  ctx.type = wd::GenerationType::TNlToTask;
  ctx.context = "- name: Prev\n  ansible.builtin.ping:\n";
  samples.push_back(ctx);
  wc::EvalOptions eval;
  auto by_type = wc::evaluate_by_type(f.model, f.tokenizer, samples, eval);
  ASSERT_EQ(by_type.size(), 2u);
  EXPECT_EQ(by_type[wd::GenerationType::NlToTask].count, 3u);
  EXPECT_EQ(by_type[wd::GenerationType::TNlToTask].count, 1u);
}

TEST(Evaluate, AnsiblePrefixOnlyForContextFreeSamples) {
  // With a context present the prefix must not be prepended; with no
  // context it must. Verified indirectly through input-length effects on
  // the first decode: we simply check both paths produce valid predictions
  // and the option round-trips without crashing.
  auto& f = fixture();
  wc::EvalOptions with_prefix;
  with_prefix.ansible_prefix = true;
  auto no_ctx =
      wc::predict_snippet(f.model, f.tokenizer, f.task_sample(), with_prefix);
  EXPECT_TRUE(no_ctx.starts_with("- name: "));

  wd::FtSample ctx = f.task_sample();
  ctx.type = wd::GenerationType::TNlToTask;
  ctx.context = "- name: Prev\n  ansible.builtin.ping:\n";
  auto with_ctx =
      wc::predict_snippet(f.model, f.tokenizer, ctx, with_prefix);
  EXPECT_TRUE(with_ctx.starts_with("- name: "));
}

TEST(Evaluate, PrefixFormatUsesLabelledSections) {
  auto& f = fixture();
  wd::FtSample s = f.task_sample();
  s.context = "- name: Prev\n  ansible.builtin.ping:\n";
  s.type = wd::GenerationType::TNlToTask;
  std::string input = wd::format_input(s, wd::PromptFormat::Prefix);
  EXPECT_NE(input.find("### context code"), std::string::npos);
  wc::EvalOptions eval;
  eval.format = wd::PromptFormat::Prefix;
  std::string pred = wc::predict_snippet(f.model, f.tokenizer, s, eval);
  // Output is still the comparable snippet (name line + body).
  EXPECT_TRUE(pred.starts_with(s.input_line));
}

TEST(Evaluate, PlaybookSamplesSkipTruncation) {
  auto& f = fixture();
  wd::FtSample pb;
  pb.type = wd::GenerationType::NlToPlaybook;
  pb.prompt = "Provision web servers. Install nginx";
  pb.input_line = "- name: Provision web servers. Install nginx\n";
  pb.target_body =
      "  hosts: webservers\n"
      "  tasks:\n"
      "    - name: Install nginx\n"
      "      ansible.builtin.apt:\n"
      "        name: nginx\n"
      "        state: present\n";
  wc::EvalOptions eval;
  std::string pred = wc::predict_snippet(f.model, f.tokenizer, pb, eval);
  EXPECT_TRUE(pred.starts_with(pb.input_line));
}
