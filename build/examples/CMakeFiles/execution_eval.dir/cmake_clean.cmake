file(REMOVE_RECURSE
  "CMakeFiles/execution_eval.dir/execution_eval.cpp.o"
  "CMakeFiles/execution_eval.dir/execution_eval.cpp.o.d"
  "execution_eval"
  "execution_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
