# Empty compiler generated dependencies file for execution_eval.
# This may be replaced when dependencies are built.
