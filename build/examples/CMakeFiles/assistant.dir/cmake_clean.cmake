file(REMOVE_RECURSE
  "CMakeFiles/assistant.dir/assistant.cpp.o"
  "CMakeFiles/assistant.dir/assistant.cpp.o.d"
  "assistant"
  "assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
