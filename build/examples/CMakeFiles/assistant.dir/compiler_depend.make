# Empty compiler generated dependencies file for assistant.
# This may be replaced when dependencies are built.
