file(REMOVE_RECURSE
  "CMakeFiles/reproduce_wisdom.dir/reproduce_wisdom.cpp.o"
  "CMakeFiles/reproduce_wisdom.dir/reproduce_wisdom.cpp.o.d"
  "reproduce_wisdom"
  "reproduce_wisdom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduce_wisdom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
