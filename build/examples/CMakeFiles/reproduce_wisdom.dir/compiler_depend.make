# Empty compiler generated dependencies file for reproduce_wisdom.
# This may be replaced when dependencies are built.
