file(REMOVE_RECURSE
  "CMakeFiles/wisdom_core.dir/evaluate.cpp.o"
  "CMakeFiles/wisdom_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/wisdom_core.dir/pipeline.cpp.o"
  "CMakeFiles/wisdom_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/wisdom_core.dir/postprocess.cpp.o"
  "CMakeFiles/wisdom_core.dir/postprocess.cpp.o.d"
  "CMakeFiles/wisdom_core.dir/trainer.cpp.o"
  "CMakeFiles/wisdom_core.dir/trainer.cpp.o.d"
  "libwisdom_core.a"
  "libwisdom_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
