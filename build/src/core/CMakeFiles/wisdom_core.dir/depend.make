# Empty dependencies file for wisdom_core.
# This may be replaced when dependencies are built.
