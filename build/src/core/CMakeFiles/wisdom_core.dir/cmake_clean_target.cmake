file(REMOVE_RECURSE
  "libwisdom_core.a"
)
