file(REMOVE_RECURSE
  "libwisdom_exec.a"
)
