
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/equivalence.cpp" "src/exec/CMakeFiles/wisdom_exec.dir/equivalence.cpp.o" "gcc" "src/exec/CMakeFiles/wisdom_exec.dir/equivalence.cpp.o.d"
  "/root/repo/src/exec/executor.cpp" "src/exec/CMakeFiles/wisdom_exec.dir/executor.cpp.o" "gcc" "src/exec/CMakeFiles/wisdom_exec.dir/executor.cpp.o.d"
  "/root/repo/src/exec/host_state.cpp" "src/exec/CMakeFiles/wisdom_exec.dir/host_state.cpp.o" "gcc" "src/exec/CMakeFiles/wisdom_exec.dir/host_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ansible/CMakeFiles/wisdom_ansible.dir/DependInfo.cmake"
  "/root/repo/build/src/yaml/CMakeFiles/wisdom_yaml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wisdom_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
