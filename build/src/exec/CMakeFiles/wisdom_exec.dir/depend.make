# Empty dependencies file for wisdom_exec.
# This may be replaced when dependencies are built.
