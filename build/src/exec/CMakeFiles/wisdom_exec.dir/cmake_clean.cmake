file(REMOVE_RECURSE
  "CMakeFiles/wisdom_exec.dir/equivalence.cpp.o"
  "CMakeFiles/wisdom_exec.dir/equivalence.cpp.o.d"
  "CMakeFiles/wisdom_exec.dir/executor.cpp.o"
  "CMakeFiles/wisdom_exec.dir/executor.cpp.o.d"
  "CMakeFiles/wisdom_exec.dir/host_state.cpp.o"
  "CMakeFiles/wisdom_exec.dir/host_state.cpp.o.d"
  "libwisdom_exec.a"
  "libwisdom_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
