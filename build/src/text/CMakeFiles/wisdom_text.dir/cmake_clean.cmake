file(REMOVE_RECURSE
  "CMakeFiles/wisdom_text.dir/bpe.cpp.o"
  "CMakeFiles/wisdom_text.dir/bpe.cpp.o.d"
  "CMakeFiles/wisdom_text.dir/ngram.cpp.o"
  "CMakeFiles/wisdom_text.dir/ngram.cpp.o.d"
  "CMakeFiles/wisdom_text.dir/tokenize.cpp.o"
  "CMakeFiles/wisdom_text.dir/tokenize.cpp.o.d"
  "libwisdom_text.a"
  "libwisdom_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
