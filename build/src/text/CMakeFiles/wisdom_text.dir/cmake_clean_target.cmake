file(REMOVE_RECURSE
  "libwisdom_text.a"
)
