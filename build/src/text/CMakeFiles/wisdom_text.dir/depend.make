# Empty dependencies file for wisdom_text.
# This may be replaced when dependencies are built.
