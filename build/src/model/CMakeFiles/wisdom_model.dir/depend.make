# Empty dependencies file for wisdom_model.
# This may be replaced when dependencies are built.
