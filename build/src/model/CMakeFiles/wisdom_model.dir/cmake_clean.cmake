file(REMOVE_RECURSE
  "CMakeFiles/wisdom_model.dir/checkpoint.cpp.o"
  "CMakeFiles/wisdom_model.dir/checkpoint.cpp.o.d"
  "CMakeFiles/wisdom_model.dir/config.cpp.o"
  "CMakeFiles/wisdom_model.dir/config.cpp.o.d"
  "CMakeFiles/wisdom_model.dir/transformer.cpp.o"
  "CMakeFiles/wisdom_model.dir/transformer.cpp.o.d"
  "libwisdom_model.a"
  "libwisdom_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
