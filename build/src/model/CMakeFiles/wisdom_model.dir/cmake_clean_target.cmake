file(REMOVE_RECURSE
  "libwisdom_model.a"
)
