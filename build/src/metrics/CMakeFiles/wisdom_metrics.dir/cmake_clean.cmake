file(REMOVE_RECURSE
  "CMakeFiles/wisdom_metrics.dir/aggregate.cpp.o"
  "CMakeFiles/wisdom_metrics.dir/aggregate.cpp.o.d"
  "CMakeFiles/wisdom_metrics.dir/ansible_aware.cpp.o"
  "CMakeFiles/wisdom_metrics.dir/ansible_aware.cpp.o.d"
  "CMakeFiles/wisdom_metrics.dir/bleu.cpp.o"
  "CMakeFiles/wisdom_metrics.dir/bleu.cpp.o.d"
  "CMakeFiles/wisdom_metrics.dir/exact_match.cpp.o"
  "CMakeFiles/wisdom_metrics.dir/exact_match.cpp.o.d"
  "CMakeFiles/wisdom_metrics.dir/schema_correct.cpp.o"
  "CMakeFiles/wisdom_metrics.dir/schema_correct.cpp.o.d"
  "libwisdom_metrics.a"
  "libwisdom_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
