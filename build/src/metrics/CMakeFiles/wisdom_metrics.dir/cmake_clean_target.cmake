file(REMOVE_RECURSE
  "libwisdom_metrics.a"
)
