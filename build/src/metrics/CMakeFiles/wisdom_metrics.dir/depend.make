# Empty dependencies file for wisdom_metrics.
# This may be replaced when dependencies are built.
