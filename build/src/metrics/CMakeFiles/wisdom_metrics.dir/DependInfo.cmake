
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/aggregate.cpp" "src/metrics/CMakeFiles/wisdom_metrics.dir/aggregate.cpp.o" "gcc" "src/metrics/CMakeFiles/wisdom_metrics.dir/aggregate.cpp.o.d"
  "/root/repo/src/metrics/ansible_aware.cpp" "src/metrics/CMakeFiles/wisdom_metrics.dir/ansible_aware.cpp.o" "gcc" "src/metrics/CMakeFiles/wisdom_metrics.dir/ansible_aware.cpp.o.d"
  "/root/repo/src/metrics/bleu.cpp" "src/metrics/CMakeFiles/wisdom_metrics.dir/bleu.cpp.o" "gcc" "src/metrics/CMakeFiles/wisdom_metrics.dir/bleu.cpp.o.d"
  "/root/repo/src/metrics/exact_match.cpp" "src/metrics/CMakeFiles/wisdom_metrics.dir/exact_match.cpp.o" "gcc" "src/metrics/CMakeFiles/wisdom_metrics.dir/exact_match.cpp.o.d"
  "/root/repo/src/metrics/schema_correct.cpp" "src/metrics/CMakeFiles/wisdom_metrics.dir/schema_correct.cpp.o" "gcc" "src/metrics/CMakeFiles/wisdom_metrics.dir/schema_correct.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/wisdom_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ansible/CMakeFiles/wisdom_ansible.dir/DependInfo.cmake"
  "/root/repo/build/src/yaml/CMakeFiles/wisdom_yaml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wisdom_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
