# Empty compiler generated dependencies file for wisdom_serve.
# This may be replaced when dependencies are built.
