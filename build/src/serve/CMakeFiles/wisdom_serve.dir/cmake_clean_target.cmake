file(REMOVE_RECURSE
  "libwisdom_serve.a"
)
