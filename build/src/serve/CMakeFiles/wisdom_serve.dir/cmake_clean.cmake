file(REMOVE_RECURSE
  "CMakeFiles/wisdom_serve.dir/service.cpp.o"
  "CMakeFiles/wisdom_serve.dir/service.cpp.o.d"
  "CMakeFiles/wisdom_serve.dir/wire.cpp.o"
  "CMakeFiles/wisdom_serve.dir/wire.cpp.o.d"
  "libwisdom_serve.a"
  "libwisdom_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
