
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/ansible_gen.cpp" "src/data/CMakeFiles/wisdom_data.dir/ansible_gen.cpp.o" "gcc" "src/data/CMakeFiles/wisdom_data.dir/ansible_gen.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/wisdom_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/wisdom_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/dedup.cpp" "src/data/CMakeFiles/wisdom_data.dir/dedup.cpp.o" "gcc" "src/data/CMakeFiles/wisdom_data.dir/dedup.cpp.o.d"
  "/root/repo/src/data/generic_yaml.cpp" "src/data/CMakeFiles/wisdom_data.dir/generic_yaml.cpp.o" "gcc" "src/data/CMakeFiles/wisdom_data.dir/generic_yaml.cpp.o.d"
  "/root/repo/src/data/packing.cpp" "src/data/CMakeFiles/wisdom_data.dir/packing.cpp.o" "gcc" "src/data/CMakeFiles/wisdom_data.dir/packing.cpp.o.d"
  "/root/repo/src/data/sources.cpp" "src/data/CMakeFiles/wisdom_data.dir/sources.cpp.o" "gcc" "src/data/CMakeFiles/wisdom_data.dir/sources.cpp.o.d"
  "/root/repo/src/data/textgen.cpp" "src/data/CMakeFiles/wisdom_data.dir/textgen.cpp.o" "gcc" "src/data/CMakeFiles/wisdom_data.dir/textgen.cpp.o.d"
  "/root/repo/src/data/values.cpp" "src/data/CMakeFiles/wisdom_data.dir/values.cpp.o" "gcc" "src/data/CMakeFiles/wisdom_data.dir/values.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ansible/CMakeFiles/wisdom_ansible.dir/DependInfo.cmake"
  "/root/repo/build/src/yaml/CMakeFiles/wisdom_yaml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wisdom_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wisdom_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
