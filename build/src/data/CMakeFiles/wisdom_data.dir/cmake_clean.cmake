file(REMOVE_RECURSE
  "CMakeFiles/wisdom_data.dir/ansible_gen.cpp.o"
  "CMakeFiles/wisdom_data.dir/ansible_gen.cpp.o.d"
  "CMakeFiles/wisdom_data.dir/dataset.cpp.o"
  "CMakeFiles/wisdom_data.dir/dataset.cpp.o.d"
  "CMakeFiles/wisdom_data.dir/dedup.cpp.o"
  "CMakeFiles/wisdom_data.dir/dedup.cpp.o.d"
  "CMakeFiles/wisdom_data.dir/generic_yaml.cpp.o"
  "CMakeFiles/wisdom_data.dir/generic_yaml.cpp.o.d"
  "CMakeFiles/wisdom_data.dir/packing.cpp.o"
  "CMakeFiles/wisdom_data.dir/packing.cpp.o.d"
  "CMakeFiles/wisdom_data.dir/sources.cpp.o"
  "CMakeFiles/wisdom_data.dir/sources.cpp.o.d"
  "CMakeFiles/wisdom_data.dir/textgen.cpp.o"
  "CMakeFiles/wisdom_data.dir/textgen.cpp.o.d"
  "CMakeFiles/wisdom_data.dir/values.cpp.o"
  "CMakeFiles/wisdom_data.dir/values.cpp.o.d"
  "libwisdom_data.a"
  "libwisdom_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
