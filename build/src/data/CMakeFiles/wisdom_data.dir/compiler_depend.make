# Empty compiler generated dependencies file for wisdom_data.
# This may be replaced when dependencies are built.
