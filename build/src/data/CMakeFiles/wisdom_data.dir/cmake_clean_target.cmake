file(REMOVE_RECURSE
  "libwisdom_data.a"
)
