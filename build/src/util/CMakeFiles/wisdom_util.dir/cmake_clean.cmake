file(REMOVE_RECURSE
  "CMakeFiles/wisdom_util.dir/hashing.cpp.o"
  "CMakeFiles/wisdom_util.dir/hashing.cpp.o.d"
  "CMakeFiles/wisdom_util.dir/io.cpp.o"
  "CMakeFiles/wisdom_util.dir/io.cpp.o.d"
  "CMakeFiles/wisdom_util.dir/log.cpp.o"
  "CMakeFiles/wisdom_util.dir/log.cpp.o.d"
  "CMakeFiles/wisdom_util.dir/rng.cpp.o"
  "CMakeFiles/wisdom_util.dir/rng.cpp.o.d"
  "CMakeFiles/wisdom_util.dir/strings.cpp.o"
  "CMakeFiles/wisdom_util.dir/strings.cpp.o.d"
  "CMakeFiles/wisdom_util.dir/table.cpp.o"
  "CMakeFiles/wisdom_util.dir/table.cpp.o.d"
  "libwisdom_util.a"
  "libwisdom_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
