# Empty dependencies file for wisdom_util.
# This may be replaced when dependencies are built.
