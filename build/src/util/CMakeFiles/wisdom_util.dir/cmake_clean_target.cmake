file(REMOVE_RECURSE
  "libwisdom_util.a"
)
