# CMake generated Testfile for 
# Source directory: /root/repo/src/ansible
# Build directory: /root/repo/build/src/ansible
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
