file(REMOVE_RECURSE
  "CMakeFiles/wisdom_ansible.dir/catalog.cpp.o"
  "CMakeFiles/wisdom_ansible.dir/catalog.cpp.o.d"
  "CMakeFiles/wisdom_ansible.dir/freeform.cpp.o"
  "CMakeFiles/wisdom_ansible.dir/freeform.cpp.o.d"
  "CMakeFiles/wisdom_ansible.dir/jinja.cpp.o"
  "CMakeFiles/wisdom_ansible.dir/jinja.cpp.o.d"
  "CMakeFiles/wisdom_ansible.dir/keywords.cpp.o"
  "CMakeFiles/wisdom_ansible.dir/keywords.cpp.o.d"
  "CMakeFiles/wisdom_ansible.dir/linter.cpp.o"
  "CMakeFiles/wisdom_ansible.dir/linter.cpp.o.d"
  "CMakeFiles/wisdom_ansible.dir/model.cpp.o"
  "CMakeFiles/wisdom_ansible.dir/model.cpp.o.d"
  "libwisdom_ansible.a"
  "libwisdom_ansible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_ansible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
