
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ansible/catalog.cpp" "src/ansible/CMakeFiles/wisdom_ansible.dir/catalog.cpp.o" "gcc" "src/ansible/CMakeFiles/wisdom_ansible.dir/catalog.cpp.o.d"
  "/root/repo/src/ansible/freeform.cpp" "src/ansible/CMakeFiles/wisdom_ansible.dir/freeform.cpp.o" "gcc" "src/ansible/CMakeFiles/wisdom_ansible.dir/freeform.cpp.o.d"
  "/root/repo/src/ansible/jinja.cpp" "src/ansible/CMakeFiles/wisdom_ansible.dir/jinja.cpp.o" "gcc" "src/ansible/CMakeFiles/wisdom_ansible.dir/jinja.cpp.o.d"
  "/root/repo/src/ansible/keywords.cpp" "src/ansible/CMakeFiles/wisdom_ansible.dir/keywords.cpp.o" "gcc" "src/ansible/CMakeFiles/wisdom_ansible.dir/keywords.cpp.o.d"
  "/root/repo/src/ansible/linter.cpp" "src/ansible/CMakeFiles/wisdom_ansible.dir/linter.cpp.o" "gcc" "src/ansible/CMakeFiles/wisdom_ansible.dir/linter.cpp.o.d"
  "/root/repo/src/ansible/model.cpp" "src/ansible/CMakeFiles/wisdom_ansible.dir/model.cpp.o" "gcc" "src/ansible/CMakeFiles/wisdom_ansible.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/yaml/CMakeFiles/wisdom_yaml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wisdom_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
