# Empty compiler generated dependencies file for wisdom_ansible.
# This may be replaced when dependencies are built.
