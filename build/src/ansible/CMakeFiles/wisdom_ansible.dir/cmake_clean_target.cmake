file(REMOVE_RECURSE
  "libwisdom_ansible.a"
)
