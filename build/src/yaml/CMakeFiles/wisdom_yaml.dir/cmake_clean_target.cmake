file(REMOVE_RECURSE
  "libwisdom_yaml.a"
)
