
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yaml/emit.cpp" "src/yaml/CMakeFiles/wisdom_yaml.dir/emit.cpp.o" "gcc" "src/yaml/CMakeFiles/wisdom_yaml.dir/emit.cpp.o.d"
  "/root/repo/src/yaml/node.cpp" "src/yaml/CMakeFiles/wisdom_yaml.dir/node.cpp.o" "gcc" "src/yaml/CMakeFiles/wisdom_yaml.dir/node.cpp.o.d"
  "/root/repo/src/yaml/parse.cpp" "src/yaml/CMakeFiles/wisdom_yaml.dir/parse.cpp.o" "gcc" "src/yaml/CMakeFiles/wisdom_yaml.dir/parse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wisdom_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
