file(REMOVE_RECURSE
  "CMakeFiles/wisdom_yaml.dir/emit.cpp.o"
  "CMakeFiles/wisdom_yaml.dir/emit.cpp.o.d"
  "CMakeFiles/wisdom_yaml.dir/node.cpp.o"
  "CMakeFiles/wisdom_yaml.dir/node.cpp.o.d"
  "CMakeFiles/wisdom_yaml.dir/parse.cpp.o"
  "CMakeFiles/wisdom_yaml.dir/parse.cpp.o.d"
  "libwisdom_yaml.a"
  "libwisdom_yaml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_yaml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
