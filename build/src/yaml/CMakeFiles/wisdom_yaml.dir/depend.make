# Empty dependencies file for wisdom_yaml.
# This may be replaced when dependencies are built.
