file(REMOVE_RECURSE
  "CMakeFiles/wisdom_nn.dir/adamw.cpp.o"
  "CMakeFiles/wisdom_nn.dir/adamw.cpp.o.d"
  "CMakeFiles/wisdom_nn.dir/ops.cpp.o"
  "CMakeFiles/wisdom_nn.dir/ops.cpp.o.d"
  "CMakeFiles/wisdom_nn.dir/schedule.cpp.o"
  "CMakeFiles/wisdom_nn.dir/schedule.cpp.o.d"
  "CMakeFiles/wisdom_nn.dir/tensor.cpp.o"
  "CMakeFiles/wisdom_nn.dir/tensor.cpp.o.d"
  "libwisdom_nn.a"
  "libwisdom_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wisdom_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
