# Empty compiler generated dependencies file for wisdom_nn.
# This may be replaced when dependencies are built.
