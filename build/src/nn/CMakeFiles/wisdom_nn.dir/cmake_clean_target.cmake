file(REMOVE_RECURSE
  "libwisdom_nn.a"
)
