# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/yaml_parse_test[1]_include.cmake")
include("/root/repo/build/tests/yaml_emit_test[1]_include.cmake")
include("/root/repo/build/tests/ansible_test[1]_include.cmake")
include("/root/repo/build/tests/linter_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/serve_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/jinja_test[1]_include.cmake")
include("/root/repo/build/tests/evaluate_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
