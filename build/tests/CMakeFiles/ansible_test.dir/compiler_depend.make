# Empty compiler generated dependencies file for ansible_test.
# This may be replaced when dependencies are built.
