file(REMOVE_RECURSE
  "CMakeFiles/ansible_test.dir/ansible_test.cpp.o"
  "CMakeFiles/ansible_test.dir/ansible_test.cpp.o.d"
  "ansible_test"
  "ansible_test.pdb"
  "ansible_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ansible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
