# Empty dependencies file for linter_test.
# This may be replaced when dependencies are built.
