file(REMOVE_RECURSE
  "CMakeFiles/yaml_parse_test.dir/yaml_parse_test.cpp.o"
  "CMakeFiles/yaml_parse_test.dir/yaml_parse_test.cpp.o.d"
  "yaml_parse_test"
  "yaml_parse_test.pdb"
  "yaml_parse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yaml_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
