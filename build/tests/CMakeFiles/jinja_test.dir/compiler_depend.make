# Empty compiler generated dependencies file for jinja_test.
# This may be replaced when dependencies are built.
