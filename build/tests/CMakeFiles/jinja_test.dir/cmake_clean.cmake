file(REMOVE_RECURSE
  "CMakeFiles/jinja_test.dir/jinja_test.cpp.o"
  "CMakeFiles/jinja_test.dir/jinja_test.cpp.o.d"
  "jinja_test"
  "jinja_test.pdb"
  "jinja_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jinja_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
