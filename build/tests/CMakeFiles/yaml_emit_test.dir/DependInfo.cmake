
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/yaml_emit_test.cpp" "tests/CMakeFiles/yaml_emit_test.dir/yaml_emit_test.cpp.o" "gcc" "tests/CMakeFiles/yaml_emit_test.dir/yaml_emit_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/yaml/CMakeFiles/wisdom_yaml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wisdom_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
