file(REMOVE_RECURSE
  "CMakeFiles/yaml_emit_test.dir/yaml_emit_test.cpp.o"
  "CMakeFiles/yaml_emit_test.dir/yaml_emit_test.cpp.o.d"
  "yaml_emit_test"
  "yaml_emit_test.pdb"
  "yaml_emit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yaml_emit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
