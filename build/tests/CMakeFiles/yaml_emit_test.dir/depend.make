# Empty dependencies file for yaml_emit_test.
# This may be replaced when dependencies are built.
