# Empty dependencies file for bench_table2_model_matrix.
# This may be replaced when dependencies are built.
