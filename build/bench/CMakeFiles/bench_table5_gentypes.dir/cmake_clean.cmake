file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_gentypes.dir/bench_table5_gentypes.cpp.o"
  "CMakeFiles/bench_table5_gentypes.dir/bench_table5_gentypes.cpp.o.d"
  "bench_table5_gentypes"
  "bench_table5_gentypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_gentypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
