file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fewshot.dir/bench_table3_fewshot.cpp.o"
  "CMakeFiles/bench_table3_fewshot.dir/bench_table3_fewshot.cpp.o.d"
  "bench_table3_fewshot"
  "bench_table3_fewshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fewshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
