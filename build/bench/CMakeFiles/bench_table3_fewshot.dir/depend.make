# Empty dependencies file for bench_table3_fewshot.
# This may be replaced when dependencies are built.
