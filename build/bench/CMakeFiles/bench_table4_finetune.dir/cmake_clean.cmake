file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_finetune.dir/bench_table4_finetune.cpp.o"
  "CMakeFiles/bench_table4_finetune.dir/bench_table4_finetune.cpp.o.d"
  "bench_table4_finetune"
  "bench_table4_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
