# Empty dependencies file for bench_table4_finetune.
# This may be replaced when dependencies are built.
